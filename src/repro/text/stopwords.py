"""English stopword list used by the content learners.

A compact, standard list: function words that carry no class signal in
data instances. The learners drop stopwords before stemming so that
"close to the river" and "close to a river" produce the same evidence.
"""

from __future__ import annotations

STOPWORDS = frozenset("""
a about above after again against all am an and any are as at be because
been before being below between both but by can cannot could did do does
doing down during each few for from further had has have having he her
here hers herself him himself his how i if in into is it its itself just
me more most my myself no nor not now of off on once only or other our
ours ourselves out over own same she should so some such than that the
their theirs them themselves then there these they this those through to
too under until up very was we were what when where which while who whom
why will with you your yours yourself yourselves
""".split())


def is_stopword(token: str) -> bool:
    """True if ``token`` (lowercase) is an English function word."""
    return token in STOPWORDS


def remove_stopwords(tokens: list[str]) -> list[str]:
    """Filter stopwords out of a token list."""
    return [t for t in tokens if t not in STOPWORDS]
