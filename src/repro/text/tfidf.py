"""Sparse TF-IDF vector space with cosine similarity.

This is the vector model underlying WHIRL (Cohen & Hirsh), which the
paper's name matcher and content matcher use: documents are token bags,
weighted by ``(1 + log tf) * idf`` and L2-normalised, so the dot product of
two document vectors is their cosine similarity.

Built on ``scipy.sparse`` so a matching phase that compares hundreds of
query columns against tens of thousands of stored training examples stays
a single sparse matrix product.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse


class TfidfVectorSpace:
    """A vector space fitted on a corpus of token-list documents.

    Parameters
    ----------
    documents:
        The training corpus; each document is a list of (already
        normalised) tokens. Empty documents are allowed and become zero
        vectors.
    """

    def __init__(self, documents: list[list[str]]) -> None:
        if not documents:
            raise ValueError("cannot fit a vector space on an empty corpus")
        self.vocabulary: dict[str, int] = {}
        for doc in documents:
            for token in doc:
                if token not in self.vocabulary:
                    self.vocabulary[token] = len(self.vocabulary)

        n_docs = len(documents)
        doc_frequency = np.zeros(max(len(self.vocabulary), 1))
        for doc in documents:
            # Each distinct token bumps its own counter slot, so the
            # set's arbitrary order cannot reach any output.
            for token in set(doc):  # lsd: ignore[set-iteration]
                doc_frequency[self.vocabulary[token]] += 1
        # Smoothed idf keeps every fitted term positive, so a term present
        # in all documents still contributes a little signal.
        self.idf = np.log((1.0 + n_docs) / (1.0 + doc_frequency)) + 1.0
        self.matrix = self.transform(documents)
        # The fitted model is immutable from here on: queries build
        # *fresh* matrices (transform) and only ever read these. Marking
        # the arrays read-only proves it at runtime and is what lets the
        # process backend / array-store persistence hand every consumer
        # zero-copy views of the same bytes (repro.core.shared_arrays).
        self.idf.setflags(write=False)
        self.matrix.data.setflags(write=False)
        self.matrix.indices.setflags(write=False)
        self.matrix.indptr.setflags(write=False)

    @property
    def n_documents(self) -> int:
        """Number of documents the space was fitted on."""
        return self.matrix.shape[0]

    def transform(self, documents: list[list[str]]) -> sparse.csr_matrix:
        """Map documents to L2-normalised TF-IDF rows.

        Tokens outside the fitted vocabulary are ignored, mirroring how a
        nearest-neighbour matcher treats unseen words: they can't match
        anything stored, so they contribute nothing.
        """
        vocabulary = self.vocabulary
        rows: list[int] = []
        cols: list[int] = []
        for row_index, doc in enumerate(documents):
            known = [vocabulary[token] for token in doc
                     if token in vocabulary]
            rows.extend([row_index] * len(known))
            cols.extend(known)
        shape = (len(documents), max(len(vocabulary), 1))
        # COO->CSR sums duplicate (row, col) entries, so ones in, term
        # frequencies out — the whole weighting is then two vectorised
        # ops over the nonzeros instead of a Python loop per token.
        matrix = sparse.csr_matrix(
            (np.ones(len(cols)), (rows, cols)),
            shape=shape, dtype=np.float64)
        matrix.data = (1.0 + np.log(matrix.data)) * self.idf[matrix.indices]
        return _l2_normalize(matrix)

    def similarities(self, queries: list[list[str]]) -> np.ndarray:
        """Cosine similarity of each query against every fitted document.

        Returns an ``(n_queries, n_documents)`` dense array with entries in
        ``[0, 1]``.
        """
        return self.sparse_similarities(queries).toarray()

    def sparse_similarities(self,
                            queries: list[list[str]]) -> sparse.csr_matrix:
        """Cosine similarities as a CSR matrix with sorted column indices.

        Query/document similarity matrices are overwhelmingly zero (a
        short query only shares terms with a few stored documents), so
        bulk consumers like WHIRL score the nonzero entries directly
        instead of materialising the dense array.
        """
        query_matrix = self.transform(queries)
        sims = (query_matrix @ self.matrix.T).tocsr()
        sims.sort_indices()
        return sims


def _l2_normalize(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    """Row-normalise a sparse matrix; zero rows stay zero."""
    norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=1))).ravel()
    norms[norms == 0.0] = 1.0
    inverse = sparse.diags(1.0 / norms)
    return (inverse @ matrix).tocsr()


def cosine_similarity(a: list[str], b: list[str]) -> float:
    """Cosine similarity of two token lists under a two-document space.

    Convenience for tests and small-scale use; bulk work should go through
    :class:`TfidfVectorSpace`.
    """
    if not a or not b:
        return 0.0
    space = TfidfVectorSpace([a, b])
    return float(space.similarities([a])[0, 1])
