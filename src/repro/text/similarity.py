"""String-similarity metrics implemented from scratch.

The WHIRL matchers compare names as TF-IDF token bags, which is blind to
*within-token* similarity (``tel`` vs ``tele``, misspellings,
truncations). These classic metrics fill that gap and power the
edit-distance name matcher, an optional extra base learner in the spirit
of systems like Cupid that LSD's architecture can absorb.
"""

from __future__ import annotations


def levenshtein(a: str, b: str) -> int:
    """Edit distance: insertions, deletions, substitutions."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(previous[j] + 1,        # deletion
                               current[j - 1] + 1,     # insertion
                               previous[j - 1] + cost))  # substitution
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Edit distance normalised into [0, 1] (1 = identical)."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity in [0, 1]."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    matched_a = [False] * len(a)
    matched_b = [False] * len(b)
    matches = 0
    for i, char_a in enumerate(a):
        start = max(0, i - window)
        end = min(i + window + 1, len(b))
        for j in range(start, end):
            if matched_b[j] or b[j] != char_a:
                continue
            matched_a[i] = True
            matched_b[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(len(a)):
        if not matched_a[i]:
            continue
        while not matched_b[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    m = float(matches)
    return (m / len(a) + m / len(b) + (m - transpositions) / m) / 3.0


def jaro_winkler(a: str, b: str, prefix_weight: float = 0.1,
                 max_prefix: int = 4) -> float:
    """Jaro-Winkler: Jaro with a bonus for shared prefixes.

    Favouring prefixes suits schema names, where truncations
    (``tel``/``telephone``, ``desc``/``description``) abound.
    """
    base = jaro(a, b)
    prefix = 0
    for char_a, char_b in zip(a[:max_prefix], b[:max_prefix]):
        if char_a != char_b:
            break
        prefix += 1
    return base + prefix * prefix_weight * (1.0 - base)


def best_token_alignment(tokens_a: list[str], tokens_b: list[str],
                         metric=jaro_winkler) -> float:
    """Average greedy best-match similarity between two token lists.

    Each token of the shorter list is matched to its most similar token
    of the other list; the mean of those scores is returned. A cheap,
    order-insensitive name similarity for multi-word names.
    """
    if not tokens_a or not tokens_b:
        return 0.0
    if len(tokens_a) > len(tokens_b):
        tokens_a, tokens_b = tokens_b, tokens_a
    total = 0.0
    for token in tokens_a:
        total += max(metric(token, other) for other in tokens_b)
    return total / len(tokens_a)
