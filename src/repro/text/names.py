"""Tag-name normalisation and expansion for the name matcher.

Schema tag names arrive in many spellings: ``listed-price``,
``listedPrice``, ``LISTED_PRICE``, ``price2``. :func:`split_name` breaks a
name into lowercase word tokens; :func:`expand_name` additionally prepends
the tokens of every tag on the path from the root (the paper expands a
name "with synonyms and all tag names leading to this element from the
root element") and applies a synonym dictionary.
"""

from __future__ import annotations

import re

from .synonyms import SynonymDictionary

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")
_WORD = re.compile(r"[a-zA-Z]+|\d+")

#: Common abbreviations worth expanding even without a synonym dictionary.
ABBREVIATIONS: dict[str, str] = {
    "no": "number",
    "nbr": "number",
    "qty": "quantity",
    "st": "street",
    "ave": "avenue",
    "apt": "apartment",
    "dept": "department",
    "univ": "university",
    "prof": "professor",
    "asst": "assistant",
    "assoc": "associate",
}


def split_name(name: str) -> list[str]:
    """Split a tag name into lowercase word tokens.

    Handles hyphens, underscores, dots, digits and camelCase:
    ``"listedPrice"`` → ``["listed", "price"]``;
    ``"AGENT-PHONE2"`` → ``["agent", "phone", "2"]``.
    """
    with_boundaries = _CAMEL_BOUNDARY.sub(" ", name)
    return [token.lower() for token in _WORD.findall(with_boundaries)]


def normalize_name(name: str) -> str:
    """Canonical single-string form of a tag name (space-joined tokens)."""
    return " ".join(split_name(name))


def expand_name(name: str, path: tuple[str, ...] = (),
                synonyms: SynonymDictionary | None = None,
                expand_abbreviations: bool = True) -> list[str]:
    """Token representation of a tag name for the name matcher.

    Parameters
    ----------
    name:
        The tag name itself.
    path:
        Tag names from the root down to (excluding) this tag; their tokens
        are included with lower weight by simply appearing once while the
        tag's own tokens appear twice (a cheap, rank-preserving weighting).
    synonyms:
        Optional synonym dictionary; matching tokens are expanded in place.
    """
    own = split_name(name)
    context: list[str] = []
    for ancestor in path:
        context.extend(split_name(ancestor))
    tokens = own + own + context
    if expand_abbreviations:
        expanded: list[str] = []
        for token in tokens:
            expanded.append(token)
            if token in ABBREVIATIONS:
                expanded.append(ABBREVIATIONS[token])
        tokens = expanded
    if synonyms is not None:
        tokens = synonyms.expand(tokens)
    return tokens
