"""Synonym dictionary used to expand tag names before matching.

The paper's name matcher matches an element "using its tag name (expanded
with synonyms ...)". A :class:`SynonymDictionary` maps a word to the set of
words the domain builder considers equivalent; expansion is symmetric and
transitive within a group.

:func:`default_synonyms` ships a small domain-independent core (phone/
telephone, price/cost, …) which the dataset domains extend.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

#: Domain-independent synonym groups shipped with the library.
DEFAULT_GROUPS: tuple[tuple[str, ...], ...] = (
    ("phone", "telephone", "tel"),
    ("price", "cost", "amount"),
    ("address", "location", "addr"),
    ("description", "comments", "remarks", "desc", "info"),
    ("name", "title"),
    ("email", "mail"),
    ("fax", "facsimile"),
    ("city", "town"),
    ("state", "province"),
    ("zip", "zipcode", "postal"),
    ("agent", "realtor", "broker"),
    ("id", "identifier", "code", "number", "num"),
    ("date", "day"),
    ("time", "hour"),
    ("firm", "company", "office", "agency"),
    ("picture", "photo", "image"),
    ("contact", "contacts"),
    ("course", "class"),
    ("instructor", "teacher", "professor", "lecturer", "faculty"),
    ("credit", "credits", "unit", "units"),
    ("section", "sect"),
    ("building", "bldg", "hall"),
    ("room", "rm"),
    ("degree", "diploma"),
    ("research", "interests"),
    ("beds", "bedrooms", "bed", "bedroom", "br"),
    ("baths", "bathrooms", "bath", "bathroom", "ba"),
    ("sqft", "square", "area", "size"),
    ("lot", "acreage", "land"),
    ("year", "built", "yr"),
    ("garage", "parking", "carport"),
    ("school", "district"),
    ("county", "parish"),
    ("mls", "listing"),
    ("url", "link", "website", "web", "homepage"),
)


class SynonymDictionary:
    """Symmetric, transitive synonym groups over lowercase words."""

    def __init__(self, groups: Iterable[Iterable[str]] = ()) -> None:
        self._groups: dict[str, set[str]] = defaultdict(set)
        for group in groups:
            self.add_group(group)

    def add_group(self, words: Iterable[str]) -> None:
        """Declare that all of ``words`` are mutual synonyms.

        A word may belong to several declared groups; its expansion is the
        union of all groups containing it (groups are merged on overlap).
        """
        words = [w.lower() for w in words]
        merged: set[str] = set(words)
        for word in words:
            merged |= self._groups.get(word, set())
        for word in merged:
            self._groups[word] = merged

    def synonyms_of(self, word: str) -> set[str]:
        """All synonyms of ``word`` including itself."""
        return set(self._groups.get(word.lower(), {word.lower()}))

    def expand(self, tokens: list[str]) -> list[str]:
        """Expand a token list with all synonyms (order-stable, deduped)."""
        seen: set[str] = set()
        out: list[str] = []
        for token in tokens:
            for candidate in [token, *sorted(self.synonyms_of(token))]:
                if candidate not in seen:
                    seen.add(candidate)
                    out.append(candidate)
        return out

    def are_synonyms(self, a: str, b: str) -> bool:
        """True if the two words fall in the same synonym group."""
        return b.lower() in self.synonyms_of(a)

    def __len__(self) -> int:
        return len(self._groups)


def default_synonyms() -> SynonymDictionary:
    """The library's built-in domain-independent synonym dictionary."""
    return SynonymDictionary(DEFAULT_GROUPS)
