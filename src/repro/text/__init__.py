"""Text-processing substrate: tokenization, stemming, TF-IDF, names.

Everything here is dependency-free (numpy/scipy only) because the target
environment has no NLP or ML libraries; see DESIGN.md §3.
"""

from .names import ABBREVIATIONS, expand_name, normalize_name, split_name
from .similarity import (best_token_alignment, jaro, jaro_winkler,
                         levenshtein, levenshtein_similarity)
from .stemming import stem, stem_tokens
from .stopwords import STOPWORDS, is_stopword, remove_stopwords
from .synonyms import (DEFAULT_GROUPS, SynonymDictionary, default_synonyms)
from .tfidf import TfidfVectorSpace, cosine_similarity
from .tokenize import char_ngrams, ngrams, tokenize, tokenize_numeric

__all__ = [
    "ABBREVIATIONS", "DEFAULT_GROUPS", "STOPWORDS", "SynonymDictionary",
    "best_token_alignment", "jaro", "jaro_winkler", "levenshtein",
    "levenshtein_similarity",
    "TfidfVectorSpace", "char_ngrams", "cosine_similarity",
    "default_synonyms", "expand_name", "is_stopword", "ngrams",
    "normalize_name", "remove_stopwords", "split_name", "stem",
    "stem_tokens", "tokenize", "tokenize_numeric",
]
