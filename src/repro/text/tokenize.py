"""Tokenization for schema names and data content.

The paper's learners "parse and stem the words and symbols in the
instance" and the data preparation splits strings like ``$70000`` into
``$`` and ``70000``. :func:`tokenize` reproduces that behaviour:

* alphabetic runs become lowercase word tokens,
* digit runs become number tokens; thousands separators are removed first,
  so ``70,000`` is the single token ``70000``,
* the currency/punctuation symbols that carry signal (``$ % # @``) become
  single-character tokens,
* everything else (commas, parentheses, dashes…) separates tokens.
"""

from __future__ import annotations

import re

#: ``1,234`` / ``12,345,678`` — commas used as thousands separators.
_THOUSANDS_RE = re.compile(r"(?<=\d),(?=\d{3}(?!\d))")
_TOKEN_RE = re.compile(r"[a-z]+|\d+|[$%#@]")
_NUMBER_RE = re.compile(r"\d+(?:\.\d+)?")


def tokenize(text: str) -> list[str]:
    """Split ``text`` into lowercase word/number/symbol tokens."""
    cleaned = _THOUSANDS_RE.sub("", text.lower())
    return _TOKEN_RE.findall(cleaned)


def tokenize_numeric(text: str) -> list[float]:
    """Extract the numeric values mentioned in ``text``.

    ``"3 beds / 2.5 baths, $70,000"`` yields ``[3.0, 2.5, 70000.0]``.
    Used by the value-distribution learner.
    """
    cleaned = _THOUSANDS_RE.sub("", text)
    return [float(m) for m in _NUMBER_RE.findall(cleaned)]


def ngrams(tokens: list[str], n: int) -> list[tuple[str, ...]]:
    """Contiguous n-grams of a token list (empty if too short)."""
    if n <= 0:
        raise ValueError("n must be positive")
    return [tuple(tokens[i:i + n]) for i in range(len(tokens) - n + 1)]


def char_ngrams(text: str, n: int) -> list[str]:
    """Character n-grams of ``text`` (used by the format learner)."""
    if n <= 0:
        raise ValueError("n must be positive")
    if len(text) < n:
        return [text] if text else []
    return [text[i:i + n] for i in range(len(text) - n + 1)]
