"""Value-distribution learner for numeric fields.

The paper's introduction motivates learning "from the characteristics of
value distributions: ... if the average value is in the thousands, then
the element is more likely to be price than the number of bathrooms", and
§7 lists a format/value learner as the fix for fields where the text
learners fail (counts, prices, zip codes).

Per label the learner fits a Gaussian in ``log1p`` space over the numeric
values observed in training instances, plus the probability that an
instance of the label contains a number at all. Prediction combines both:
non-numeric instances are scored by the labels' non-numeric rates, numeric
instances by rate x likelihood.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core import featurize
from ..core.instance import ElementInstance
from ..core.labels import LabelSpace
from ..text import tokenize_numeric
from .base import BaseLearner
from .batching import score_distinct

_MIN_STD = 0.25  # floor in log-space: a label seen once is not a spike


class NumericLearner(BaseLearner):
    """Gaussian value-distribution classifier for numeric content."""

    name = "numeric"

    def __init__(self, smoothing: float = 1.0) -> None:
        super().__init__()
        self.smoothing = smoothing
        self._means: np.ndarray | None = None
        self._stds: np.ndarray | None = None
        self._numeric_rate: np.ndarray | None = None
        self._prior: np.ndarray | None = None

    def clone(self) -> "NumericLearner":
        return NumericLearner(self.smoothing)

    # ------------------------------------------------------------------
    @staticmethod
    def _value_of(instance: ElementInstance) -> float | None:
        """Representative numeric value of an instance (mean of mentions)."""
        value = _text_value(instance.text)
        return None if math.isnan(value) else value

    def fit(self, instances: Sequence[ElementInstance],
            labels: Sequence[str], space: LabelSpace) -> None:
        self.space = space
        n_labels = len(space)
        per_label_values: list[list[float]] = [[] for _ in range(n_labels)]
        numeric_counts = np.zeros(n_labels)
        totals = np.zeros(n_labels)
        for instance, label in zip(instances, labels):
            row = space.index_of(label)
            totals[row] += 1
            value = self._value_of(instance)
            if value is not None:
                numeric_counts[row] += 1
                per_label_values[row].append(value)

        self._means = np.zeros(n_labels)
        self._stds = np.full(n_labels, _MIN_STD)
        for row, values in enumerate(per_label_values):
            if values:
                self._means[row] = float(np.mean(values))
                if len(values) > 1:
                    self._stds[row] = max(float(np.std(values)), _MIN_STD)
        # P(instance contains a number | label), Laplace-smoothed.
        self._numeric_rate = ((numeric_counts + self.smoothing)
                              / (totals + 2.0 * self.smoothing))
        smoothed = totals + self.smoothing
        self._prior = smoothed / smoothed.sum()

    def predict_scores(self,
                       instances: Sequence[ElementInstance]) -> np.ndarray:
        space = self._require_fitted()
        assert self._means is not None and self._stds is not None
        assert self._numeric_rate is not None and self._prior is not None
        if not instances:
            return np.zeros((0, len(space)))
        # The score row is a pure function of the instance text; collapse
        # the batch to its distinct texts, then compute every row with
        # one broadcast Gaussian evaluation and a masked blend.
        texts = [featurize.instance_text(i) for i in instances]
        return score_distinct(
            texts, lambda firsts: self._score_texts(
                [texts[i] for i in firsts]))

    def _score_texts(self, texts: list[str]) -> np.ndarray:
        """One normalised score row per text, fully vectorized."""
        values = np.array([_text_value(text) for text in texts])
        numeric = ~np.isnan(values)
        non_numeric_row = self._prior * (1.0 - self._numeric_rate)
        # Gaussian likelihoods for every (text, label) pair; NaN rows
        # (non-numeric texts) are computed harmlessly and masked out.
        with np.errstate(invalid="ignore"):
            likelihood = _gaussian_pdf(values[:, None], self._means,
                                       self._stds)
        numeric_rows = self._prior * self._numeric_rate * likelihood
        scores = np.where(numeric[:, None], numeric_rows,
                          non_numeric_row)
        return self._normalize(scores)


def _text_value(text: str) -> float:
    """Representative numeric value of a text, ``nan`` when non-numeric.

    The NaN sentinel is safe: ``tokenize_numeric`` extracts values with a
    digit regex, so a parsed mention can never itself be NaN.
    """
    values = tokenize_numeric(text)
    if not values:
        return math.nan
    return math.log1p(abs(sum(values) / len(values)))


def _gaussian_pdf(x: float, means: np.ndarray,
                  stds: np.ndarray) -> np.ndarray:
    z = (x - means) / stds
    return np.exp(-0.5 * z * z) / (stds * math.sqrt(2.0 * math.pi))
