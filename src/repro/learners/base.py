"""The base-learner interface and learner registry.

A base learner (§3.3) inspects training examples derived from XML element
instances and, once fitted, emits a confidence-score distribution over the
label space for each new instance. Implementations must be *cloneable* so
the stacking meta-learner can retrain them inside cross-validation folds.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

import numpy as np

from ..core.instance import ElementInstance
from ..core.labels import LabelSpace
from ..core.prediction import Prediction, normalize_matrix


class BaseLearner(ABC):
    """Interface every LSD base learner implements.

    Score matrices returned by :meth:`predict_scores` are aligned to the
    label space given to :meth:`fit`: shape ``(n_instances, n_labels)``,
    rows non-negative and summing to one.
    """

    #: Stable identifier used by the meta-learner, lesion studies and
    #: reports. Subclasses override it.
    name: str = "base"

    #: True for learners (the XML learner) whose features depend on the
    #: labels of an instance's descendants. The matching pipeline re-runs
    #: such learners in a second pass once preliminary labels exist.
    uses_child_labels: bool = False

    #: Target rows per shard when the matching pipeline fans this
    #: learner's prediction out over a batch (``None`` = the default in
    #: :data:`repro.core.parallel.SHARD_TARGET_ROWS`). The plan is a
    #: pure function of the batch size, so any value is output-invisible
    #: — this is purely a cost declaration. Learners whose
    #: ``predict_scores`` is per-row work with no per-call amortized
    #: state (vectorizer transforms, child-label prediction, cache
    #: warm-up) should declare a finer grain so parallel maps can split
    #: them; learners with real per-call costs keep the coarse default,
    #: where test-sized batches stay whole.
    shard_rows: int | None = None

    def __init__(self) -> None:
        self.space: LabelSpace | None = None

    @abstractmethod
    def fit(self, instances: Sequence[ElementInstance],
            labels: Sequence[str], space: LabelSpace) -> None:
        """Train on instances paired with their true labels."""

    @abstractmethod
    def predict_scores(self,
                       instances: Sequence[ElementInstance]) -> np.ndarray:
        """Confidence scores for each instance, aligned to the fit space."""

    @abstractmethod
    def clone(self) -> "BaseLearner":
        """A fresh, unfitted learner with the same configuration."""

    # ------------------------------------------------------------------
    # conveniences shared by all learners
    # ------------------------------------------------------------------
    def predict(self,
                instances: Sequence[ElementInstance]) -> list[Prediction]:
        """User-facing predictions (one :class:`Prediction` per instance)."""
        if self.space is None:
            raise RuntimeError(f"learner {self.name!r} is not fitted")
        scores = self.predict_scores(instances)
        return [Prediction(self.space, row) for row in scores]

    def _require_fitted(self) -> LabelSpace:
        if self.space is None:
            raise RuntimeError(f"learner {self.name!r} is not fitted")
        return self.space

    def _uniform(self, count: int) -> np.ndarray:
        space = self._require_fitted()
        return np.full((count, len(space)), 1.0 / len(space))

    @staticmethod
    def _normalize(matrix: np.ndarray) -> np.ndarray:
        return normalize_matrix(matrix)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fitted" if self.space is not None else "unfitted"
        return f"<{type(self).__name__} {self.name!r} ({state})>"


class LearnerRegistry:
    """Name -> factory registry; lets applications plug in new learners.

    The paper stresses that LSD "is extensible to additional learners";
    registering a factory here makes a learner available to
    ``LSDSystem.with_default_learners(extra=[...])`` and to the evaluation
    configuration ladder by name.
    """

    def __init__(self) -> None:
        self._factories: dict[str, Callable[[], BaseLearner]] = {}

    def register(self, name: str,
                 factory: Callable[[], BaseLearner]) -> None:
        """Register a zero-argument factory under ``name``."""
        if name in self._factories:
            raise ValueError(f"learner {name!r} is already registered")
        self._factories[name] = factory

    def create(self, name: str) -> BaseLearner:
        """Instantiate the learner registered under ``name``."""
        try:
            factory = self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories)) or "<none>"
            raise KeyError(
                f"no learner named {name!r}; known: {known}") from None
        return factory()

    def names(self) -> list[str]:
        """All registered learner names."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories


#: The process-wide default registry (populated by repro.learners).
registry = LearnerRegistry()
