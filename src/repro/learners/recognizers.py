"""Recognizer learners with a narrow, high-precision area of expertise.

The paper's county-name recognizer "searches a database (extracted from
the Web) to verify if an XML element is a county name" and illustrates how
special-purpose modules slot into the multi-strategy architecture. The
generic :class:`GazetteerRecognizer` covers that pattern for any label and
any value list; :class:`RegexRecognizer` does the same for value *shapes*
(phone numbers, zip codes, course codes).

Recognizers abstain (uniform prediction) when they see nothing they
recognise — the meta-learner's regression weights then learn how much each
recognizer's non-abstaining votes are worth per label.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

import numpy as np

from ..core import featurize
from ..core.instance import ElementInstance
from ..core.labels import LabelSpace
from .base import BaseLearner
from .batching import group_distinct


def _recognition_scores(space_size: int, col: int, mask: np.ndarray,
                        match_confidence: float) -> np.ndarray:
    """Score matrix from a per-row recognition mask.

    Recognised rows put ``match_confidence`` on the bound label and
    spread the remainder; unrecognised rows abstain with the uniform
    row. Two masked writes replace the per-row Python loop.
    """
    uniform = 1.0 / space_size
    spread = (1.0 - match_confidence) / max(space_size - 1, 1)
    scores = np.full((mask.size, space_size), uniform)
    scores[mask] = spread
    scores[mask, col] = match_confidence
    return scores


def _recognize_batch(instances: Sequence[ElementInstance],
                     recognizes) -> np.ndarray:
    """Per-row recognition mask, evaluated once per distinct text."""
    texts = [featurize.instance_text(i) for i in instances]
    if not featurize.is_enabled():
        return np.fromiter((recognizes(text) for text in texts),
                           dtype=bool, count=len(texts))
    firsts, inverse = group_distinct(texts)
    per_key = np.fromiter((recognizes(texts[i]) for i in firsts),
                          dtype=bool, count=len(firsts))
    return per_key[inverse]


class GazetteerRecognizer(BaseLearner):
    """Scores its bound label high when the instance value is in a known
    value set (a gazetteer)."""

    def __init__(self, label: str, values: Iterable[str],
                 name: str | None = None,
                 match_confidence: float = 0.9) -> None:
        super().__init__()
        self.label = label
        self.values = {v.strip().lower() for v in values}
        self.match_confidence = match_confidence
        if name:
            self.name = name
        else:
            self.name = f"gazetteer[{label.lower()}]"

    def clone(self) -> "GazetteerRecognizer":
        return GazetteerRecognizer(self.label, self.values, self.name,
                                   self.match_confidence)

    def fit(self, instances: Sequence[ElementInstance],
            labels: Sequence[str], space: LabelSpace) -> None:
        # Gazetteers are knowledge-based: fitting only records the space.
        self.space = space

    def _recognizes(self, instance: ElementInstance) -> bool:
        return instance.text.strip().lower() in self.values

    def predict_scores(self,
                       instances: Sequence[ElementInstance]) -> np.ndarray:
        space = self._require_fitted()
        if self.label not in space:
            # Label not in this domain: always abstain.
            return self._uniform(len(instances))
        if not instances:
            return np.zeros((0, len(space)))
        mask = _recognize_batch(
            instances, lambda text: text.strip().lower() in self.values)
        return _recognition_scores(len(space),
                                   space.index_of(self.label), mask,
                                   self.match_confidence)


class RegexRecognizer(BaseLearner):
    """Scores its bound label high when the full value matches a pattern."""

    def __init__(self, label: str, pattern: str,
                 name: str | None = None,
                 match_confidence: float = 0.85) -> None:
        super().__init__()
        self.label = label
        self.pattern = pattern
        self._compiled = re.compile(pattern)
        self.match_confidence = match_confidence
        if name:
            self.name = name
        else:
            self.name = f"regex[{label.lower()}]"

    def clone(self) -> "RegexRecognizer":
        return RegexRecognizer(self.label, self.pattern, self.name,
                               self.match_confidence)

    def fit(self, instances: Sequence[ElementInstance],
            labels: Sequence[str], space: LabelSpace) -> None:
        self.space = space

    def predict_scores(self,
                       instances: Sequence[ElementInstance]) -> np.ndarray:
        space = self._require_fitted()
        if self.label not in space:
            return self._uniform(len(instances))
        if not instances:
            return np.zeros((0, len(space)))
        fullmatch = self._compiled.fullmatch
        mask = _recognize_batch(
            instances, lambda text: fullmatch(text.strip()) is not None)
        return _recognition_scores(len(space),
                                   space.index_of(self.label), mask,
                                   self.match_confidence)
