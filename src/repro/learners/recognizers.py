"""Recognizer learners with a narrow, high-precision area of expertise.

The paper's county-name recognizer "searches a database (extracted from
the Web) to verify if an XML element is a county name" and illustrates how
special-purpose modules slot into the multi-strategy architecture. The
generic :class:`GazetteerRecognizer` covers that pattern for any label and
any value list; :class:`RegexRecognizer` does the same for value *shapes*
(phone numbers, zip codes, course codes).

Recognizers abstain (uniform prediction) when they see nothing they
recognise — the meta-learner's regression weights then learn how much each
recognizer's non-abstaining votes are worth per label.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

import numpy as np

from ..core.instance import ElementInstance
from ..core.labels import LabelSpace
from .base import BaseLearner


class GazetteerRecognizer(BaseLearner):
    """Scores its bound label high when the instance value is in a known
    value set (a gazetteer)."""

    def __init__(self, label: str, values: Iterable[str],
                 name: str | None = None,
                 match_confidence: float = 0.9) -> None:
        super().__init__()
        self.label = label
        self.values = {v.strip().lower() for v in values}
        self.match_confidence = match_confidence
        if name:
            self.name = name
        else:
            self.name = f"gazetteer[{label.lower()}]"

    def clone(self) -> "GazetteerRecognizer":
        return GazetteerRecognizer(self.label, self.values, self.name,
                                   self.match_confidence)

    def fit(self, instances: Sequence[ElementInstance],
            labels: Sequence[str], space: LabelSpace) -> None:
        # Gazetteers are knowledge-based: fitting only records the space.
        self.space = space

    def _recognizes(self, instance: ElementInstance) -> bool:
        return instance.text.strip().lower() in self.values

    def predict_scores(self,
                       instances: Sequence[ElementInstance]) -> np.ndarray:
        space = self._require_fitted()
        scores = self._uniform(len(instances))
        if self.label not in space:
            return scores  # label not in this domain: always abstain
        col = space.index_of(self.label)
        others = 1.0 - self.match_confidence
        spread = others / max(len(space) - 1, 1)
        for row, instance in enumerate(instances):
            if self._recognizes(instance):
                scores[row, :] = spread
                scores[row, col] = self.match_confidence
        return scores


class RegexRecognizer(BaseLearner):
    """Scores its bound label high when the full value matches a pattern."""

    def __init__(self, label: str, pattern: str,
                 name: str | None = None,
                 match_confidence: float = 0.85) -> None:
        super().__init__()
        self.label = label
        self.pattern = pattern
        self._compiled = re.compile(pattern)
        self.match_confidence = match_confidence
        if name:
            self.name = name
        else:
            self.name = f"regex[{label.lower()}]"

    def clone(self) -> "RegexRecognizer":
        return RegexRecognizer(self.label, self.pattern, self.name,
                               self.match_confidence)

    def fit(self, instances: Sequence[ElementInstance],
            labels: Sequence[str], space: LabelSpace) -> None:
        self.space = space

    def predict_scores(self,
                       instances: Sequence[ElementInstance]) -> np.ndarray:
        space = self._require_fitted()
        scores = self._uniform(len(instances))
        if self.label not in space:
            return scores
        col = space.index_of(self.label)
        others = 1.0 - self.match_confidence
        spread = others / max(len(space) - 1, 1)
        for row, instance in enumerate(instances):
            if self._compiled.fullmatch(instance.text.strip()):
                scores[row, :] = spread
                scores[row, col] = self.match_confidence
        return scores
