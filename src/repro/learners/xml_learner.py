"""The XML learner: Naive Bayes over text, node, and edge tokens (§5).

Flat text learners confuse structured classes (HOUSE vs CONTACT-INFO vs
AGENT-INFO) because they share vocabulary. The XML learner keeps the Naive
Bayes machinery but adds *structure tokens* derived from the instance tree
after replacing each non-root, non-leaf node with its (true or predicted)
label:

* **node tokens** — one per labelled descendant node
  (``CONTACT-INFO`` instances contain ``AGENT-NAME`` node tokens,
  ``DESCRIPTION`` instances do not);
* **edge tokens** — one per parent→child pair, where the instance root is
  the generic node ``d`` and leaf words count as children
  (``d→AGENT-NAME`` separates AGENT-INFO from HOUSE even when the node
  token ``AGENT-NAME`` appears in both; ``WATERFRONT→yes`` carries signal
  the bare word ``yes`` does not).

During training the descendant labels come from the user-provided mapping;
during matching, from LSD's current predictions for the child tags
(``ElementInstance.child_labels`` is filled by the pipelines either way —
Table 2 of the paper).
"""

from __future__ import annotations

from ..core import featurize
from ..core.instance import ElementInstance
from .naive_bayes import NaiveBayesLearner

#: Label given to descendant tags for which no label is known (yet).
UNKNOWN_NODE = "?"
#: The generic root node of every instance tree (paper's ``d``).
ROOT_NODE = "d"


def structure_tokens(instance: ElementInstance,
                     include_structure: bool = True) -> list[str]:
    """The XML learner's bag of text + node + edge tokens."""
    tokens: list[str] = []
    element = instance.element
    labels = instance.child_labels

    def label_of(tag: str) -> str:
        return labels.get(tag, UNKNOWN_NODE)

    def words_of(node) -> list[str]:
        # The label-derived node/edge tokens change between structure
        # passes, but a node's text words never do — cache those via the
        # shared featurize layer so re-passes only rebuild the cheap part.
        return featurize.node_words(instance, node)

    def walk(node, node_name: str) -> None:
        for word in words_of(node):
            tokens.append(word)
            if include_structure:
                tokens.append(f"{node_name}->{word}")
        for child in node.element_children:
            child_label = label_of(child.tag)
            if include_structure:
                tokens.append(f"node:{child_label}")
                tokens.append(f"{node_name}->{child_label}")
            walk(child, child_label)

    walk(element, ROOT_NODE)
    return tokens


class XMLLearner(NaiveBayesLearner):
    """Naive Bayes with structure tokens; see module docstring."""

    name = "xml_learner"
    uses_child_labels = True

    def __init__(self, alpha: float = 1.0,
                 include_structure: bool = True) -> None:
        self.include_structure = include_structure
        super().__init__(alpha=alpha, tokenizer=self._structure_tokenizer)

    def _structure_tokenizer(self,
                             instance: ElementInstance) -> list[str]:
        return structure_tokens(instance, self.include_structure)

    def clone(self) -> "XMLLearner":
        return XMLLearner(self.alpha, self.include_structure)
