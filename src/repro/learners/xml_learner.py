"""The XML learner: Naive Bayes over text, node, and edge tokens (§5).

Flat text learners confuse structured classes (HOUSE vs CONTACT-INFO vs
AGENT-INFO) because they share vocabulary. The XML learner keeps the Naive
Bayes machinery but adds *structure tokens* derived from the instance tree
after replacing each non-root, non-leaf node with its (true or predicted)
label:

* **node tokens** — one per labelled descendant node
  (``CONTACT-INFO`` instances contain ``AGENT-NAME`` node tokens,
  ``DESCRIPTION`` instances do not);
* **edge tokens** — one per parent→child pair, where the instance root is
  the generic node ``d`` and leaf words count as children
  (``d→AGENT-NAME`` separates AGENT-INFO from HOUSE even when the node
  token ``AGENT-NAME`` appears in both; ``WATERFRONT→yes`` carries signal
  the bare word ``yes`` does not).

During training the descendant labels come from the user-provided mapping;
during matching, from LSD's current predictions for the child tags
(``ElementInstance.child_labels`` is filled by the pipelines either way —
Table 2 of the paper).
"""

from __future__ import annotations

from ..core import featurize
from ..core.instance import ElementInstance
from ..xmlio import Element
from .batching import score_distinct
from .naive_bayes import NaiveBayesLearner

#: Label given to descendant tags for which no label is known (yet).
UNKNOWN_NODE = "?"
#: The generic root node of every instance tree (paper's ``d``).
ROOT_NODE = "d"

#: feature_cache key of the cached (words, children) skeleton.
_SKELETON = "structure_skeleton"

#: feature_cache key of the skeleton's hashable canonical form.
_SKELETON_KEY = "structure_skeleton_key"


def _build_skeleton(instance: ElementInstance, node) -> tuple:
    """``(words, [(child_tag, child_skeleton), ...])`` for one subtree.

    The skeleton is everything about the instance tree that does *not*
    depend on the current child labels: per-node word tokens (through the
    shared featurize layer) and the child-tag shape. Structure re-passes
    only relabel; they never change the tree, so this is computed once
    per instance and pinned on its feature cache.
    """
    children = [child for child in node.children
                if isinstance(child, Element)]
    return (featurize.node_words(instance, node, is_leaf=not children),
            [(child.tag, _build_skeleton(instance, child))
             for child in children])


def _skeleton_of(instance: ElementInstance) -> tuple:
    if not featurize.is_enabled():
        return _build_skeleton(instance, instance.element)
    cache = instance.feature_cache
    skeleton = cache.get(_SKELETON)
    if skeleton is None:
        skeleton = cache[_SKELETON] = _build_skeleton(
            instance, instance.element)
    return skeleton


def _canonical_key(skeleton: tuple) -> tuple:
    words, children = skeleton
    return (tuple(words),
            tuple((tag, _canonical_key(child)) for tag, child in children))


def skeleton_key(instance: ElementInstance) -> tuple:
    """A hashable canonical form of the instance's structure skeleton.

    Two instances with equal keys produce identical
    :func:`structure_tokens` under equal ``child_labels`` — the token
    walk is a pure function of (skeleton, labels). Cached per instance
    so duplicate-heavy columns can be deduplicated *before* walking.
    """
    cache = instance.feature_cache
    key = cache.get(_SKELETON_KEY)
    if key is None:
        key = cache[_SKELETON_KEY] = _canonical_key(_skeleton_of(instance))
    return key


def structure_tokens(instance: ElementInstance,
                     include_structure: bool = True) -> list[str]:
    """The XML learner's bag of text + node + edge tokens."""
    tokens: list[str] = []
    labels = instance.child_labels

    def walk(skeleton: tuple, node_name: str) -> None:
        words, children = skeleton
        for word in words:
            tokens.append(word)
            if include_structure:
                tokens.append(f"{node_name}->{word}")
        for child_tag, child_skeleton in children:
            child_label = labels.get(child_tag, UNKNOWN_NODE)
            if include_structure:
                tokens.append(f"node:{child_label}")
                tokens.append(f"{node_name}->{child_label}")
            walk(child_skeleton, child_label)

    walk(_skeleton_of(instance), ROOT_NODE)
    return tokens


class XMLLearner(NaiveBayesLearner):
    """Naive Bayes with structure tokens; see module docstring."""

    name = "xml_learner"
    uses_child_labels = True

    def __init__(self, alpha: float = 1.0,
                 include_structure: bool = True) -> None:
        self.include_structure = include_structure
        super().__init__(alpha=alpha, tokenizer=self._structure_tokenizer)

    def _structure_tokenizer(self,
                             instance: ElementInstance) -> list[str]:
        return structure_tokens(instance, self.include_structure)

    def predict_scores(self, instances):
        """Dedup on (skeleton key, child labels) *before* tokenizing.

        The generic Naive Bayes path tokenizes every instance and then
        groups equal token bags; the structure walk is the expensive
        part here, so duplicates skip it entirely. Exact because
        :func:`structure_tokens` is a pure function of the skeleton and
        the child-label map. Falls back to the generic path when the
        cache layer is off (the key lives on the feature cache).
        """
        if not featurize.is_enabled() or not instances:
            return super().predict_scores(instances)
        space = self._require_fitted()
        if self._log_prior is None or self._log_likelihood is None:
            raise RuntimeError("learner is not fitted")
        keys = [(skeleton_key(i), tuple(sorted(i.child_labels.items())))
                for i in instances]
        return score_distinct(
            keys, lambda firsts: self._score_documents(
                [self.tokenizer(instances[i]) for i in firsts]))

    def clone(self) -> "XMLLearner":
        return XMLLearner(self.alpha, self.include_structure)
