"""Stacking meta-learner: per-label least-squares learner weights (§3.1).

Training (step 5 of the training phase):

1. Cross-validate every base learner on the training examples (``d = 5``
   folds, per the paper) to obtain unbiased prediction sets ``CV(L)``.
2. For each label ``c``, gather the tuples
   ``<s(c|x,L1), ..., s(c|x,Lk), l(c,x)>`` over all training instances.
3. Least-squares regression of the indicator ``l(c,x)`` on the learner
   scores yields the weights ``W[c, Lj]``.

Matching: the combined score of label ``c`` for an instance is
``sum_j W[c, Lj] * s(c|x, Lj)``, then the scores are normalised.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.instance import ElementInstance
from ..core.labels import LabelSpace
from ..core.parallel import ParallelExecutor, resolve
from ..core.prediction import normalize_matrix
from ..observability import Observer, StageProfile, resolve_observer
from ..observability.metrics import M_CV_TASKS
from .base import BaseLearner


def _fold_splits(n: int, folds: int, seed: int) -> list[np.ndarray]:
    """The held-out index blocks: a seeded shuffle split into ``folds``
    near-equal parts. Pure function of ``(n, folds, seed)``, so every
    caller that shares the seed shares the exact fold membership."""
    rng = np.random.default_rng(seed)
    return np.array_split(rng.permutation(n), folds)


def _run_fold(learner: BaseLearner,
              instances: Sequence[ElementInstance],
              labels: Sequence[str], space: LabelSpace,
              train_idx: np.ndarray, held_out: np.ndarray) -> np.ndarray:
    """One (learner, fold) task: train a clone, predict the held-out
    block; uniform scores when the clone cannot be trained."""
    clone = learner.clone()
    try:
        clone.fit([instances[i] for i in train_idx],
                  [labels[i] for i in train_idx], space)
        return clone.predict_scores([instances[i] for i in held_out])
    except (ValueError, RuntimeError):
        return np.full((len(held_out), len(space)), 1.0 / len(space))


def cross_validate_many(learners: Sequence[BaseLearner],
                        instances: Sequence[ElementInstance],
                        labels: Sequence[str], space: LabelSpace,
                        folds: int = 5, seed: int = 0,
                        executor: ParallelExecutor | None = None,
                        profile: StageProfile | None = None,
                        observer: Observer | None = None
                        ) -> list[np.ndarray]:
    """Out-of-fold predictions for every learner, fanned out at
    (learner × fold) granularity.

    The examples are shuffled into ``folds`` equal parts; each part is
    predicted by a clone trained on the remaining parts, preventing the
    bias the paper warns about ("when applied to any example t, it has
    already been trained on t"). All learners share the same seeded fold
    split, exactly as if each were cross-validated alone.

    ``folds`` is capped at ``n`` so every training split keeps at least
    one example (with ``n == 1`` no split can train at all and every
    example gets uniform scores). A split whose clone cannot be trained
    — e.g. a WHIRL learner handed zero usable documents — also falls
    back to uniform out-of-fold scores instead of crashing the whole
    training phase.

    The (learner, fold) task grid fans out across ``executor`` (serial
    by default) — with k learners and d folds that is k*d independent
    tasks, so a handful of workers stays busy even when one learner
    dominates the runtime. Results are gathered positionally into
    per-learner matrices whose fold blocks are disjoint rows, so any
    worker count is byte-identical to serial.

    ``profile`` accumulates per-learner fold timings
    (``cv.learner.<name>``) — worker-side timings merge back via
    :meth:`~repro.core.parallel.ParallelExecutor.map_profiled`, so they
    are no longer dropped on the parallel path. ``observer`` records a
    ``cv`` span with one child per (learner, fold) task.
    """
    obs = resolve_observer(observer)
    n = len(instances)
    n_labels = len(space)
    if n == 0:
        return [np.zeros((0, n_labels)) for _ in learners]
    folds = min(folds, n)
    if folds < 2:
        # A single example cannot be held out of its own training set.
        return [np.full((n, n_labels), 1.0 / n_labels) for _ in learners]
    boundaries = _fold_splits(n, folds, seed)
    all_indices = np.arange(n)
    train_sets = [np.setdiff1d(all_indices, held_out)
                  for held_out in boundaries]
    tasks = [(learner, fold, train_idx, held_out)
             for learner in learners
             for fold, (train_idx, held_out)
             in enumerate(zip(train_sets, boundaries))]
    obs.metrics.counter(M_CV_TASKS).inc(len(tasks))
    with obs.trace.span("cv", folds=folds,
                        learners=len(learners)) as cv_span:

        def run_task(task, prof: StageProfile) -> np.ndarray:
            learner, fold, train_idx, held_out = task
            with prof.stage(f"cv.learner.{learner.name}"), \
                    obs.trace.span(f"fold.{learner.name}.{fold}",
                                   parent=cv_span.span_id,
                                   held_out=len(held_out)):
                return _run_fold(learner, instances, labels, space,
                                 train_idx, held_out)

        pool = resolve(executor)
        if profile is not None:
            blocks = pool.map_profiled(run_task, tasks, profile)
        else:
            blocks = pool.map(
                lambda task: run_task(task, StageProfile()), tasks)
    matrices: list[np.ndarray] = []
    for learner_index in range(len(learners)):
        scores = np.zeros((n, n_labels))
        for fold_index, held_out in enumerate(boundaries):
            scores[held_out] = blocks[learner_index * folds + fold_index]
        matrices.append(scores)
    return matrices


def cross_validate(learner: BaseLearner,
                   instances: Sequence[ElementInstance],
                   labels: Sequence[str], space: LabelSpace,
                   folds: int = 5, seed: int = 0,
                   executor: ParallelExecutor | None = None,
                   profile: StageProfile | None = None,
                   observer: Observer | None = None) -> np.ndarray:
    """Out-of-fold predictions of one learner — see
    :func:`cross_validate_many`, whose single-learner case this is.
    ``executor`` fans the folds out."""
    return cross_validate_many(
        [learner], instances, labels, space,
        folds=folds, seed=seed, executor=executor, profile=profile,
        observer=observer)[0]


class StackingMetaLearner:
    """Combines base-learner score matrices with per-label weights."""

    def __init__(self, folds: int = 5, regularization: float = 0.05,
                 seed: int = 0) -> None:
        self.folds = folds
        #: Ridge strength, as a fraction of the training-set size, pulling
        #: the weights toward uniform averaging. Plain least squares is
        #: brittle here: base learners are correlated, and a learner that
        #: happens to be near-perfect on the training *sources* (e.g. the
        #: name matcher when training tag names all share synonyms) would
        #: zero out every other learner and then fail on a source with
        #: novel names. Shrinking toward the average keeps every learner's
        #: evidence alive while still letting the regression shift trust.
        self.regularization = regularization
        self.seed = seed
        self.learner_names: tuple[str, ...] = ()
        self.weights: np.ndarray | None = None  # (n_labels, n_learners)
        self.space: LabelSpace | None = None

    @property
    def is_fitted(self) -> bool:
        return self.weights is not None

    # ------------------------------------------------------------------
    def fit(self, cv_scores: dict[str, np.ndarray],
            labels: Sequence[str], space: LabelSpace) -> None:
        """Learn weights from cross-validated base-learner scores.

        ``cv_scores[name]`` is the ``(n, n_labels)`` out-of-fold score
        matrix of one base learner (from :func:`cross_validate`).
        """
        if not cv_scores:
            raise ValueError("need at least one base learner")
        self.space = space
        self.learner_names = tuple(cv_scores)
        n = len(labels)
        n_labels = len(space)
        n_learners = len(self.learner_names)

        # indicator[i, c] = l(c, x_i)
        indicator = np.zeros((n, n_labels))
        for i, label in enumerate(labels):
            indicator[i, space.index_of(label)] = 1.0

        self.weights = np.zeros((n_labels, n_learners))
        lam = self.regularization * max(n, 1)
        ridge = lam * np.eye(n_learners)
        prior = np.full(n_learners, 1.0 / n_learners)
        for c in range(n_labels):
            # design[i, j] = s(c | x_i, L_j)
            design = np.column_stack(
                [cv_scores[name][:, c] for name in self.learner_names])
            gram = design.T @ design + ridge
            target = design.T @ indicator[:, c] + lam * prior
            # Negative weights would let one learner's *low* score argue
            # for a label; clip to keep combination interpretable.
            row = np.maximum(np.linalg.solve(gram, target), 0.0)
            if not row.any():
                # Clipping an all-negative solution would leave this
                # label with zero weight everywhere — no learner could
                # vote for it and its combined column would be
                # identically zero (and zero out of the quarantine
                # renormalization too). Fall back to uniform averaging.
                row = prior.copy()
            self.weights[c] = row
        # Fitted weights are read-only from here on: combination and
        # quarantine renormalization work on copies, so the table can be
        # shared zero-copy across worker processes / memmapped models
        # (repro.core.shared_arrays documents the contract).
        self.weights.setflags(write=False)

    def fit_uniform(self, learner_names: Sequence[str],
                    space: LabelSpace) -> None:
        """Ablation baseline: equal weight for every learner and label."""
        self.space = space
        self.learner_names = tuple(learner_names)
        self.weights = np.full((len(space), len(self.learner_names)),
                               1.0 / len(self.learner_names))
        self.weights.setflags(write=False)  # same contract as fit()

    # ------------------------------------------------------------------
    def combine(self, scores_by_learner: dict[str, np.ndarray],
                missing_ok: bool = False) -> np.ndarray:
        """Weighted combination of base-learner score matrices.

        Returns a normalised ``(n, n_labels)`` matrix.

        ``missing_ok=True`` tolerates learners absent from
        ``scores_by_learner`` (e.g. quarantined mid-run): each label's
        weight row is renormalized over the survivors so the row keeps
        its original mass. A label whose surviving weights are all zero
        falls back to uniform weighting over the survivors. With every
        fitted learner present the weights are used untouched, so the
        healthy path is byte-identical either way.
        """
        if self.weights is None or self.space is None:
            raise RuntimeError("meta-learner is not fitted")
        missing = set(self.learner_names) - set(scores_by_learner)
        if missing and not missing_ok:
            raise ValueError(f"missing scores for learners: {missing}")
        names = [name for name in self.learner_names
                 if name in scores_by_learner]
        if not names:
            raise ValueError("no surviving learners to combine")
        weights = self.weights if not missing \
            else self._renormalized_weights(names)
        stacked = np.stack([np.asarray(scores_by_learner[name],
                                       dtype=np.float64)
                            for name in names])
        # One einsum over the (learner, instance, label) stack. No
        # ``optimize=True``: the default einsum path accumulates the
        # learner axis element-wise in index order — deterministic and
        # row-independent, which keeps batch scoring bitwise equal to
        # per-instance scoring.
        combined = np.einsum("lnc,cl->nc", stacked, weights)
        return normalize_matrix(combined)

    def _renormalized_weights(self, names: Sequence[str]) -> np.ndarray:
        """Per-label weight rows restricted to ``names``, rescaled so
        each row keeps the mass it had over the full ensemble."""
        assert self.weights is not None
        columns = [self.learner_names.index(name) for name in names]
        sub = self.weights[:, columns].copy()
        full_sums = self.weights.sum(axis=1)
        sub_sums = sub.sum(axis=1)
        live = sub_sums > 0
        scale = np.where(live, full_sums / np.where(live, sub_sums, 1.0),
                         0.0)
        sub *= scale[:, None]
        dead = (~live) & (full_sums > 0)
        if dead.any():
            sub[dead] = full_sums[dead, None] / len(names)
        return sub

    def weight_of(self, label: str, learner_name: str) -> float:
        """The learned weight ``W[label, learner]``."""
        if self.weights is None or self.space is None:
            raise RuntimeError("meta-learner is not fitted")
        return float(self.weights[self.space.index_of(label),
                                  self.learner_names.index(learner_name)])

    def weight_table(self) -> dict[str, dict[str, float]]:
        """``{label: {learner: weight}}`` view for reports and debugging."""
        if self.weights is None or self.space is None:
            raise RuntimeError("meta-learner is not fitted")
        return {
            label: {name: float(self.weights[c, j])
                    for j, name in enumerate(self.learner_names)}
            for c, label in enumerate(self.space.labels)
        }
