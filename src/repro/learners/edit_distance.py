"""Edit-distance name matcher: an optional extra base learner.

§7 of the paper notes that partial and truncated names (``tel``,
``desc``, ``agt``) defeat the token-based name matcher. This learner
compares *characters* instead of tokens: Jaro-Winkler over the best
greedy token alignment of the split names. It demonstrates the
architecture's extensibility — drop it into the learner list and the
meta-learner learns when to trust it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.instance import ElementInstance
from ..core.labels import LabelSpace
from ..text import split_name
from ..text.similarity import best_token_alignment
from .base import BaseLearner
from .batching import group_distinct


class EditDistanceNameMatcher(BaseLearner):
    """Nearest-neighbour over character-level name similarity."""

    name = "edit_distance"

    def __init__(self, sharpness: float = 6.0) -> None:
        """``sharpness`` exponentiates similarities so near-exact matches
        dominate moderately similar ones."""
        super().__init__()
        self.sharpness = sharpness
        self._examples: list[tuple[list[str], int]] = []

    def clone(self) -> "EditDistanceNameMatcher":
        return EditDistanceNameMatcher(self.sharpness)

    def fit(self, instances: Sequence[ElementInstance],
            labels: Sequence[str], space: LabelSpace) -> None:
        self.space = space
        seen: set[tuple[tuple[str, ...], int]] = set()
        self._examples = []
        for instance, label in zip(instances, labels):
            tokens = split_name(instance.tag)
            key = (tuple(tokens), space.index_of(label))
            if key not in seen:
                seen.add(key)
                self._examples.append((tokens, space.index_of(label)))

    def predict_scores(self,
                       instances: Sequence[ElementInstance]) -> np.ndarray:
        space = self._require_fitted()
        if not instances:
            return np.zeros((0, len(space)))
        # Score each distinct tag once; one gather replaces the row loop.
        tags = [instance.tag for instance in instances]
        firsts, inverse = group_distinct(tags)
        per_tag = np.stack([self._score_tag(tags[i]) for i in firsts])
        return per_tag[inverse]

    def _score_tag(self, tag: str) -> np.ndarray:
        space = self._require_fitted()
        tokens = split_name(tag)
        raw = np.zeros(len(space))
        for example_tokens, label_index in self._examples:
            similarity = best_token_alignment(tokens, example_tokens)
            raw[label_index] = max(raw[label_index],
                                   similarity ** self.sharpness)
        total = raw.sum()
        if total <= 0.0:
            return np.full(len(space), 1.0 / len(space))
        return raw / total
