"""Format learner: Naive Bayes over value *shapes* (§7 extension).

The paper's discussion section notes that "course codes are short
alpha-numeric strings ... a format learner would presumably match it
better than any of LSD's current base learners". This learner implements
that suggestion: each instance value is mapped to a shape string (letters
→ ``a``, digits → ``9``, everything else kept) and classified by
multinomial NB over the shape's character trigrams.

``(206) 523 4719`` → ``(999) 999 9999`` — every phone number shares the
same trigrams regardless of the digits; ``CSE142`` → ``aaa999``.
"""

from __future__ import annotations

from ..core.instance import ElementInstance
from ..text import char_ngrams
from .naive_bayes import NaiveBayesLearner

_MAX_SHAPE_LENGTH = 40


def value_shape(text: str) -> str:
    """Collapse a value to its character-class shape."""
    shape: list[str] = []
    for ch in text.strip()[:_MAX_SHAPE_LENGTH * 2]:
        if ch.isalpha():
            code = "a"
        elif ch.isdigit():
            code = "9"
        elif ch.isspace():
            code = " "
        else:
            code = ch
        # Collapse runs beyond length 4 ("aaaaaa" and "aaaaa" are the same
        # kind of field) while preserving the 3-vs-4 digit distinction
        # phone segments and course numbers rely on.
        if len(shape) >= 4 and all(s == code for s in shape[-4:]):
            continue
        shape.append(code)
    return "".join(shape)[:_MAX_SHAPE_LENGTH]


def shape_tokens(instance: ElementInstance) -> list[str]:
    """Character trigrams of the value shape, with boundary markers."""
    shape = "^" + value_shape(instance.text) + "$"
    return char_ngrams(shape, 3)


class FormatLearner(NaiveBayesLearner):
    """NB over shape trigrams; see module docstring."""

    name = "format"

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__(alpha=alpha, tokenizer=shape_tokens)

    def clone(self) -> "FormatLearner":
        return FormatLearner(self.alpha)
