"""A DELTA-style metadata learner (§8 of the paper).

"Clifton et al. describe DELTA, which associates with each attribute a
text string that consists of all meta-data on the attribute, then matches
attributes based on the similarity of the text strings." As with Semint,
the paper notes DELTA "could be plugged in as [a] new base learner".

Here the metadata document for an instance is the concatenation of its
tag-name tokens, its ancestor-path tokens, and a sample of its content
tokens — everything one would find in a data dictionary entry — matched
with the same WHIRL nearest-neighbour engine the other matchers use.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core import featurize
from ..core.instance import ElementInstance
from ..core.labels import LabelSpace
from ..text import split_name
from .base import BaseLearner
from .batching import score_distinct
from .whirl import WhirlIndex

_CONTENT_SAMPLE_TOKENS = 12


def metadata_document(instance: ElementInstance) -> list[str]:
    """The DELTA-style all-metadata text for one instance."""
    tokens: list[str] = []
    tokens.extend(split_name(instance.tag))
    for ancestor in instance.path[1:]:
        tokens.extend(split_name(ancestor))
    # Same pipeline the content learners run, through the shared cache.
    content = featurize.content_tokens(instance)
    tokens.extend(content[:_CONTENT_SAMPLE_TOKENS])
    return tokens


class MetadataLearner(BaseLearner):
    """WHIRL over combined name+path+content metadata documents."""

    name = "metadata"

    def __init__(self, max_neighbors: int = 30,
                 max_examples_per_label: int = 300) -> None:
        super().__init__()
        self.max_neighbors = max_neighbors
        self.max_examples_per_label = max_examples_per_label
        self._index = WhirlIndex(max_neighbors=max_neighbors)

    def clone(self) -> "MetadataLearner":
        return MetadataLearner(self.max_neighbors,
                               self.max_examples_per_label)

    def fit(self, instances: Sequence[ElementInstance],
            labels: Sequence[str], space: LabelSpace) -> None:
        self.space = space
        per_label: dict[str, int] = {}
        documents: list[list[str]] = []
        kept: list[str] = []
        for instance, label in zip(instances, labels):
            count = per_label.get(label, 0)
            if count >= self.max_examples_per_label:
                continue
            per_label[label] = count + 1
            documents.append(metadata_document(instance))
            kept.append(label)
        self._index.fit(documents, kept, space)

    def predict_scores(self,
                       instances: Sequence[ElementInstance]) -> np.ndarray:
        space = self._require_fitted()
        if not instances:
            return np.zeros((0, len(space)))
        # The metadata document is a pure function of (tag, path, text):
        # build and score it once per distinct key, broadcast the rows.
        keys = [(i.tag, i.path, featurize.instance_text(i))
                for i in instances]
        return score_distinct(
            keys, lambda firsts: self._index.scores(
                [metadata_document(instances[i]) for i in firsts]))
