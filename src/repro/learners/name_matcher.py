"""The name matcher: WHIRL nearest-neighbour over expanded tag names.

"The Name Matcher matches an XML element using its tag name (expanded with
synonyms and all tag names leading to this element from the root element)"
(§3.3). It is strong on specific, descriptive names (``price``,
``house-location``) and weak on vacuous ones (``item``, ``listing``) —
the meta-learner's per-label weights account for that.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.instance import ElementInstance
from ..core.labels import LabelSpace
from ..text import SynonymDictionary, default_synonyms, expand_name
from .base import BaseLearner
from .batching import group_distinct
from .whirl import WhirlIndex


class NameMatcher(BaseLearner):
    """WHIRL classifier over tag-name tokens."""

    name = "name_matcher"

    def __init__(self, synonyms: SynonymDictionary | None = None,
                 use_paths: bool = True, max_neighbors: int = 30) -> None:
        super().__init__()
        self.synonyms = synonyms if synonyms is not None \
            else default_synonyms()
        self.use_paths = use_paths
        self.max_neighbors = max_neighbors
        self._index = WhirlIndex(max_neighbors=max_neighbors)

    def clone(self) -> "NameMatcher":
        return NameMatcher(self.synonyms, self.use_paths,
                           self.max_neighbors)

    # ------------------------------------------------------------------
    def _document(self, instance: ElementInstance) -> list[str]:
        path = instance.path[1:] if self.use_paths else ()
        return expand_name(instance.tag, path, self.synonyms)

    def fit(self, instances: Sequence[ElementInstance],
            labels: Sequence[str], space: LabelSpace) -> None:
        self.space = space
        documents = [self._document(instance) for instance in instances]
        self._index.fit(documents, list(labels), space)

    def predict_scores(self,
                       instances: Sequence[ElementInstance]) -> np.ndarray:
        space = self._require_fitted()
        if not instances:
            return np.zeros((0, len(space)))
        # Every instance of a tag shares the same name document: score each
        # distinct (tag, path) once and broadcast.
        keys = [(i.tag, i.path) for i in instances]
        firsts, inverse = group_distinct(keys)
        per_key = self._index.scores(
            [self._document(instances[i]) for i in firsts])
        return per_key[inverse]
