"""A Semint-style statistics learner (§8 of the paper).

"The Semint system uses a neural-network learner. It matches schema
elements using properties such as field specifications (e.g., data types
and scale) and statistics of data content (e.g., maximum, minimum, and
average)." The paper adds: "With LSD, both Semint and DELTA could be
plugged in as new base learners, and their predictions would be combined
by the meta-learner." This module does exactly that plugging-in.

Instead of Semint's small neural network, each label is summarised by the
centroid of a per-instance statistics vector (value magnitudes, length,
character-class composition, distinctness); prediction is softmax over
negative distances to the centroids — the same "field statistics" signal
with a simpler, deterministic estimator.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core import featurize
from ..core.instance import ElementInstance
from ..core.labels import LabelSpace
from ..text import tokenize, tokenize_numeric
from .base import BaseLearner
from .batching import score_distinct

#: Number of features in the statistics vector.
N_FEATURES = 8


def statistics_vector(text: str) -> np.ndarray:
    """Per-instance field statistics (all roughly unit-scaled)."""
    stripped = text.strip()
    length = len(stripped)
    if length == 0:
        return np.zeros(N_FEATURES)
    digits = sum(ch.isdigit() for ch in stripped)
    alphas = sum(ch.isalpha() for ch in stripped)
    spaces = sum(ch.isspace() for ch in stripped)
    punct = length - digits - alphas - spaces
    numbers = tokenize_numeric(stripped)
    tokens = tokenize(stripped)
    magnitude = 0.0
    if numbers:
        mean_value = sum(abs(n) for n in numbers) / len(numbers)
        magnitude = math.log1p(mean_value) / 16.0  # ~1.0 near 1e7
    return np.array([
        min(length / 80.0, 1.0),          # scaled length
        digits / length,                  # digit ratio
        alphas / length,                  # letter ratio
        punct / length,                   # punctuation ratio
        min(len(tokens) / 12.0, 1.0),     # token count
        1.0 if numbers else 0.0,          # contains a number
        magnitude,                        # log value magnitude
        min(len(numbers) / 6.0, 1.0),     # how many numbers
    ])


class StatisticsLearner(BaseLearner):
    """Nearest-centroid classifier over field-statistics vectors."""

    name = "statistics"

    def __init__(self, temperature: float = 0.15) -> None:
        """``temperature`` scales distances before the softmax; smaller
        values make the learner more opinionated. The default is soft
        on purpose: field statistics overlap across labels, and an
        overconfident statistics vote drags the stacked ensemble down.
        """
        super().__init__()
        self.temperature = temperature
        self._centroids: np.ndarray | None = None
        self._seen: np.ndarray | None = None

    def clone(self) -> "StatisticsLearner":
        return StatisticsLearner(self.temperature)

    def fit(self, instances: Sequence[ElementInstance],
            labels: Sequence[str], space: LabelSpace) -> None:
        self.space = space
        sums = np.zeros((len(space), N_FEATURES))
        counts = np.zeros(len(space))
        for instance, label in zip(instances, labels):
            row = space.index_of(label)
            sums[row] += statistics_vector(instance.text)
            counts[row] += 1
        self._seen = counts > 0
        safe = np.where(counts == 0, 1, counts)
        self._centroids = sums / safe[:, None]

    def predict_scores(self,
                       instances: Sequence[ElementInstance]) -> np.ndarray:
        space = self._require_fitted()
        if self._centroids is None or self._seen is None:
            raise RuntimeError("learner is not fitted")
        if not instances:
            return np.zeros((0, len(space)))
        if not self._seen.any():
            # Fitted on zero examples: every centroid column would be
            # masked to -inf and the max-shift would turn the whole row
            # into NaN (-inf - -inf). No training evidence means the
            # learner abstains with the uniform row instead.
            return self._uniform(len(instances))
        # Distances are a pure function of the instance text, so the
        # batch collapses to its distinct texts before the matrix math.
        texts = [featurize.instance_text(i) for i in instances]
        return score_distinct(
            texts, lambda firsts: self._score_texts(
                [texts[i] for i in firsts]))

    def _score_texts(self, texts: list[str]) -> np.ndarray:
        """Softmax over negative centroid distances, one row per text."""
        assert self._centroids is not None and self._seen is not None
        vectors = np.stack([statistics_vector(text) for text in texts])
        # (n, labels) squared distances to each centroid.
        deltas = vectors[:, None, :] - self._centroids[None, :, :]
        distances = np.sqrt((deltas ** 2).sum(axis=2))
        logits = -distances / self.temperature
        # Labels never seen in training get no vote.
        logits[:, ~self._seen] = -np.inf
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        totals = exp.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return exp / totals
