"""Distinct-batch helpers shared by the vectorized learners.

Real instance columns are duplicate-heavy: the same city, agent, price
or yes/no value repeats across hundreds of listings. Every base learner
in this package scores an instance as a pure row-wise function of some
*key* derived from it (its text, its tag name, its token bag), so a
batch can be collapsed to its distinct keys, scored once per key, and
broadcast back with one fancy-index gather — numerically identical to
scoring every row, because no step mixes information across rows.

This module centralises the pattern that :class:`~repro.learners.
naive_bayes.NaiveBayesLearner` and :class:`~repro.learners.whirl.
WhirlIndex` pioneered, so the statistics, numeric, recognizer, metadata
and edit-distance learners all share one implementation.

The collapse rides the :mod:`repro.core.featurize` switch: under
``featurize.cache_disabled()`` every row is scored naively, which is
what lets the benchmark harness measure the un-deduplicated baseline.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

import numpy as np

from ..core import featurize


def group_distinct(keys: Sequence[Hashable]
                   ) -> tuple[list[int], np.ndarray]:
    """First-occurrence index of each distinct key, plus the inverse map.

    Returns ``(firsts, inverse)`` where ``firsts[d]`` is the position of
    the first item carrying distinct key ``d`` (in first-seen order) and
    ``inverse[i]`` is the distinct index of item ``i`` — so a matrix
    scored per distinct key broadcasts back as ``per_key[inverse]``.
    """
    slots: dict[Hashable, int] = {}
    firsts: list[int] = []
    inverse = np.empty(len(keys), dtype=np.intp)
    for position, key in enumerate(keys):
        slot = slots.get(key)
        if slot is None:
            slot = slots[key] = len(firsts)
            firsts.append(position)
        inverse[position] = slot
    return firsts, inverse


def score_distinct(keys: Sequence[Hashable],
                   score: Callable[[list[int]], np.ndarray]
                   ) -> np.ndarray:
    """Score once per distinct key and broadcast rows back.

    ``score(firsts)`` receives the first-occurrence positions of the
    distinct keys and must return one score row per position. When every
    key is unique (or memoisation is globally disabled) the batch is
    scored directly with no gather copy.
    """
    if not featurize.is_enabled():
        return score(list(range(len(keys))))
    firsts, inverse = group_distinct(keys)
    if len(firsts) == len(keys):
        return score(firsts)
    return score(firsts)[inverse]
