"""WHIRL-style nearest-neighbour classification over TF-IDF space.

Cohen & Hirsh's WHIRL, which the paper's name matcher and content matcher
use, stores training documents and scores a query label by combining the
cosine similarities of the stored neighbours carrying that label:

    score(c | q) = 1 - prod_{d in top-K neighbours with label c} (1 - sim(q, d))

so several moderately similar neighbours of one label reinforce each
other, and a single exact-name neighbour dominates. Scores are then
normalised across labels.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.labels import LabelSpace
from ..text import TfidfVectorSpace


class WhirlIndex:
    """A fitted nearest-neighbour index over token-list documents."""

    def __init__(self, max_neighbors: int = 30,
                 min_similarity: float = 0.0,
                 deduplicate: bool = True) -> None:
        """
        Parameters
        ----------
        max_neighbors:
            Only the K most similar stored documents vote for a query;
            keeps hundreds of duplicate training examples from saturating
            every label's score at 1.
        min_similarity:
            Neighbours below this cosine similarity are ignored (the
            paper's ``delta`` distance threshold).
        deduplicate:
            Store each distinct ``(document, label)`` pair once. Training
            columns contain the same tag name hundreds of times; WHIRL's
            vote combination only needs the distinct evidence.
        """
        self.max_neighbors = max_neighbors
        self.min_similarity = min_similarity
        self.deduplicate = deduplicate
        self._space: TfidfVectorSpace | None = None
        self._label_matrix: np.ndarray | None = None
        self._labels: LabelSpace | None = None

    @property
    def is_fitted(self) -> bool:
        return self._space is not None

    def fit(self, documents: Sequence[list[str]], labels: Sequence[str],
            space: LabelSpace) -> None:
        """Index ``documents`` with their labels."""
        if len(documents) != len(labels):
            raise ValueError("documents and labels differ in length")
        if not documents:
            raise ValueError("cannot fit WHIRL on zero documents")
        if self.deduplicate:
            seen: set[tuple[tuple[str, ...], str]] = set()
            kept_docs: list[list[str]] = []
            kept_labels: list[str] = []
            for doc, label in zip(documents, labels):
                key = (tuple(doc), label)
                if key not in seen:
                    seen.add(key)
                    kept_docs.append(list(doc))
                    kept_labels.append(label)
            documents, labels = kept_docs, kept_labels

        self._labels = space
        self._space = TfidfVectorSpace(list(documents))
        # One-hot (n_docs, n_labels) matrix for vectorised vote grouping.
        label_matrix = np.zeros((len(documents), len(space)))
        for row, label in enumerate(labels):
            label_matrix[row, space.index_of(label)] = 1.0
        self._label_matrix = label_matrix

    def scores(self, queries: Sequence[list[str]]) -> np.ndarray:
        """Normalised ``(n_queries, n_labels)`` WHIRL scores."""
        if self._space is None or self._label_matrix is None \
                or self._labels is None:
            raise RuntimeError("WhirlIndex is not fitted")
        if not queries:
            return np.zeros((0, len(self._labels)))
        sims = self._space.similarities(list(queries))
        sims = np.clip(sims, 0.0, 1.0 - 1e-9)
        if self.min_similarity > 0.0:
            sims[sims < self.min_similarity] = 0.0
        sims = self._keep_top_k(sims)
        # 1 - prod(1 - sim) per label, via log-space grouped sums:
        # log(1-sim) is 0 where sim == 0, so non-neighbours drop out.
        log_miss = np.log1p(-sims)
        grouped = log_miss @ self._label_matrix
        raw = 1.0 - np.exp(grouped)
        totals = raw.sum(axis=1, keepdims=True)
        uniform = np.full_like(raw, 1.0 / raw.shape[1])
        with np.errstate(invalid="ignore", divide="ignore"):
            normalized = np.where(totals > 0.0, raw / totals, uniform)
        return normalized

    def _keep_top_k(self, sims: np.ndarray) -> np.ndarray:
        k = self.max_neighbors
        if k is None or sims.shape[1] <= k:
            return sims
        # Zero out everything below each row's k-th largest similarity.
        thresholds = np.partition(sims, -k, axis=1)[:, -k][:, None]
        return np.where(sims >= thresholds, sims, 0.0)
