"""WHIRL-style nearest-neighbour classification over TF-IDF space.

Cohen & Hirsh's WHIRL, which the paper's name matcher and content matcher
use, stores training documents and scores a query label by combining the
cosine similarities of the stored neighbours carrying that label:

    score(c | q) = 1 - prod_{d in top-K neighbours with label c} (1 - sim(q, d))

so several moderately similar neighbours of one label reinforce each
other, and a single exact-name neighbour dominates. Scores are then
normalised across labels.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import sparse

from ..core.labels import LabelSpace
from ..text import TfidfVectorSpace
from .batching import score_distinct


class WhirlIndex:
    """A fitted nearest-neighbour index over token-list documents."""

    def __init__(self, max_neighbors: int = 30,
                 min_similarity: float = 0.0,
                 deduplicate: bool = True) -> None:
        """
        Parameters
        ----------
        max_neighbors:
            Only the K most similar stored documents vote for a query;
            keeps hundreds of duplicate training examples from saturating
            every label's score at 1.
        min_similarity:
            Neighbours below this cosine similarity are ignored (the
            paper's ``delta`` distance threshold).
        deduplicate:
            Store each distinct ``(document, label)`` pair once. Training
            columns contain the same tag name hundreds of times; WHIRL's
            vote combination only needs the distinct evidence.
        """
        self.max_neighbors = max_neighbors
        self.min_similarity = min_similarity
        self.deduplicate = deduplicate
        self._space: TfidfVectorSpace | None = None
        self._label_matrix: np.ndarray | None = None
        self._labels: LabelSpace | None = None

    @property
    def is_fitted(self) -> bool:
        return self._space is not None

    def fit(self, documents: Sequence[list[str]], labels: Sequence[str],
            space: LabelSpace) -> None:
        """Index ``documents`` with their labels."""
        if len(documents) != len(labels):
            raise ValueError("documents and labels differ in length")
        if not documents:
            raise ValueError("cannot fit WHIRL on zero documents")
        if self.deduplicate:
            seen: set[tuple[tuple[str, ...], str]] = set()
            kept_docs: list[list[str]] = []
            kept_labels: list[str] = []
            for doc, label in zip(documents, labels):
                key = (tuple(doc), label)
                if key not in seen:
                    seen.add(key)
                    kept_docs.append(list(doc))
                    kept_labels.append(label)
            documents, labels = kept_docs, kept_labels

        self._labels = space
        self._space = TfidfVectorSpace(list(documents))
        # One-hot (n_docs, n_labels) matrix for vectorised vote grouping.
        label_matrix = np.zeros((len(documents), len(space)))
        for row, label in enumerate(labels):
            label_matrix[row, space.index_of(label)] = 1.0
        self._label_matrix = label_matrix

    def scores(self, queries: Sequence[list[str]]) -> np.ndarray:
        """Normalised ``(n_queries, n_labels)`` WHIRL scores.

        Duplicate-heavy columns ask the same question many times, so
        each *distinct* query document is scored once and the row is
        broadcast back. Every step of the computation is row-wise, which
        makes this numerically identical to scoring all rows. The dedup
        rides the featurize switch so ``featurize.cache_disabled()``
        reproduces the naive all-rows pipeline for baseline timing.
        """
        if self._space is None or self._label_matrix is None \
                or self._labels is None:
            raise RuntimeError("WhirlIndex is not fitted")
        if not queries:
            return np.zeros((0, len(self._labels)))
        keys = [tuple(query) for query in queries]
        return score_distinct(
            keys, lambda firsts: self._score_rows(
                [list(queries[i]) for i in firsts]))

    def _score_rows(self, queries: list[list[str]]) -> np.ndarray:
        # The similarity matrix is overwhelmingly zero (a short query
        # only touches a few stored documents), so every step operates
        # on the CSR nonzeros; zero entries contribute log(1-0) = 0 to
        # the grouped sums and need never be materialised.
        sims = self._space.sparse_similarities(queries)
        np.clip(sims.data, 0.0, 1.0 - 1e-9, out=sims.data)
        if self.min_similarity > 0.0:
            sims.data[sims.data < self.min_similarity] = 0.0
        self._keep_top_k(sims)
        # 1 - prod(1 - sim) per label, via log-space grouped sums.
        np.negative(sims.data, out=sims.data)
        np.log1p(sims.data, out=sims.data)
        grouped = np.asarray(sims @ self._label_matrix)
        raw = 1.0 - np.exp(grouped)
        totals = raw.sum(axis=1, keepdims=True)
        uniform = np.full_like(raw, 1.0 / raw.shape[1])
        with np.errstate(invalid="ignore", divide="ignore"):
            normalized = np.where(totals > 0.0, raw / totals, uniform)
        return normalized

    def _keep_top_k(self, sims):
        """Zero all but the k best similarities per row.

        A pure threshold test would keep *every* neighbour tied at the
        k-th similarity — on duplicate-heavy columns that inflates the
        vote of whichever label the duplicates carry. Ties at the k-th
        similarity are broken by stored-document order (lowest index
        wins, which ``sort_indices`` guarantees is the data order), the
        same selection a stable sort by (-similarity, index) would make.

        CSR input is modified in place (the scoring hot path); a dense
        array is processed through a CSR copy and returned dense.
        """
        if not sparse.issparse(sims):
            kept = sparse.csr_matrix(np.asarray(sims, dtype=float))
            kept.sort_indices()
            self._keep_top_k(kept)
            return kept.toarray()
        k = self.max_neighbors
        if k is None or sims.shape[1] <= k:
            return sims
        data, indptr = sims.data, sims.indptr
        counts = np.diff(indptr)
        rows_over = np.flatnonzero(counts > k)
        if rows_over.size == 0:
            return sims
        # Per-row k-th-largest thresholds via a few batched partitions:
        # rows are bucketed by power-of-two entry count and each bucket
        # is right-padded with -inf to a rectangle (the padding sorts
        # below every real value, so position ``width - k`` is exactly
        # the k-th largest). Bucketing bounds the padding overhead at
        # 2x; padding every row to the global maximum width costs far
        # more than the partitions themselves on skewed rows.
        seg_counts = counts[rows_over]
        ends = np.cumsum(seg_counts)
        local = np.arange(int(ends[-1])) - np.repeat(ends - seg_counts,
                                                     seg_counts)
        flat = np.repeat(indptr[rows_over], seg_counts) + local
        thresholds = np.empty(rows_over.size)
        buckets = np.ceil(np.log2(seg_counts)).astype(np.intp)
        row_starts = ends - seg_counts
        values = data[flat]
        for bucket in np.unique(buckets):
            members = np.flatnonzero(buckets == bucket)
            member_counts = seg_counts[members]
            width = int(member_counts.max())
            member_ends = np.cumsum(member_counts)
            member_local = np.arange(int(member_ends[-1])) - \
                np.repeat(member_ends - member_counts, member_counts)
            gather = np.repeat(row_starts[members],
                               member_counts) + member_local
            padded = np.full((members.size, width), -np.inf)
            # Boolean assignment fills row-major, matching storage order.
            padded[np.arange(width) < member_counts[:, None]] = \
                values[gather]
            thresholds[members] = np.partition(
                padded, width - k, axis=1)[:, width - k]
        # Rows whose threshold is not positive keep everything: fewer
        # than k positive entries, and zeroed entries contribute
        # ``log1p(-0) = 0`` either way.
        active = thresholds > 0.0
        if not active.any():
            return sims
        if not active.all():
            flat = flat[np.repeat(active, seg_counts)]
            seg_counts = seg_counts[active]
        seg = data[flat]
        row_ids = np.repeat(np.arange(seg_counts.size), seg_counts)
        per_entry = thresholds[active][row_ids]
        keep = seg > per_entry
        # Quota per row: k minus the strictly-greater entries; the
        # first ``quota`` ties in storage order survive (lowest stored
        # index wins, as the docstring promises).
        tie = seg == per_entry
        greater = np.bincount(row_ids, weights=keep,
                              minlength=seg_counts.size)
        tie_before = np.concatenate(
            ([0.0], np.cumsum(np.bincount(row_ids, weights=tie,
                                          minlength=seg_counts.size))
             [:-1]))
        tie_rank = np.cumsum(tie) - tie - tie_before[row_ids]
        keep |= tie & (tie_rank < (k - greater)[row_ids])
        data[flat[~keep]] = 0.0
        return sims
