"""LSD's base learners and the stacking meta-learner.

The default learner set mirrors the paper: name matcher, content matcher,
Naive Bayes, and the structural XML learner, with recognizers (county
names) added per domain. The format and numeric learners implement the
extensions §7 of the paper calls for.
"""

from .base import BaseLearner, LearnerRegistry, registry
from .content_matcher import ContentMatcher
from .edit_distance import EditDistanceNameMatcher
from .format_learner import FormatLearner, shape_tokens, value_shape
from .meta import StackingMetaLearner, cross_validate, cross_validate_many
from .metadata import MetadataLearner, metadata_document
from .name_matcher import NameMatcher
from .naive_bayes import NaiveBayesLearner, default_tokenizer
from .numeric import NumericLearner
from .recognizers import GazetteerRecognizer, RegexRecognizer
from .statistics import StatisticsLearner, statistics_vector
from .whirl import WhirlIndex
from .xml_learner import XMLLearner, structure_tokens

__all__ = [
    "BaseLearner", "ContentMatcher", "EditDistanceNameMatcher",
    "FormatLearner",
    "GazetteerRecognizer", "LearnerRegistry", "MetadataLearner",
    "NameMatcher", "NaiveBayesLearner", "NumericLearner",
    "RegexRecognizer", "StackingMetaLearner", "StatisticsLearner",
    "WhirlIndex", "XMLLearner", "cross_validate", "cross_validate_many",
    "default_tokenizer",
    "metadata_document", "registry", "shape_tokens", "statistics_vector",
    "structure_tokens", "value_shape",
]

registry.register("name_matcher", NameMatcher)
registry.register("content_matcher", ContentMatcher)
registry.register("naive_bayes", NaiveBayesLearner)
registry.register("xml_learner", XMLLearner)
registry.register("format", FormatLearner)
registry.register("numeric", NumericLearner)
registry.register("edit_distance", EditDistanceNameMatcher)
registry.register("statistics", StatisticsLearner)
registry.register("metadata", MetadataLearner)


def default_learners() -> list[BaseLearner]:
    """The paper's core learner set (recognizers are added per domain)."""
    return [NameMatcher(), ContentMatcher(), NaiveBayesLearner(),
            XMLLearner()]
