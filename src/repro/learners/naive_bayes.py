"""Multinomial Naive Bayes over stemmed content tokens (§3.3).

The learner treats an instance as a bag of tokens and assigns the class
maximising ``P(c) * prod_j P(w_j | c)`` with Laplace-smoothed token
probabilities. It shines when some tokens are strongly indicative of a
label ("beautiful", "great" for DESCRIPTION) or when many weakly
suggestive tokens accumulate; it is weak on short numeric fields.

The implementation is vectorised: training builds an
``(n_labels, vocabulary)`` log-probability matrix; prediction is one
sparse matrix product followed by a row-softmax.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
from scipy import sparse

from ..core import featurize
from ..core.instance import ElementInstance
from ..core.labels import LabelSpace
from .base import BaseLearner
from .batching import score_distinct


def default_tokenizer(instance: ElementInstance) -> list[str]:
    """Parse + stem the words and symbols of the instance content.

    Reads through the shared per-instance cache
    (:func:`repro.core.featurize.content_tokens`), so the work happens
    once no matter how many learners consume the same instance. Plugin
    learners that pass their own ``tokenizer`` bypass the cache
    entirely. The returned list is shared — do not mutate it.
    """
    return featurize.content_tokens(instance)


class NaiveBayesLearner(BaseLearner):
    """Multinomial NB with Laplace smoothing over instance token bags."""

    name = "naive_bayes"

    def __init__(self, alpha: float = 1.0,
                 tokenizer: Callable[[ElementInstance], list[str]]
                 = default_tokenizer) -> None:
        super().__init__()
        self.alpha = alpha
        self.tokenizer = tokenizer
        self.vocabulary: dict[str, int] = {}
        self._log_prior: np.ndarray | None = None
        self._log_likelihood: np.ndarray | None = None

    def clone(self) -> "NaiveBayesLearner":
        return type(self)(self.alpha, self.tokenizer)

    # ------------------------------------------------------------------
    def fit(self, instances: Sequence[ElementInstance],
            labels: Sequence[str], space: LabelSpace) -> None:
        if len(instances) != len(labels):
            raise ValueError("instances and labels differ in length")
        self.space = space
        documents = [self.tokenizer(instance) for instance in instances]
        self.vocabulary = {}
        for doc in documents:
            for token in doc:
                if token not in self.vocabulary:
                    self.vocabulary[token] = len(self.vocabulary)

        n_labels = len(space)
        vocab_size = max(len(self.vocabulary), 1)
        token_counts = np.zeros((n_labels, vocab_size))
        class_counts = np.zeros(n_labels)
        for doc, label in zip(documents, labels):
            row = space.index_of(label)
            class_counts[row] += 1
            for token in doc:
                token_counts[row, self.vocabulary[token]] += 1

        # P(c): Laplace-smoothed so labels absent from training keep a
        # tiny prior instead of a hard zero.
        smoothed = class_counts + self.alpha
        self._log_prior = np.log(smoothed / smoothed.sum())
        # P(w|c) = (n(w,c) + alpha) / (n(c) + alpha * |V|)
        totals = token_counts.sum(axis=1, keepdims=True)
        self._log_likelihood = np.log(
            (token_counts + self.alpha) / (totals + self.alpha * vocab_size))

    def predict_scores(self,
                       instances: Sequence[ElementInstance]) -> np.ndarray:
        space = self._require_fitted()
        if self._log_prior is None or self._log_likelihood is None:
            raise RuntimeError("learner is not fitted")
        if not instances:
            return np.zeros((0, len(space)))
        documents = [self.tokenizer(instance) for instance in instances]
        # Score each distinct token bag once and broadcast: NB scores are
        # row-wise, so this is numerically identical to scoring all rows,
        # and duplicate-heavy columns collapse to a few distinct bags.
        # ``score_distinct`` rides the featurize switch so the benchmark
        # baseline can measure the naive path. The default tokenizer is
        # a pure function of the instance text, so the (cheaper-to-hash)
        # text string is an exact stand-in for the token tuple; custom
        # tokenizers may consume more than the text and group by the
        # tokens themselves.
        if self.tokenizer is default_tokenizer:
            keys: list = [featurize.instance_text(i) for i in instances]
        else:
            keys = [tuple(doc) for doc in documents]
        return score_distinct(
            keys, lambda firsts: self._score_documents(
                [documents[i] for i in firsts]))

    def _score_documents(self, documents: list[list[str]]) -> np.ndarray:
        matrix = self._document_matrix(documents)
        log_scores = matrix @ self._log_likelihood.T + self._log_prior
        return _row_softmax(log_scores)

    # ------------------------------------------------------------------
    def _document_matrix(self,
                         documents: list[list[str]]) -> sparse.csr_matrix:
        # One flat Python pass maps tokens to vocabulary columns (-1 for
        # out-of-vocabulary); everything after — the row expansion, the
        # OOV filter, and the duplicate-count/column-sort canonicalisation
        # in ``tocsr`` — runs in C. Counts are small integers, so the
        # duplicate summation is exact regardless of order.
        get = self.vocabulary.get
        cols = np.fromiter(
            (get(token, -1) for doc in documents for token in doc),
            dtype=np.intp)
        lengths = np.fromiter((len(doc) for doc in documents),
                              dtype=np.intp, count=len(documents))
        rows = np.repeat(np.arange(len(documents), dtype=np.intp),
                         lengths)
        known = cols >= 0
        matrix = sparse.coo_matrix(
            (np.ones(int(known.sum())), (rows[known], cols[known])),
            shape=(len(documents), max(len(self.vocabulary), 1)))
        return matrix.tocsr()


def _row_softmax(log_scores: np.ndarray) -> np.ndarray:
    """Numerically stable softmax per row."""
    log_scores = np.asarray(log_scores)
    shifted = log_scores - log_scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
