"""The content matcher: WHIRL nearest-neighbour over data content.

"The Content Matcher also uses Whirl. However, this learner matches an XML
element using its data content, instead of its tag name" (§3.3). It is
strong on long textual elements (house descriptions) and elements with
distinctive value vocabularies (colours), weak on short numeric fields.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core import featurize
from ..core.instance import ElementInstance
from ..core.labels import LabelSpace
from .base import BaseLearner
from .batching import score_distinct
from .whirl import WhirlIndex


class ContentMatcher(BaseLearner):
    """WHIRL classifier over stemmed content tokens."""

    name = "content_matcher"

    #: Nearest-neighbour scoring is per-distinct-row work (the WHIRL
    #: query dedups by token bag shard-locally, and the fan-out clusters
    #: duplicates into one shard), so splitting a batch costs nothing —
    #: declare a fine grain and let parallel maps spread the ensemble's
    #: most expensive learner across workers.
    shard_rows = 256

    def __init__(self, max_neighbors: int = 30,
                 max_examples_per_label: int = 400) -> None:
        super().__init__()
        self.max_neighbors = max_neighbors
        #: Cap on stored examples per label: nearest-neighbour cost scales
        #: with the index size and a few hundred examples per label carry
        #: all the signal the vote combination can use.
        self.max_examples_per_label = max_examples_per_label
        self._index = WhirlIndex(max_neighbors=max_neighbors)

    def clone(self) -> "ContentMatcher":
        return ContentMatcher(self.max_neighbors,
                              self.max_examples_per_label)

    # ------------------------------------------------------------------
    @staticmethod
    def _document(instance: ElementInstance) -> list[str]:
        # Shared with the Naive Bayes tokenizer via the featurize cache:
        # both learners read the same token bag, computed once.
        return featurize.content_tokens(instance)

    def fit(self, instances: Sequence[ElementInstance],
            labels: Sequence[str], space: LabelSpace) -> None:
        self.space = space
        per_label: dict[str, int] = {}
        documents: list[list[str]] = []
        kept_labels: list[str] = []
        for instance, label in zip(instances, labels):
            count = per_label.get(label, 0)
            if count >= self.max_examples_per_label:
                continue
            per_label[label] = count + 1
            documents.append(self._document(instance))
            kept_labels.append(label)
        self._index.fit(documents, kept_labels, space)

    def predict_scores(self,
                       instances: Sequence[ElementInstance]) -> np.ndarray:
        space = self._require_fitted()
        if not instances:
            return np.zeros((0, len(space)))
        # The content document is a pure function of the instance text:
        # tokenize and score once per distinct text, broadcast the rows.
        texts = [featurize.instance_text(i) for i in instances]
        return score_distinct(
            texts, lambda firsts: self._index.scores(
                [self._document(instances[i]) for i in firsts]))
