"""repro — a from-scratch reproduction of LSD (SIGMOD 2001).

LSD (Learning Source Descriptions) semi-automatically finds 1-1 semantic
mappings between the schema of a new data source and a mediated schema by
training a set of base learners on user-mapped sources and combining their
predictions with a stacking meta-learner, domain constraints, and user
feedback.

Quickstart::

    from repro import LSDSystem
    from repro.datasets import load_domain

    domain = load_domain("real_estate_1", seed=0)
    lsd = LSDSystem.with_default_learners(domain.mediated_schema,
                                          constraints=domain.constraints)
    for source in domain.sources[:3]:
        lsd.add_training_source(source.schema, source.listings(100),
                                source.mapping)
    lsd.train()
    result = lsd.match(domain.sources[3].schema,
                       domain.sources[3].listings(100))
    print(result.mapping)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "1.0.0"

__all__ = [
    "LSDSystem", "Mapping", "MatchResult", "MediatedSchema", "Prediction",
    "SourceSchema", "__version__",
]

_CORE_NAMES = {"LSDSystem", "Mapping", "MatchResult", "MediatedSchema",
               "Prediction", "SourceSchema"}


def __getattr__(name: str):
    """Lazily re-export the core API so ``import repro.xmlio`` stays light."""
    if name in _CORE_NAMES:
        from . import core
        return getattr(core, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
