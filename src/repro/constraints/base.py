"""Constraint abstractions for the constraint handler (§4, Table 1).

Domain constraints "impose semantic regularities on the schemas and data of
the sources in the domain". They are written once against *labels*
(mediated-schema tags) and generic source elements, then evaluated against
any candidate mapping of a concrete source.

Two families:

* **Hard constraints** must hold; a candidate mapping violating one has
  infinite cost. During search partial assignments are pruned as soon
  as a violation is *definite* (``check_partial``).
* **Soft constraints** contribute a finite violation cost, evaluated on
  complete assignments.

Incremental protocol
--------------------

The branch-and-bound search assigns and unassigns one (tag, label) pair
per step, so re-running ``check_partial`` — which scans the whole
partial assignment — at every node makes node cost grow with depth.
Each constraint therefore supplies a per-search *evaluator*
(:meth:`Constraint.evaluator`): a small mutable object holding whatever
per-label counters or watched-tag state the constraint needs to answer
"does this one new assignment definitely violate?" in O(delta) time.

Evaluators obey a strict stack discipline driven by the search:

* ``push(tag, label, assignment, ctx)`` is called *after* the pair is
  placed into ``assignment``; it updates internal state and reports the
  violation status of the new partial assignment;
* ``pop(tag, label, assignment, ctx)`` is called with the pair still in
  ``assignment`` (the search removes it afterwards) and must restore the
  exact state prior to the matching ``push`` — push/pop symmetry is
  pinned by tests for every constraint type;
* a push that reports a violation is popped immediately, so evaluator
  state never describes a violated assignment between search steps.

The default evaluators fall back to the full-scan ``check_partial`` /
``cost`` methods, so third-party constraints keep working unchanged —
they just don't get the O(delta) speedup until they override
:meth:`Constraint.evaluator`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..core.instance import InstanceColumn
from ..core.schema import SourceSchema


@dataclass
class MatchContext:
    """What a constraint may look at: the target source's schema and the
    data extracted from it (Table 1's "Can Be Verified With" column)."""

    schema: SourceSchema
    columns: dict[str, InstanceColumn] = field(default_factory=dict)

    def column(self, tag: str) -> InstanceColumn | None:
        """The extracted instance column for ``tag`` (None if no data)."""
        return self.columns.get(tag)


class Constraint(ABC):
    """Base class for all domain constraints."""

    #: Short type tag used in reports ("frequency", "nesting", ...).
    kind: str = "constraint"

    @abstractmethod
    def describe(self) -> str:
        """Human-readable statement of the constraint."""

    def relevant_labels(self) -> set[str] | None:
        """Labels whose assignment can change this constraint's status.

        The search uses this to skip re-checking constraints untouched by
        a new assignment. ``None`` (the default) means "recheck on every
        assignment" — always safe, required for constraints (like
        contiguity's between-tags clause) that any label can trip.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}: {self.describe()}>"


class HardConstraint(Constraint):
    """A constraint whose violation disqualifies a candidate mapping."""

    @abstractmethod
    def check_partial(self, assignment: dict[str, str],
                      ctx: MatchContext) -> bool:
        """True iff the partial assignment *definitely* violates this
        constraint (no extension can repair it)."""

    @abstractmethod
    def check_complete(self, assignment: dict[str, str],
                       ctx: MatchContext) -> bool:
        """True iff the complete assignment violates this constraint."""

    def is_satisfied(self, assignment: dict[str, str],
                     ctx: MatchContext) -> bool:
        """Convenience: True when a complete assignment satisfies this."""
        return not self.check_complete(assignment, ctx)

    def evaluator(self, ctx: MatchContext) -> "HardEvaluator":
        """A fresh per-search incremental evaluator (see module docs).

        The default re-runs :meth:`check_partial` on every push — always
        correct, O(assignment) per step. Built-in constraints override
        this with O(delta) counter/watched-tag evaluators.
        """
        return HardEvaluator(self)


class SoftConstraint(Constraint):
    """A constraint with a finite, possibly graded, violation cost.

    Costs must be non-negative; the search relies on that to treat the
    incremental lower bound 0 as admissible.
    """

    @abstractmethod
    def cost(self, assignment: dict[str, str], ctx: MatchContext) -> float:
        """Violation cost of a complete assignment (0 when satisfied)."""

    def evaluator(self, ctx: MatchContext) -> "SoftEvaluator":
        """A fresh per-search incremental evaluator (see module docs).

        The default keeps a constant lower bound of 0 (admissible for
        any non-negative cost) and evaluates :meth:`cost` only on
        complete assignments — exactly the pre-incremental behaviour.
        """
        return SoftEvaluator(self)


class HardEvaluator:
    """Per-search incremental checker for one hard constraint.

    The base implementation is the full-scan fallback; subclasses keep
    counters/watched state so ``push`` costs O(delta). See the module
    docstring for the push/pop contract.
    """

    __slots__ = ("constraint",)

    def __init__(self, constraint: HardConstraint) -> None:
        self.constraint = constraint

    def push(self, tag: str, label: str, assignment: dict[str, str],
             ctx: MatchContext) -> bool:
        """Record ``tag -> label`` (already in ``assignment``); True iff
        the partial assignment now definitely violates the constraint."""
        return self.constraint.check_partial(assignment, ctx)

    def pop(self, tag: str, label: str, assignment: dict[str, str],
            ctx: MatchContext) -> None:
        """Undo the matching :meth:`push` (pair still in ``assignment``)."""

    def complete_violation(self, assignment: dict[str, str],
                           ctx: MatchContext) -> bool:
        """True iff the complete assignment violates the constraint.

        Called at search leaves whose every prefix passed ``push``;
        evaluators whose partial check is already complete-exact can
        answer in O(1) from their state.
        """
        return self.constraint.check_complete(assignment, ctx)


class SoftEvaluator:
    """Per-search incremental cost tracker for one soft constraint.

    ``bound`` is an *admissible lower bound* on the constraint's final
    cost for any completion of the current partial assignment: the
    search adds it to the branch-and-bound heuristic, so overestimating
    would prune optimal subtrees. The base implementation keeps
    ``bound == 0`` (always admissible) and defers to
    :meth:`SoftConstraint.cost` at leaves.
    """

    __slots__ = ("constraint", "bound")

    def __init__(self, constraint: SoftConstraint) -> None:
        self.constraint = constraint
        self.bound = 0.0

    def push(self, tag: str, label: str, assignment: dict[str, str],
             ctx: MatchContext) -> None:
        """Record ``tag -> label``; may raise :attr:`bound`."""

    def pop(self, tag: str, label: str, assignment: dict[str, str],
            ctx: MatchContext) -> None:
        """Undo the matching :meth:`push` (pair still in ``assignment``)."""

    def complete_cost(self, assignment: dict[str, str],
                      ctx: MatchContext) -> float:
        """Exact (unweighted) cost of the complete assignment."""
        return self.constraint.cost(assignment, ctx)


def split_constraints(constraints) -> tuple[list[HardConstraint],
                                            list[SoftConstraint]]:
    """Partition a mixed constraint list into (hard, soft)."""
    hard: list[HardConstraint] = []
    soft: list[SoftConstraint] = []
    for constraint in constraints:
        if isinstance(constraint, HardConstraint):
            hard.append(constraint)
        elif isinstance(constraint, SoftConstraint):
            soft.append(constraint)
        else:
            raise TypeError(f"not a constraint: {constraint!r}")
    return hard, soft


def tags_with_label(assignment: dict[str, str], label: str) -> list[str]:
    """Source tags the assignment maps to ``label``."""
    return [tag for tag, assigned in assignment.items()
            if assigned == label]
