"""Constraint abstractions for the constraint handler (§4, Table 1).

Domain constraints "impose semantic regularities on the schemas and data of
the sources in the domain". They are written once against *labels*
(mediated-schema tags) and generic source elements, then evaluated against
any candidate mapping of a concrete source.

Two families:

* **Hard constraints** must hold; a candidate mapping violating one has
  infinite cost. During A* search partial assignments are pruned as soon
  as a violation is *definite* (``check_partial``).
* **Soft constraints** contribute a finite violation cost, evaluated on
  complete assignments.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..core.instance import InstanceColumn
from ..core.schema import SourceSchema


@dataclass
class MatchContext:
    """What a constraint may look at: the target source's schema and the
    data extracted from it (Table 1's "Can Be Verified With" column)."""

    schema: SourceSchema
    columns: dict[str, InstanceColumn] = field(default_factory=dict)

    def column(self, tag: str) -> InstanceColumn | None:
        """The extracted instance column for ``tag`` (None if no data)."""
        return self.columns.get(tag)


class Constraint(ABC):
    """Base class for all domain constraints."""

    #: Short type tag used in reports ("frequency", "nesting", ...).
    kind: str = "constraint"

    @abstractmethod
    def describe(self) -> str:
        """Human-readable statement of the constraint."""

    def relevant_labels(self) -> set[str] | None:
        """Labels whose assignment can change this constraint's status.

        The search uses this to skip re-checking constraints untouched by
        a new assignment. ``None`` (the default) means "recheck on every
        assignment" — always safe, required for constraints (like
        contiguity's between-tags clause) that any label can trip.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}: {self.describe()}>"


class HardConstraint(Constraint):
    """A constraint whose violation disqualifies a candidate mapping."""

    @abstractmethod
    def check_partial(self, assignment: dict[str, str],
                      ctx: MatchContext) -> bool:
        """True iff the partial assignment *definitely* violates this
        constraint (no extension can repair it)."""

    @abstractmethod
    def check_complete(self, assignment: dict[str, str],
                       ctx: MatchContext) -> bool:
        """True iff the complete assignment violates this constraint."""

    def is_satisfied(self, assignment: dict[str, str],
                     ctx: MatchContext) -> bool:
        """Convenience: True when a complete assignment satisfies this."""
        return not self.check_complete(assignment, ctx)


class SoftConstraint(Constraint):
    """A constraint with a finite, possibly graded, violation cost."""

    @abstractmethod
    def cost(self, assignment: dict[str, str], ctx: MatchContext) -> float:
        """Violation cost of a complete assignment (0 when satisfied)."""


def split_constraints(constraints) -> tuple[list[HardConstraint],
                                            list[SoftConstraint]]:
    """Partition a mixed constraint list into (hard, soft)."""
    hard: list[HardConstraint] = []
    soft: list[SoftConstraint] = []
    for constraint in constraints:
        if isinstance(constraint, HardConstraint):
            hard.append(constraint)
        elif isinstance(constraint, SoftConstraint):
            soft.append(constraint)
        else:
            raise TypeError(f"not a constraint: {constraint!r}")
    return hard, soft


def tags_with_label(assignment: dict[str, str], label: str) -> list[str]:
    """Source tags the assignment maps to ``label``."""
    return [tag for tag, assigned in assignment.items()
            if assigned == label]
