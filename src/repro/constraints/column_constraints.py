"""Hard constraints verified with schema *and data*: keys and functional
dependencies (Table 1's "column" constraints).

As the paper notes, data constraints can only be *refuted* by the
extracted sample, never proven — "in many cases, however, the few data
instances we extract from the source will be enough to find a violation".
A tag whose extracted column contains duplicate values cannot be a key;
a tag pair whose aligned values contradict a functional dependency cannot
be its determinant/dependent.
"""

from __future__ import annotations

from ..core.instance import InstanceColumn
from .base import HardConstraint, HardEvaluator, MatchContext, \
    tags_with_label


class KeyConstraint(HardConstraint):
    """A tag matching ``label`` must be a key for the listing.

    Table 1: "If a matches HOUSE-ID, then a is a key." The paper's worked
    example: num-bedrooms cannot match HOUSE-ID because its values contain
    duplicates.
    """

    kind = "column"

    def __init__(self, label: str) -> None:
        self.label = label

    def describe(self) -> str:
        return f"an element matching {self.label} must be a key"

    def relevant_labels(self) -> set[str]:
        return {self.label}

    def _violated(self, assignment: dict[str, str],
                  ctx: MatchContext) -> bool:
        for tag in tags_with_label(assignment, self.label):
            column = ctx.column(tag)
            if column is not None and len(column) > 1 \
                    and column.has_duplicates():
                return True
        return False

    # Duplicates in an already-assigned column are definite.
    check_partial = _violated
    check_complete = _violated

    def evaluator(self, ctx: MatchContext) -> "_KeyEvaluator":
        return _KeyEvaluator(self)


class _KeyEvaluator(HardEvaluator):
    """O(1) key checks: whether a tag's column has duplicates is a fixed
    property of the extracted data, memoised on first use."""

    __slots__ = ("_non_key",)

    def __init__(self, constraint: KeyConstraint) -> None:
        super().__init__(constraint)
        self._non_key: dict[str, bool] = {}

    def _cannot_be_key(self, tag: str, ctx: MatchContext) -> bool:
        cached = self._non_key.get(tag)
        if cached is None:
            column = ctx.column(tag)
            cached = column is not None and len(column) > 1 \
                and column.has_duplicates()
            self._non_key[tag] = cached
        return cached

    def push(self, tag, label, assignment, ctx) -> bool:
        return label == self.constraint.label \
            and self._cannot_be_key(tag, ctx)

    def complete_violation(self, assignment, ctx) -> bool:
        # Definite on partials: every pushed (tag, label) was checked.
        return False


class FunctionalDependencyConstraint(HardConstraint):
    """Values of determinant labels must functionally determine the
    dependent label's value within each source.

    Table 1: "If a, b, and c match CITY, FIRM-NAME, and FIRM-ADDRESS,
    resp., then a & b functionally determine c."
    """

    kind = "column"

    def __init__(self, determinants: list[str], dependent: str) -> None:
        if not determinants:
            raise ValueError("need at least one determinant label")
        self.determinants = list(determinants)
        self.dependent = dependent

    def describe(self) -> str:
        lhs = " & ".join(self.determinants)
        return f"{lhs} functionally determine {self.dependent}"

    def relevant_labels(self) -> set[str]:
        return {*self.determinants, self.dependent}

    def _violated(self, assignment: dict[str, str],
                  ctx: MatchContext) -> bool:
        determinant_tags: list[str] = []
        for label in self.determinants:
            tags = tags_with_label(assignment, label)
            if not tags:
                return False  # determinant not (yet) assigned: no check
            determinant_tags.append(tags[0])
        for dependent_tag in tags_with_label(assignment, self.dependent):
            if self._refuted(determinant_tags, dependent_tag, ctx):
                return True
        return False

    check_partial = _violated
    check_complete = _violated

    def evaluator(self, ctx: MatchContext) -> "_FDEvaluator":
        return _FDEvaluator(self)

    def _refuted(self, determinant_tags: list[str], dependent_tag: str,
                 ctx: MatchContext) -> bool:
        columns = [ctx.column(tag) for tag in determinant_tags]
        dependent_column = ctx.column(dependent_tag)
        if dependent_column is None or any(c is None for c in columns):
            return False
        rows = _align_by_listing([*columns, dependent_column])
        seen: dict[tuple[str, ...], str] = {}
        for *lhs, rhs in rows:
            key = tuple(lhs)
            if key in seen and seen[key] != rhs:
                return True
            seen[key] = rhs
        return False


class _FDEvaluator(HardEvaluator):
    """Incremental FD checks.

    Mirrors the full scan exactly: only the *first-assigned* tag per
    determinant label is used, so under the search's LIFO push/pop the
    determinant vector is stable and a refutation needs recomputing only
    when a determinant label gains its first tag (check every dependent)
    or a new dependent tag arrives (check it alone). Data refutations
    are memoised — the extracted columns never change mid-search.
    """

    __slots__ = ("_det", "_deps", "_memo")

    def __init__(self, constraint: FunctionalDependencyConstraint) -> None:
        super().__init__(constraint)
        self._det: dict[str, list[str]] = {
            label: [] for label in constraint.determinants}
        self._deps: list[str] = []
        self._memo: dict[tuple[tuple[str, ...], str], bool] = {}

    def _refuted(self, firsts: tuple[str, ...], dependent_tag: str,
                 ctx: MatchContext) -> bool:
        key = (firsts, dependent_tag)
        cached = self._memo.get(key)
        if cached is None:
            cached = self.constraint._refuted(list(firsts), dependent_tag,
                                              ctx)
            self._memo[key] = cached
        return cached

    def push(self, tag, label, assignment, ctx) -> bool:
        c = self.constraint
        became_first = False
        det_list = self._det.get(label)
        if det_list is not None:
            det_list.append(tag)
            became_first = len(det_list) == 1
        if label == c.dependent:
            self._deps.append(tag)
        if any(not self._det[d] for d in c.determinants):
            return False  # some determinant unassigned: no check yet
        firsts = tuple(self._det[d][0] for d in c.determinants)
        if became_first:
            # The determinant vector just became complete (or changed):
            # every known dependent tag must be re-examined.
            return any(self._refuted(firsts, dep, ctx)
                       for dep in self._deps)
        if label == c.dependent:
            return self._refuted(firsts, tag, ctx)
        return False

    def pop(self, tag, label, assignment, ctx) -> None:
        c = self.constraint
        if label == c.dependent:
            self._deps.pop()
        det_list = self._det.get(label)
        if det_list is not None:
            det_list.pop()

    def complete_violation(self, assignment, ctx) -> bool:
        # Refutations are definite on partials and every (determinant
        # vector, dependent) combination was checked when it formed.
        return False


def _align_by_listing(columns: list[InstanceColumn]
                      ) -> list[tuple[str, ...]]:
    """Join columns on listing index, keeping listings where every column
    has exactly one instance (ambiguous listings are skipped)."""
    per_column: list[dict[int, str | None]] = []
    for column in columns:
        values: dict[int, str | None] = {}
        for instance in column.instances:
            if instance.listing_index in values:
                values[instance.listing_index] = None  # ambiguous
            else:
                values[instance.listing_index] = instance.text
        per_column.append(values)
    shared = set(per_column[0])
    for values in per_column[1:]:
        shared &= set(values)
    rows: list[tuple[str, ...]] = []
    for listing in sorted(shared):
        row = tuple(values[listing] for values in per_column)
        if all(value is not None for value in row):
            rows.append(row)  # type: ignore[arg-type]
    return rows
