"""The constraint handler: search for the least-cost mapping (§4.2).

Given per-tag label score distributions (from the prediction converter)
and the domain constraints, the handler searches the space of complete
label assignments for the candidate mapping ``m`` minimising

    cost(m) = sum_i alpha_i * cost(m, T_i)  -  a * log prob(m)

where ``prob(m)`` is the product of the per-tag confidence scores
(independence approximation, as in the paper) and ``cost(m, T_i)`` the
violation costs per constraint type. Hard constraint violations make the
cost infinite and prune the search; soft costs are tracked incrementally
during the descent and settled exactly at complete assignments.

Search details (mirroring §6.3): tags are assigned in decreasing order of
their structure score (number of distinct tags nestable within them), the
admissible heuristic is the sum of each unassigned tag's best achievable
score cost plus the soft constraints' incremental lower bounds, and
branching is limited to each tag's top-k candidate labels plus OTHER plus
any label a constraint could *require*.

Engine (the incremental rebuild):

* **O(delta) node cost** — each constraint supplies a push/pop evaluator
  (:mod:`repro.constraints.base`) holding per-label counters or watched
  tags, so assigning one tag never re-scans the partial assignment;
* **soft-cost-aware pruning** — soft evaluators maintain admissible
  lower bounds that fold into the branch-and-bound heuristic, so
  subtrees whose soft violations alone exceed the incumbent are cut
  mid-descent instead of surviving to the leaves;
* **parallel root-split** — the first-level candidate labels are
  partitioned round-robin across :class:`~repro.core.parallel.
  ParallelExecutor` workers sharing one incumbent bound. The incumbent
  orders complete assignments by ``(cost, path)`` where ``path`` is the
  per-level candidate-index tuple, and pruning spares equal-cost
  subtrees that could still win that tie-break, so the returned mapping
  is the *lexicographically first minimum-cost* assignment — byte-
  identical for any worker count (provided the expansion budget is not
  exhausted; with threads racing a shared budget the anytime cut-off
  point is scheduling-dependent);
* **instrumentation** — nodes expanded and prunes by reason (score
  bound / hard violation / soft bound) accumulate into
  ``handler.last_stats`` and, when a profile is passed, into
  ``constraint_*`` counters shown by ``--profile``.

Two strategies are selectable via ``ConstraintHandler(search=...)``:
``"bnb"`` (default) is the depth-first branch-and-bound above, seeded
with a constrained-greedy upper bound so the search is anytime;
``"astar"`` drives :func:`repro.constraints.search.astar` over the same
space with the same admissible heuristic — memory-hungrier (the paper
reports handler runtimes "up to 20 minutes" for its A* formulation) but
kept as a selectable baseline; the benchmark compares both.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.labels import OTHER, LabelSpace
from ..core.mapping import Mapping
from ..core.parallel import ParallelExecutor, resolve, split_round_robin
from ..observability import Observer, StageProfile, resolve_observer
from ..observability.metrics import (M_CONSTRAINT_LEAF_REJECTS,
                                     M_CONSTRAINT_NODES,
                                     M_CONSTRAINT_PRUNE_BOUND,
                                     M_CONSTRAINT_PRUNE_HARD,
                                     M_CONSTRAINT_PRUNE_SOFT)
from .base import (Constraint, HardConstraint, HardEvaluator, MatchContext,
                   SoftConstraint, SoftEvaluator, split_constraints)
from .feedback import AssignmentConstraint, ExclusionConstraint
from .schema_constraints import FrequencyConstraint
from .search import astar

#: Default trade-off coefficients per soft-constraint kind (the paper's
#: alpha_i scaling coefficients).
DEFAULT_SOFT_WEIGHTS = {"binary": 1.0, "numeric": 0.5}

#: Selectable search strategies.
SEARCH_STRATEGIES = ("bnb", "astar")

_STAT_NAMES = ("nodes_expanded", "prune_bound", "prune_hard",
               "prune_soft_bound", "leaf_hard_rejects")

#: last_stats key -> metric name in the observability catalogue.
_STAT_METRICS = {
    "nodes_expanded": M_CONSTRAINT_NODES,
    "prune_bound": M_CONSTRAINT_PRUNE_BOUND,
    "prune_hard": M_CONSTRAINT_PRUNE_HARD,
    "prune_soft_bound": M_CONSTRAINT_PRUNE_SOFT,
    "leaf_hard_rejects": M_CONSTRAINT_LEAF_REJECTS,
}


def _zero_stats() -> dict:
    return {name: 0 for name in _STAT_NAMES}


@dataclass
class _Problem:
    """Read-only search description, shared by every worker."""

    tags: list[str]
    cands: dict[str, list[str]]          # cheapest-first per tag
    log_cost: dict[str, dict[str, float]]
    suffix_best: list[float]
    hard: list[HardConstraint]
    soft: list[SoftConstraint]
    soft_weights: list[float]            # aligned with ``soft``
    ctx: MatchContext


class _Incumbent:
    """The best complete assignment so far, shared across workers.

    Assignments are ordered by ``(cost, path)``: equal-cost solutions
    are tie-broken by the candidate-index path, which makes the final
    winner independent of exploration order — the determinism contract.
    ``best`` is swapped as one tuple so readers get a consistent
    snapshot without taking the lock.
    """

    __slots__ = ("best", "_lock")

    def __init__(self) -> None:
        self.best: tuple[float, tuple[int, ...], dict[str, str] | None] = \
            (math.inf, (), None)
        self._lock = threading.Lock()

    def offer(self, cost: float, path: tuple[int, ...],
              assignment: dict[str, str]) -> None:
        with self._lock:
            held_cost, held_path, _ = self.best
            if (cost, path) < (held_cost, held_path):
                self.best = (cost, path, dict(assignment))


class _Budget:
    """Shared expansion budget, optionally deadline-capped.

    Increments race benignly across worker threads (a lock per node
    would cost more than the occasional lost count); at one worker the
    count is exact. The deadline is polled amortized — every 256
    expansions — so the hot path normally pays two attribute reads.
    ``stopped`` latches once any expansion is refused, which is
    exactly the "search was cut short, result is best-so-far" signal
    the anytime flag reports.

    An *inert* deadline is kept rather than dropped: the runtime
    watchdog and memory-pressure guardrails may ``trip()`` it from
    another thread mid-search, and that must be visible at the poll.
    ``snapshot``, when set, fires every :data:`_SNAPSHOT_MASK` + 1
    expansions — the checkpointer's incumbent-persistence hook.
    """

    __slots__ = ("limit", "spent", "deadline", "stopped", "snapshot")

    def __init__(self, limit: int, deadline=None) -> None:
        self.limit = limit
        self.spent = 0
        self.deadline = deadline
        self.stopped = False
        self.snapshot = None

    def exhausted(self) -> bool:
        if self.stopped:
            return True
        if self.spent >= self.limit:
            self.stopped = True
            return True
        if self.deadline is not None and not (self.spent & 0xFF) \
                and self.deadline.expired():
            self.stopped = True
            return True
        return False


#: ``spent & _SNAPSHOT_MASK == 0`` gates incumbent snapshots — every
#: 4096 expansions, matching ``runtime.checkpoint.SNAPSHOT_EVERY``.
_SNAPSHOT_MASK = 0xFFF


class _DfsEngine:
    """One worker's incremental depth-first branch-and-bound.

    Owns private evaluator instances (constraints themselves stay
    immutable and shared), a mutable assignment dict, and the candidate
    index path. Hard evaluators are indexed by ``relevant_labels`` so a
    push touches only the constraints the new label can trip.
    """

    def __init__(self, problem: _Problem, incumbent: _Incumbent,
                 budget: _Budget) -> None:
        self.p = problem
        self.ctx = problem.ctx
        self.incumbent = incumbent
        self.budget = budget
        self.assignment: dict[str, str] = {}
        self.path: list[int] = []
        self.stats = _zero_stats()
        self._nodes = 0
        self._prunes_bound = 0
        self._prunes_hard = 0
        self._prunes_soft = 0
        self._leaf_rejects = 0

        by_label: dict[str, list[HardEvaluator]] = {}
        always: list[HardEvaluator] = []
        self.hard_evaluators: list[HardEvaluator] = []
        for constraint in problem.hard:
            ev = constraint.evaluator(problem.ctx)
            self.hard_evaluators.append(ev)
            labels = constraint.relevant_labels()
            if labels is None:
                always.append(ev)
            else:
                for label in labels:
                    by_label.setdefault(label, []).append(ev)
        self._by_label = by_label
        self._always = tuple(always)

        # All soft evaluators settle exact costs at leaves; only the
        # *stateful* ones (push or pop overridden) need to see pushes,
        # and of those only when the label concerns them.
        self.soft_evaluators: list[tuple[float, SoftEvaluator]] = []
        soft_by_label: dict[str, list[tuple[float, SoftEvaluator]]] = {}
        soft_always: list[tuple[float, SoftEvaluator]] = []
        for weight, constraint in zip(problem.soft_weights,
                                      problem.soft):
            ev = constraint.evaluator(problem.ctx)
            self.soft_evaluators.append((weight, ev))
            cls = type(ev)
            if cls.push is SoftEvaluator.push \
                    and cls.pop is SoftEvaluator.pop:
                continue  # stateless: bound stays 0 for ever
            labels = constraint.relevant_labels()
            if labels is None:
                soft_always.append((weight, ev))
            else:
                for label in labels:
                    soft_by_label.setdefault(label, []).append(
                        (weight, ev))
        self._soft_by_label = soft_by_label
        self._soft_always = tuple(soft_always)
        #: Per-label push plan: (hard evaluators, stateful soft
        #: evaluators) that must see an assignment of this label.
        self._plan: dict[str, tuple] = {}

        tags = problem.tags
        self._n = len(tags)
        self._cand_lists = [problem.cands[tag] for tag in tags]
        self._cost_lists = [
            [problem.log_cost[tag][label] for label in problem.cands[tag]]
            for tag in tags]
        self._ranges = [range(len(cands)) for cands in self._cand_lists]

    # ------------------------------------------------------------------
    # push / pop
    # ------------------------------------------------------------------
    def _plan_for(self, label: str) -> tuple:
        plan = self._plan.get(label)
        if plan is None:
            plan = ((*self._by_label.get(label, ()), *self._always),
                    (*self._soft_by_label.get(label, ()),
                     *self._soft_always))
            self._plan[label] = plan
        return plan

    def _try_push(self, tag: str, label: str) -> float | None:
        """Place ``tag -> label``; the soft-bound delta, or None on a
        hard violation (state fully rolled back)."""
        ctx, assignment = self.ctx, self.assignment
        assignment[tag] = label
        hard_evs, soft_evs = self._plan_for(label)
        for i, ev in enumerate(hard_evs):
            if ev.push(tag, label, assignment, ctx):
                while i >= 0:
                    hard_evs[i].pop(tag, label, assignment, ctx)
                    i -= 1
                del assignment[tag]
                return None
        delta = 0.0
        for weight, ev in soft_evs:
            before = ev.bound
            ev.push(tag, label, assignment, ctx)
            delta += weight * (ev.bound - before)
        return delta

    def _pop(self, tag: str, label: str) -> None:
        ctx, assignment = self.ctx, self.assignment
        hard_evs, soft_evs = self._plan[label]
        for weight, ev in reversed(soft_evs):
            ev.pop(tag, label, assignment, ctx)
        for ev in reversed(hard_evs):
            ev.pop(tag, label, assignment, ctx)
        del assignment[tag]

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def run(self, root_indices: Sequence[int]) -> None:
        """Search the subtrees under the given first-level candidate
        indices (ascending, so the sorted-cost break stays valid)."""
        self._expand(0, 0.0, 0.0, root_indices)
        self._flush_counters()

    def greedy_seed(self) -> None:
        """Cheapest non-violating candidate per tag, in order; offers
        the completed assignment to the incumbent (the anytime upper
        bound). Leaves evaluator state clean."""
        p = self.p
        cost = 0.0
        pushed: list[tuple[str, str]] = []
        try:
            for level, tag in enumerate(p.tags):
                for idx, label in enumerate(self._cand_lists[level]):
                    if self._try_push(tag, label) is not None:
                        pushed.append((tag, label))
                        self.path.append(idx)
                        cost += self._cost_lists[level][idx]
                        break
                else:
                    return  # stuck: no feasible seed
            self._offer_leaf(cost)
        finally:
            for tag, label in reversed(pushed):
                self._pop(tag, label)
            self.path.clear()
            self._flush_counters()

    def _flush_counters(self) -> None:
        stats = self.stats
        stats["nodes_expanded"] += self._nodes
        stats["prune_bound"] += self._prunes_bound
        stats["prune_hard"] += self._prunes_hard
        stats["prune_soft_bound"] += self._prunes_soft
        stats["leaf_hard_rejects"] += self._leaf_rejects
        self._nodes = self._prunes_bound = self._prunes_hard = 0
        self._prunes_soft = self._leaf_rejects = 0

    def _expand(self, level: int, cost_so_far: float, soft_lower: float,
                indices: Sequence[int]) -> None:
        """Visit candidate ``indices`` of ``tags[level]`` in order.

        The candidate loop is deliberately flat — prune tests inlined,
        per-level lists precomputed — because this is the engine's one
        hot path (millions of iterations on large schemas)."""
        budget = self.budget
        if budget.exhausted():
            return
        budget.spent += 1
        snap = budget.snapshot
        if snap is not None and not (budget.spent & _SNAPSHOT_MASK):
            # The checkpoint snapshot callback; it only reads the
            # incumbent (under its lock) and writes through the atomic
            # artifact layer, so it cannot perturb the search.
            snap()  # lsd: ignore[flow-unresolved-hot-call]
        self._nodes += 1
        inc = self.incumbent
        path = self.path
        tag = self.p.tags[level]
        cands = self._cand_lists[level]
        costs = self._cost_lists[level]
        remaining = self.p.suffix_best[level + 1]
        next_level = level + 1
        is_leaf = next_level == self._n
        for count, idx in enumerate(indices):
            new_cost = cost_so_far + costs[idx]
            bound = new_cost + remaining + soft_lower
            best_cost, best_path, best_assignment = inc.best
            if bound > best_cost or (
                    bound == best_cost and best_assignment is not None
                    and (*path, idx) > best_path[:next_level]):
                # Candidates are cost-sorted: the rest cost more, so the
                # whole remaining sibling run is cut in one break.
                n_cut = len(indices) - count
                if new_cost + remaining <= best_cost < bound:
                    self._prunes_soft += n_cut
                else:
                    self._prunes_bound += n_cut
                break
            label = cands[idx]
            delta = self._try_push(tag, label)
            if delta is None:
                self._prunes_hard += 1
                continue
            new_soft = soft_lower + delta
            if delta > 0.0:
                bound = new_cost + remaining + new_soft
                best_cost, best_path, best_assignment = inc.best
                if bound > best_cost or (
                        bound == best_cost
                        and best_assignment is not None
                        and (*path, idx) > best_path[:next_level]):
                    self._prunes_soft += 1
                    self._pop(tag, label)
                    continue
            path.append(idx)
            if is_leaf:
                # The running soft bound is a lower bound only; the
                # leaf re-settles soft costs exactly via the evaluators.
                self._offer_leaf(new_cost)
            else:
                self._expand(next_level, new_cost, new_soft,
                             self._ranges[next_level])
            path.pop()
            self._pop(tag, label)

    def _offer_leaf(self, score_cost: float) -> None:
        """Settle exact soft costs and hard completeness at a leaf."""
        ctx, assignment = self.ctx, self.assignment
        for ev in self.hard_evaluators:
            if ev.complete_violation(assignment, ctx):
                self._leaf_rejects += 1
                return
        total = score_cost
        for weight, ev in self.soft_evaluators:
            total += weight * ev.complete_cost(assignment, ctx)
        self.incumbent.offer(total, tuple(self.path), assignment)


class ConstraintHandler:
    """Searches for the least-cost complete mapping under constraints."""

    def __init__(self, constraints: Sequence[Constraint] = (),
                 prob_weight: float = 1.0,
                 soft_weights: dict[str, float] | None = None,
                 candidates_per_tag: int = 8,
                 max_expansions: int = 100_000,
                 epsilon: float = 1e-6,
                 search: str = "bnb") -> None:
        """
        Parameters
        ----------
        constraints:
            The domain constraints (hard and soft, mixed).
        prob_weight:
            The paper's ``a`` coefficient on ``-log prob(m)``.
        soft_weights:
            ``alpha_i`` per soft-constraint ``kind``.
        candidates_per_tag:
            Branching limit: only this many top-scoring labels (plus OTHER
            plus constraint-required labels) are considered per tag.
        max_expansions:
            Node budget; when exhausted the best complete mapping seen
            so far (or a greedy completion) is returned.
        epsilon:
            Floor under confidence scores before taking logs.
        search:
            ``"bnb"`` (incremental branch-and-bound, the default) or
            ``"astar"`` (best-first via :func:`~repro.constraints.
            search.astar`, same cost model and heuristic).
        """
        if search not in SEARCH_STRATEGIES:
            raise ValueError(
                f"unknown search strategy {search!r}; "
                f"choose from {SEARCH_STRATEGIES}")
        self.constraints = list(constraints)
        self.prob_weight = prob_weight
        self.soft_weights = dict(DEFAULT_SOFT_WEIGHTS)
        if soft_weights:
            self.soft_weights.update(soft_weights)
        self.candidates_per_tag = candidates_per_tag
        self.max_expansions = max_expansions
        self.epsilon = epsilon
        self.search = search
        #: Counters from the most recent :meth:`find_mapping` call
        #: (nodes expanded, prunes by reason, strategy, best cost).
        self.last_stats: dict = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def find_mapping(self, scores: dict[str, np.ndarray],
                     space: LabelSpace, ctx: MatchContext,
                     extra_constraints: Sequence[Constraint] = (),
                     executor: ParallelExecutor | None = None,
                     profile: StageProfile | None = None,
                     observer: Observer | None = None,
                     deadline=None, report=None, warm_start=None,
                     snapshot=None) -> Mapping:
        """The least-cost mapping for the given per-tag score rows.

        ``scores[tag]`` is the prediction converter's normalised score
        vector for that tag. ``extra_constraints`` carries user feedback
        for the current source only (§4.3). ``executor`` fans the
        branch-and-bound root subtrees out across worker threads (the
        mapping is byte-identical at any worker count); ``profile``
        receives ``constraint_*`` counters when given; ``observer``
        records a ``search`` span and the ``constraint.*`` metrics.

        ``deadline`` (a :class:`repro.resilience.Deadline`) caps the
        search by wall clock on top of the expansion budget; when either
        cuts the search short the best complete mapping found so far is
        returned and ``report`` (a :class:`~repro.resilience.
        DegradationReport`), when given, is flagged *anytime*.

        ``warm_start`` is a checkpointed ``(cost, path, assignment)``
        incumbent pre-offered to the search before any expansion.
        Because incumbents order by ``(cost, path)`` — the same total
        order exploration itself settles — pre-offering is equivalent
        to having explored that leaf first, so a warm-started search
        returns exactly what an uninterrupted one would. ``snapshot``
        is a ``(cost, path, assignment)`` callback invoked with the
        current incumbent every few thousand expansions (and once at
        the end of the search) — the crash-safe persistence hook.
        """
        obs = resolve_observer(observer)
        with obs.trace.span("search", strategy=self.search) as span:
            mapping = self._find_mapping(scores, space, ctx,
                                         extra_constraints, executor,
                                         profile, deadline, warm_start,
                                         snapshot)
            span.set_attribute(
                "nodes_expanded", self.last_stats["nodes_expanded"])
        for stat, metric in _STAT_METRICS.items():
            obs.metrics.counter(metric).inc(self.last_stats[stat])
        if report is not None and self.last_stats.get("anytime"):
            report.mark_anytime()
        return mapping

    def _find_mapping(self, scores: dict[str, np.ndarray],
                      space: LabelSpace, ctx: MatchContext,
                      extra_constraints: Sequence[Constraint],
                      executor: ParallelExecutor | None,
                      profile: StageProfile | None,
                      deadline=None, warm_start=None,
                      snapshot=None) -> Mapping:
        hard, soft = split_constraints(
            [*self.constraints, *extra_constraints])
        tags = self._tag_order(list(scores), ctx)
        if not tags:
            self.last_stats = {**_zero_stats(), "strategy": self.search}
            return Mapping({})

        candidate_labels = self._candidates(tags, scores, space, hard)
        log_cost = {
            tag: {
                label: -self.prob_weight * math.log(
                    max(float(scores[tag][space.index_of(label)]),
                        self.epsilon))
                for label in candidate_labels[tag]
            }
            for tag in tags
        }
        # Candidates cheapest-first: lets branch-and-bound cut a whole
        # sibling group as soon as one candidate exceeds the bound.
        ordered_candidates = {
            tag: sorted(candidate_labels[tag],
                        key=lambda label: log_cost[tag][label])
            for tag in tags
        }
        suffix_best = self._suffix_best(tags, ordered_candidates,
                                        log_cost, hard)

        problem = _Problem(
            tags, ordered_candidates, log_cost, suffix_best, hard, soft,
            [self.soft_weights.get(c.kind, 1.0) for c in soft], ctx)

        if self.search == "astar":
            best, stats = self._astar_search(problem, deadline)
            if warm_start is not None and stats.get("anytime"):
                # Best-first search has no shared incumbent to seed, so
                # the checkpointed leaf competes with the result here:
                # on a cut-short search the cheaper of the two wins
                # (ties keep the fresh result).
                warm_cost, _, warm_assignment = warm_start
                if best is None or warm_cost < stats["best_cost"]:
                    best = dict(warm_assignment)
                    stats["best_cost"] = float(warm_cost)
        else:
            best, stats = self._branch_and_bound(problem, executor,
                                                 deadline, warm_start,
                                                 snapshot)
        stats["strategy"] = self.search
        self.last_stats = stats
        if profile is not None:
            for name in _STAT_NAMES:
                profile.count(f"constraint_{name}", stats[name])

        if best is not None:
            return Mapping(best)
        # No complete assignment satisfies the hard constraints within
        # budget (possibly they are jointly unsatisfiable on this source):
        # fall back to the unconstrained greedy mapping.
        return self.greedy_mapping(scores, space)

    # ------------------------------------------------------------------
    # strategies
    # ------------------------------------------------------------------
    def _branch_and_bound(self, problem: _Problem,
                          executor: ParallelExecutor | None,
                          deadline=None, warm_start=None, snapshot=None
                          ) -> tuple[dict[str, str] | None, dict]:
        """Incremental DFS branch-and-bound with a parallel root-split."""
        executor = resolve(executor)
        incumbent = _Incumbent()
        budget = _Budget(self.max_expansions, deadline)
        if warm_start is not None:
            warm_cost, warm_path, warm_assignment = warm_start
            incumbent.offer(float(warm_cost), tuple(warm_path),
                            dict(warm_assignment))
        if snapshot is not None:
            def snap() -> None:
                cost, path, assignment = incumbent.best
                if assignment is not None:
                    snapshot(cost, path, assignment)
            budget.snapshot = snap

        seed_engine = _DfsEngine(problem, incumbent, budget)
        seed_engine.greedy_seed()

        root_count = len(problem.cands[problem.tags[0]])
        partitions = split_round_robin(range(root_count),
                                       executor.workers)

        def run_partition(indices: list[int]) -> dict:
            engine = _DfsEngine(problem, incumbent, budget)
            engine.run(indices)
            return engine.stats

        worker_stats = executor.map(run_partition, partitions)
        stats = _zero_stats()
        for part in (seed_engine.stats, *worker_stats):
            for name in _STAT_NAMES:
                stats[name] += part[name]
        stats["root_partitions"] = len(partitions)
        stats["anytime"] = int(budget.stopped)

        if budget.snapshot is not None:
            budget.snapshot()  # final flush: persist the winner too
        cost, _, assignment = incumbent.best
        stats["best_cost"] = cost
        return assignment, stats

    def _astar_search(self, problem: _Problem, deadline=None
                      ) -> tuple[dict[str, str] | None, dict]:
        """Best-first search over the same space and cost model.

        States are tuples of candidate indices, one per assigned tag; a
        final closing transition adds the exact soft cost (and checks
        hard completeness), so the goal's ``g`` equals the paper's
        ``cost(m)`` exactly as branch-and-bound computes it. An armed
        ``deadline`` is polled every 256 expansions; on expiry the
        expander yields nothing more, the frontier drains, and the best
        goal seen so far is returned (flagged anytime).
        """
        p = problem
        clock = _Budget(self.max_expansions, deadline)
        n = len(p.tags)
        cand_lists = [p.cands[tag] for tag in p.tags]
        cost_lists = [[p.log_cost[tag][label] for label in p.cands[tag]]
                      for tag in p.tags]

        by_label: dict[str, list[HardConstraint]] = {}
        always: list[HardConstraint] = []
        for constraint in p.hard:
            labels = constraint.relevant_labels()
            if labels is None:
                always.append(constraint)
            else:
                for label in labels:
                    by_label.setdefault(label, []).append(constraint)

        def assignment_of(state: tuple[int, ...]) -> dict[str, str]:
            return {p.tags[i]: cand_lists[i][ci]
                    for i, ci in enumerate(state)}

        def expand(state: tuple[int, ...]):
            level = len(state)
            if level > n:
                return
            if clock.exhausted():
                # Deadline hit: yield nothing so the frontier drains and
                # astar returns the best goal recorded so far.
                return
            clock.spent += 1
            assignment = assignment_of(state)
            if level == n:
                if any(c.check_complete(assignment, p.ctx)
                       for c in p.hard):
                    return
                soft_cost = sum(
                    weight * c.cost(assignment, p.ctx)
                    for weight, c in zip(p.soft_weights, p.soft))
                yield state + (-1,), soft_cost
                return
            tag = p.tags[level]
            for i, label in enumerate(cand_lists[level]):
                assignment[tag] = label
                ok = not any(
                    c.check_partial(assignment, p.ctx)
                    for c in by_label.get(label, ()))
                ok = ok and not any(
                    c.check_partial(assignment, p.ctx) for c in always)
                if ok:
                    yield state + (i,), cost_lists[level][i]
            del assignment[tag]

        def heuristic(state: tuple[int, ...]) -> float:
            return p.suffix_best[min(len(state), n)]

        result = astar((), expand, lambda s: len(s) == n + 1, heuristic,
                       max_expansions=self.max_expansions)
        stats = _zero_stats()
        stats["nodes_expanded"] = result.expanded
        stats["best_cost"] = result.cost
        stats["exhausted_budget"] = int(result.exhausted_budget)
        stats["anytime"] = int(result.exhausted_budget or clock.stopped)
        if result.state is None:
            return None, stats
        return assignment_of(result.state[:-1]), stats

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def greedy_mapping(self, scores: dict[str, np.ndarray],
                       space: LabelSpace) -> Mapping:
        """Argmax assignment, ignoring constraints (§3.2 step 3's
        no-constraints behaviour; also the handler-less ablation)."""
        return Mapping({
            tag: space.label_at(int(np.argmax(row)))
            for tag, row in scores.items()
        })

    def violations(self, mapping: Mapping, ctx: MatchContext,
                   extra_constraints: Sequence[Constraint] = ()
                   ) -> list[Constraint]:
        """All constraints a complete mapping violates (diagnostics)."""
        hard, soft = split_constraints(
            [*self.constraints, *extra_constraints])
        assignment = {tag: mapping.label_of(tag) for tag in mapping}
        violated: list[Constraint] = [
            c for c in hard if c.check_complete(assignment, ctx)]
        violated.extend(
            c for c in soft if c.cost(assignment, ctx) > 0.0)
        return violated

    def mapping_cost(self, mapping: Mapping,
                     scores: dict[str, np.ndarray], space: LabelSpace,
                     ctx: MatchContext,
                     extra_constraints: Sequence[Constraint] = ()
                     ) -> float:
        """The paper's cost(m) of a complete mapping (inf on hard
        violations).

        ``extra_constraints`` carries per-source user feedback, exactly
        as in :meth:`find_mapping` and :meth:`violations` — so the cost
        reported after feedback agrees with what the search minimised
        and with ``violations()`` on the same mapping.
        """
        hard, soft = split_constraints(
            [*self.constraints, *extra_constraints])
        assignment = {tag: mapping.label_of(tag) for tag in mapping}
        if any(c.check_complete(assignment, ctx) for c in hard):
            return float("inf")
        cost = self._soft_cost(assignment, ctx, soft)
        for tag, label in assignment.items():
            score = max(float(scores[tag][space.index_of(label)]),
                        self.epsilon)
            cost += -self.prob_weight * math.log(score)
        return cost

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _tag_order(self, tags: list[str], ctx: MatchContext) -> list[str]:
        """§6.3 refinement order: most-structured tags first."""
        return sorted(
            tags,
            key=lambda tag: (-ctx.schema.descendant_count(tag), tag))

    def _candidates(self, tags: list[str],
                    scores: dict[str, np.ndarray], space: LabelSpace,
                    hard: list[HardConstraint]) -> dict[str, list[str]]:
        required = {
            c.label for c in hard
            if isinstance(c, FrequencyConstraint) and c.min_count > 0}
        pinned = {
            c.tag: c.label for c in hard
            if isinstance(c, AssignmentConstraint)}
        excluded: dict[str, set[str]] = {}
        for c in hard:
            if isinstance(c, ExclusionConstraint):
                excluded.setdefault(c.tag, set()).add(c.label)
        candidates: dict[str, list[str]] = {}
        for tag in tags:
            if tag in pinned:
                candidates[tag] = [pinned[tag]]
                continue
            row = scores[tag]
            k = min(self.candidates_per_tag, len(row))
            # Stable sort on -score: ties break by ascending label
            # index, the documented deterministic candidate order.
            top = np.argsort(-row, kind="stable")[:k]
            chosen = list(dict.fromkeys(
                [*(int(i) for i in top), space.index_of(OTHER),
                 *(space.index_of(label) for label in sorted(required))]))
            # Labels excluded by feedback can never be assigned to this
            # tag; dropping them up front tightens ``suffix_best``.
            banned = excluded.get(tag)
            if banned:
                chosen = [i for i in chosen
                          if space.label_at(i) not in banned] \
                    or [space.index_of(OTHER)]
            # Re-sort so the whole list — appended OTHER / required
            # labels included — is cost-ascending: the engine's sibling
            # break on a bound prune relies on that monotonicity.
            chosen.sort(key=lambda i: (-row[i], i))
            candidates[tag] = [space.label_at(i) for i in chosen]
        return candidates

    def _suffix_best(self, tags: list[str],
                     ordered_candidates: dict[str, list[str]],
                     log_cost: dict[str, dict[str, float]],
                     hard: list[HardConstraint]) -> list[float]:
        """Admissible per-level lower bounds on the remaining score cost.

        ``suffix_best[i]`` bounds the cheapest feasible completion of
        ``tags[i:]`` under *any* prefix. The base term sums each suffix
        tag's cheapest candidate. On top of that, a regret term covers
        1-1 labels (``max_count == 1``) claimed as cheapest by several
        suffix tags: at most one claimant can keep such a label, so
        every other claimant pays at least the step up to its own
        second-cheapest candidate. Summing the smallest ``k - 1`` of the
        ``k`` regrets (total minus the largest) stays a lower bound no
        matter which claimant wins — this is what lets the search close
        assignment-collision gaps the plain per-tag minimum cannot see.
        """
        one_to_one = {
            c.label for c in hard
            if isinstance(c, FrequencyConstraint) and c.max_count == 1}
        n = len(tags)
        suffix_best = [0.0] * (n + 1)
        base = 0.0
        extra = 0.0
        # Per claimed label: (sum of finite regrets, largest regret).
        claims: dict[str, tuple[float, float]] = {}
        for i in range(n - 1, -1, -1):
            cands = ordered_candidates[tags[i]]
            costs = log_cost[tags[i]]
            cheapest = cands[0]
            base += costs[cheapest]
            if cheapest in one_to_one:
                regret = costs[cands[1]] - costs[cheapest] \
                    if len(cands) > 1 else math.inf
                finite_sum, largest = claims.get(cheapest, (0.0, 0.0))
                old = finite_sum - (largest if largest < math.inf
                                    else 0.0)
                if regret < math.inf:
                    finite_sum += regret
                largest = max(largest, regret)
                claims[cheapest] = (finite_sum, largest)
                extra += finite_sum - (largest if largest < math.inf
                                       else 0.0) - old
            suffix_best[i] = base + extra
        return suffix_best

    def _soft_cost(self, assignment: dict[str, str], ctx: MatchContext,
                   soft: list[SoftConstraint]) -> float:
        return sum(
            self.soft_weights.get(c.kind, 1.0) * c.cost(assignment, ctx)
            for c in soft)
