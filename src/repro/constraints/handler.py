"""The constraint handler: A* search for the least-cost mapping (§4.2).

Given per-tag label score distributions (from the prediction converter)
and the domain constraints, the handler searches the space of complete
label assignments for the candidate mapping ``m`` minimising

    cost(m) = sum_i alpha_i * cost(m, T_i)  -  a * log prob(m)

where ``prob(m)`` is the product of the per-tag confidence scores
(independence approximation, as in the paper) and ``cost(m, T_i)`` the
violation costs per constraint type. Hard constraint violations make the
cost infinite and prune the search; soft costs are added when an
assignment completes.

Search details (mirroring §6.3): tags are assigned in decreasing order of
their structure score (number of distinct tags nestable within them), the
A* heuristic is the sum of each unassigned tag's best achievable score
cost (admissible: constraint costs are non-negative), and branching is
limited to each tag's top-k candidate labels plus OTHER plus any label a
constraint could *require*.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.labels import OTHER, LabelSpace
from ..core.mapping import Mapping
from .base import (Constraint, HardConstraint, MatchContext, SoftConstraint,
                   split_constraints)
from .feedback import AssignmentConstraint
from .schema_constraints import FrequencyConstraint

#: Default trade-off coefficients per soft-constraint kind (the paper's
#: alpha_i scaling coefficients).
DEFAULT_SOFT_WEIGHTS = {"binary": 1.0, "numeric": 0.5}


class ConstraintHandler:
    """Searches for the least-cost complete mapping under constraints."""

    def __init__(self, constraints: Sequence[Constraint] = (),
                 prob_weight: float = 1.0,
                 soft_weights: dict[str, float] | None = None,
                 candidates_per_tag: int = 8,
                 max_expansions: int = 100_000,
                 epsilon: float = 1e-6) -> None:
        """
        Parameters
        ----------
        constraints:
            The domain constraints (hard and soft, mixed).
        prob_weight:
            The paper's ``a`` coefficient on ``-log prob(m)``.
        soft_weights:
            ``alpha_i`` per soft-constraint ``kind``.
        candidates_per_tag:
            Branching limit: only this many top-scoring labels (plus OTHER
            plus constraint-required labels) are considered per tag.
        max_expansions:
            A* node budget; when exhausted the best complete mapping seen
            so far (or a greedy completion) is returned.
        epsilon:
            Floor under confidence scores before taking logs.
        """
        self.constraints = list(constraints)
        self.prob_weight = prob_weight
        self.soft_weights = dict(DEFAULT_SOFT_WEIGHTS)
        if soft_weights:
            self.soft_weights.update(soft_weights)
        self.candidates_per_tag = candidates_per_tag
        self.max_expansions = max_expansions
        self.epsilon = epsilon

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def find_mapping(self, scores: dict[str, np.ndarray],
                     space: LabelSpace, ctx: MatchContext,
                     extra_constraints: Sequence[Constraint] = ()
                     ) -> Mapping:
        """The least-cost mapping for the given per-tag score rows.

        ``scores[tag]`` is the prediction converter's normalised score
        vector for that tag. ``extra_constraints`` carries user feedback
        for the current source only (§4.3).

        Implementation note: the paper's A* formulation blows its memory
        and time budget on large schemas (it reports handler runtimes "up
        to 20 minutes"); we search the identical space with the identical
        admissible heuristic using depth-first branch-and-bound instead.
        A constrained-greedy pass seeds the upper bound, so the search is
        anytime: exhausting ``max_expansions`` still returns the best
        complete mapping found so far.
        """
        hard, soft = split_constraints(
            [*self.constraints, *extra_constraints])
        tags = self._tag_order(list(scores), ctx)
        if not tags:
            return Mapping({})

        candidate_labels = self._candidates(tags, scores, space, hard)
        log_cost = {
            tag: {
                label: -self.prob_weight * math.log(
                    max(float(scores[tag][space.index_of(label)]),
                        self.epsilon))
                for label in candidate_labels[tag]
            }
            for tag in tags
        }
        # Candidates cheapest-first: lets branch-and-bound cut a whole
        # sibling group as soon as one candidate exceeds the bound.
        ordered_candidates = {
            tag: sorted(candidate_labels[tag],
                        key=lambda label: log_cost[tag][label])
            for tag in tags
        }
        # Admissible heuristic: best achievable remaining score cost.
        suffix_best = [0.0] * (len(tags) + 1)
        for i in range(len(tags) - 1, -1, -1):
            suffix_best[i] = suffix_best[i + 1] + min(
                log_cost[tags[i]].values())

        # Index hard constraints: which need rechecking when a given
        # label is assigned, and which on every assignment.
        by_label: dict[str, list[HardConstraint]] = {}
        always: list[HardConstraint] = []
        for constraint in hard:
            labels = constraint.relevant_labels()
            if labels is None:
                always.append(constraint)
            else:
                for label in labels:
                    by_label.setdefault(label, []).append(constraint)

        assignment: dict[str, str] = {}
        best_cost = math.inf
        best: dict[str, str] | None = None
        expansions = 0

        def extension_ok(tag: str, label: str) -> bool:
            for constraint in by_label.get(label, ()):
                if constraint.check_partial(assignment, ctx):
                    return False
            for constraint in always:
                if constraint.check_partial(assignment, ctx):
                    return False
            return True

        # Seed the bound with a constrained-greedy assignment.
        seed = self._constrained_greedy(tags, ordered_candidates,
                                        extension_ok, assignment)
        if seed is not None:
            seed_cost = sum(log_cost[t][l] for t, l in seed.items())
            if not any(c.check_complete(seed, ctx) for c in hard):
                best = dict(seed)
                best_cost = seed_cost + self._soft_cost(seed, ctx, soft)

        def dfs(level: int, cost_so_far: float) -> None:
            nonlocal best, best_cost, expansions
            if expansions >= self.max_expansions:
                return
            if level == len(tags):
                total = cost_so_far + self._soft_cost(assignment, ctx,
                                                      soft)
                if total < best_cost and not any(
                        c.check_complete(assignment, ctx) for c in hard):
                    best_cost = total
                    best = dict(assignment)
                return
            expansions += 1
            tag = tags[level]
            remaining = suffix_best[level + 1]
            for label in ordered_candidates[tag]:
                new_cost = cost_so_far + log_cost[tag][label]
                if new_cost + remaining >= best_cost:
                    break  # candidates are sorted: the rest cost more
                assignment[tag] = label
                if extension_ok(tag, label):
                    dfs(level + 1, new_cost)
                del assignment[tag]

        dfs(0, 0.0)
        if best is not None:
            return Mapping(best)
        # No complete assignment satisfies the hard constraints within
        # budget (possibly they are jointly unsatisfiable on this source):
        # fall back to the unconstrained greedy mapping.
        return self.greedy_mapping(scores, space)

    @staticmethod
    def _constrained_greedy(tags, ordered_candidates, extension_ok,
                            assignment: dict[str, str]
                            ) -> dict[str, str] | None:
        """Cheapest non-violating label per tag, in order; None if stuck.

        Mutates and then clears ``assignment`` (the shared search dict).
        """
        try:
            for tag in tags:
                for label in ordered_candidates[tag]:
                    assignment[tag] = label
                    if extension_ok(tag, label):
                        break
                    del assignment[tag]
                else:
                    return None
            return dict(assignment)
        finally:
            assignment.clear()

    def greedy_mapping(self, scores: dict[str, np.ndarray],
                       space: LabelSpace) -> Mapping:
        """Argmax assignment, ignoring constraints (§3.2 step 3's
        no-constraints behaviour; also the handler-less ablation)."""
        return Mapping({
            tag: space.label_at(int(np.argmax(row)))
            for tag, row in scores.items()
        })

    def violations(self, mapping: Mapping, ctx: MatchContext,
                   extra_constraints: Sequence[Constraint] = ()
                   ) -> list[Constraint]:
        """All constraints a complete mapping violates (diagnostics)."""
        hard, soft = split_constraints(
            [*self.constraints, *extra_constraints])
        assignment = {tag: mapping.label_of(tag) for tag in mapping}
        violated: list[Constraint] = [
            c for c in hard if c.check_complete(assignment, ctx)]
        violated.extend(
            c for c in soft if c.cost(assignment, ctx) > 0.0)
        return violated

    def mapping_cost(self, mapping: Mapping,
                     scores: dict[str, np.ndarray], space: LabelSpace,
                     ctx: MatchContext,
                     extra_constraints: Sequence[Constraint] = ()
                     ) -> float:
        """The paper's cost(m) of a complete mapping (inf on hard
        violations).

        ``extra_constraints`` carries per-source user feedback, exactly
        as in :meth:`find_mapping` and :meth:`violations` — so the cost
        reported after feedback agrees with what the search minimised
        and with ``violations()`` on the same mapping.
        """
        hard, soft = split_constraints(
            [*self.constraints, *extra_constraints])
        assignment = {tag: mapping.label_of(tag) for tag in mapping}
        if any(c.check_complete(assignment, ctx) for c in hard):
            return float("inf")
        cost = self._soft_cost(assignment, ctx, soft)
        for tag, label in assignment.items():
            score = max(float(scores[tag][space.index_of(label)]),
                        self.epsilon)
            cost += -self.prob_weight * math.log(score)
        return cost

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _tag_order(self, tags: list[str], ctx: MatchContext) -> list[str]:
        """§6.3 refinement order: most-structured tags first."""
        return sorted(
            tags,
            key=lambda tag: (-ctx.schema.descendant_count(tag), tag))

    def _candidates(self, tags: list[str],
                    scores: dict[str, np.ndarray], space: LabelSpace,
                    hard: list[HardConstraint]) -> dict[str, list[str]]:
        required = {
            c.label for c in hard
            if isinstance(c, FrequencyConstraint) and c.min_count > 0}
        pinned = {
            c.tag: c.label for c in hard
            if isinstance(c, AssignmentConstraint)}
        candidates: dict[str, list[str]] = {}
        for tag in tags:
            if tag in pinned:
                candidates[tag] = [pinned[tag]]
                continue
            row = scores[tag]
            k = min(self.candidates_per_tag, len(row))
            top = np.argsort(row)[::-1][:k]
            labels = [space.label_at(int(i)) for i in top]
            for extra in (OTHER, *sorted(required)):
                if extra not in labels:
                    labels.append(extra)
            candidates[tag] = labels
        return candidates

    def _soft_cost(self, assignment: dict[str, str], ctx: MatchContext,
                   soft: list[SoftConstraint]) -> float:
        return sum(
            self.soft_weights.get(c.kind, 1.0) * c.cost(assignment, ctx)
            for c in soft)
