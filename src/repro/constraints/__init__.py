"""Domain constraints and the A* constraint handler (§4 of the paper)."""

from .base import (Constraint, HardConstraint, MatchContext, SoftConstraint,
                   split_constraints, tags_with_label)
from .column_constraints import (FunctionalDependencyConstraint,
                                 KeyConstraint)
from .feedback import AssignmentConstraint, ExclusionConstraint
from .handler import DEFAULT_SOFT_WEIGHTS, ConstraintHandler
from .parser import ConstraintSyntaxError, parse_constraints
from .schema_constraints import (ContiguityConstraint,
                                 ExclusivityConstraint, FrequencyConstraint,
                                 NestingConstraint)
from .search import SearchResult, astar
from .soft import (BinarySoftConstraint, MaxCountSoftConstraint,
                   NumericSoftConstraint, ProximityConstraint)

__all__ = [
    "AssignmentConstraint", "BinarySoftConstraint", "Constraint",
    "ConstraintHandler", "ConstraintSyntaxError", "ContiguityConstraint",
    "DEFAULT_SOFT_WEIGHTS", "ExclusionConstraint", "ExclusivityConstraint",
    "FrequencyConstraint", "FunctionalDependencyConstraint",
    "HardConstraint", "KeyConstraint", "MatchContext",
    "MaxCountSoftConstraint", "NestingConstraint", "NumericSoftConstraint",
    "ProximityConstraint", "SearchResult", "SoftConstraint", "astar",
    "parse_constraints", "split_constraints", "tags_with_label",
]
