"""Domain constraints and the constraint handler (§4 of the paper).

The handler searches with incremental branch-and-bound by default; A*
remains selectable via ``ConstraintHandler(search="astar")``.
"""

from .base import (Constraint, HardConstraint, HardEvaluator, MatchContext,
                   SoftConstraint, SoftEvaluator, split_constraints,
                   tags_with_label)
from .column_constraints import (FunctionalDependencyConstraint,
                                 KeyConstraint)
from .feedback import AssignmentConstraint, ExclusionConstraint
from .handler import (DEFAULT_SOFT_WEIGHTS, SEARCH_STRATEGIES,
                      ConstraintHandler)
from .parser import ConstraintSyntaxError, parse_constraints
from .schema_constraints import (ContiguityConstraint,
                                 ExclusivityConstraint, FrequencyConstraint,
                                 NestingConstraint)
from .search import SearchResult, astar
from .soft import (BinarySoftConstraint, MaxCountSoftConstraint,
                   NumericSoftConstraint, ProximityConstraint)

__all__ = [
    "AssignmentConstraint", "BinarySoftConstraint", "Constraint",
    "ConstraintHandler", "ConstraintSyntaxError", "ContiguityConstraint",
    "DEFAULT_SOFT_WEIGHTS", "ExclusionConstraint", "ExclusivityConstraint",
    "FrequencyConstraint", "FunctionalDependencyConstraint",
    "HardConstraint", "HardEvaluator", "KeyConstraint", "MatchContext",
    "MaxCountSoftConstraint", "NestingConstraint", "NumericSoftConstraint",
    "ProximityConstraint", "SEARCH_STRATEGIES", "SearchResult",
    "SoftConstraint", "SoftEvaluator", "astar", "parse_constraints",
    "split_constraints", "tags_with_label",
]
