"""Soft constraints: binary (unit cost) and numeric (graded cost).

Table 1's soft examples:

* binary — "Number of elements that match DESCRIPTION is not more than 3";
* numeric — "If a matches AGENT-NAME & b matches AGENT-PHONE, then we
  prefer a & b to be as close to each other as possible".
"""

from __future__ import annotations

from typing import Callable

from .base import MatchContext, SoftConstraint, SoftEvaluator, \
    tags_with_label


class BinarySoftConstraint(SoftConstraint):
    """A predicate whose violation costs a flat amount (default 1)."""

    kind = "binary"

    def __init__(self, predicate: Callable[[dict[str, str], MatchContext],
                                           bool],
                 description: str, violation_cost: float = 1.0) -> None:
        self._predicate = predicate
        self._description = description
        self.violation_cost = violation_cost

    def describe(self) -> str:
        return self._description

    def cost(self, assignment: dict[str, str], ctx: MatchContext) -> float:
        if self._predicate(assignment, ctx):
            return self.violation_cost
        return 0.0


class MaxCountSoftConstraint(BinarySoftConstraint):
    """At most ``max_count`` tags should match ``label`` (soft version of
    a frequency constraint — Table 1's binary example)."""

    def __init__(self, label: str, max_count: int,
                 violation_cost: float = 1.0) -> None:
        self.label = label
        self.max_count = max_count
        # A bound method (not a lambda) keeps the constraint picklable
        # for model persistence.
        super().__init__(
            self._over_limit,
            f"number of elements matching {label} is not more than "
            f"{max_count}",
            violation_cost)

    def _over_limit(self, assignment: dict[str, str],
                    ctx: MatchContext) -> bool:
        return len(tags_with_label(assignment, self.label)) > \
            self.max_count

    def relevant_labels(self) -> set[str]:
        return {self.label}

    def evaluator(self, ctx: MatchContext) -> "_MaxCountSoftEvaluator":
        return _MaxCountSoftEvaluator(self)


class _MaxCountSoftEvaluator(SoftEvaluator):
    """O(1) incremental max-count cost.

    The count of tags holding the watched label only grows as a partial
    assignment is extended, so "already over the limit" is a *certain*
    final violation: the bound is exact once tripped and 0 (admissible)
    below the limit — this is what lets branch-and-bound prune on soft
    cost mid-descent instead of discovering it at the leaf.
    """

    __slots__ = ("count",)

    def __init__(self, constraint: MaxCountSoftConstraint) -> None:
        super().__init__(constraint)
        self.count = 0

    def _rebound(self) -> None:
        c = self.constraint
        self.bound = c.violation_cost if self.count > c.max_count else 0.0

    def push(self, tag, label, assignment, ctx) -> None:
        if label == self.constraint.label:
            self.count += 1
            self._rebound()

    def pop(self, tag, label, assignment, ctx) -> None:
        if label == self.constraint.label:
            self.count -= 1
            self._rebound()

    def complete_cost(self, assignment, ctx) -> float:
        return self.bound  # exact on complete assignments


class NumericSoftConstraint(SoftConstraint):
    """A user-supplied graded cost function."""

    kind = "numeric"

    def __init__(self, cost_fn: Callable[[dict[str, str], MatchContext],
                                         float],
                 description: str) -> None:
        self._cost_fn = cost_fn
        self._description = description

    def describe(self) -> str:
        return self._description

    def cost(self, assignment: dict[str, str], ctx: MatchContext) -> float:
        return max(0.0, float(self._cost_fn(assignment, ctx)))


class ProximityConstraint(NumericSoftConstraint):
    """Prefer two labels' tags to be close siblings (Table 1's numeric
    example). Cost: 0 when adjacent siblings, growing with the number of
    tags between them; 1 when they are not siblings at all."""

    kind = "numeric"

    def __init__(self, label_a: str, label_b: str) -> None:
        self.label_a = label_a
        self.label_b = label_b
        super().__init__(
            self._proximity_cost,
            f"elements matching {label_a} and {label_b} should be close "
            f"to each other")

    def _proximity_cost(self, assignment: dict[str, str],
                        ctx: MatchContext) -> float:
        tags_a = tags_with_label(assignment, self.label_a)
        tags_b = tags_with_label(assignment, self.label_b)
        if not tags_a or not tags_b:
            return 0.0
        best: float = 1.0
        for parent in ctx.schema.dtd.tag_names():
            order = ctx.schema.sibling_order(parent)
            for tag_a in tags_a:
                for tag_b in tags_b:
                    if tag_a in order and tag_b in order:
                        distance = abs(order.index(tag_a)
                                       - order.index(tag_b)) - 1
                        span = max(len(order) - 1, 1)
                        best = min(best, distance / span)
        return best
