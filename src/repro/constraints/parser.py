"""A small text format for declaring domain constraints.

Domains declare their constraints once, as text, at mediated-schema
creation time (§4.1). One constraint per line; ``#`` starts a comment.

Syntax::

    frequency PRICE at-most 1
    frequency HOUSE exactly 1
    frequency ADDRESS between 1 2
    nesting CONTACT-INFO contains AGENT-NAME
    nesting AGENT-INFO excludes PRICE
    contiguous BATHS BEDS
    exclusive COURSE-CREDIT SECTION-CREDIT
    key HOUSE-ID
    fd CITY FIRM-NAME -> FIRM-ADDRESS
    soft-max DESCRIPTION 3
    proximity AGENT-NAME AGENT-PHONE
"""

from __future__ import annotations

from .base import Constraint
from .column_constraints import (FunctionalDependencyConstraint,
                                 KeyConstraint)
from .schema_constraints import (ContiguityConstraint,
                                 ExclusivityConstraint, FrequencyConstraint,
                                 NestingConstraint)
from .soft import MaxCountSoftConstraint, ProximityConstraint


class ConstraintSyntaxError(ValueError):
    """A constraint declaration line could not be parsed."""

    def __init__(self, message: str, line_number: int, line: str) -> None:
        super().__init__(f"line {line_number}: {message}: {line!r}")
        self.line_number = line_number
        self.line = line


def parse_constraints(text: str) -> list[Constraint]:
    """Parse a constraint declaration block into constraint objects."""
    constraints: list[Constraint] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        constraints.append(_parse_line(line, line_number))
    return constraints


def _parse_line(line: str, line_number: int) -> Constraint:
    words = line.split()
    keyword = words[0].lower()
    args = words[1:]

    def fail(message: str) -> ConstraintSyntaxError:
        return ConstraintSyntaxError(message, line_number, line)

    if keyword == "frequency":
        if len(args) < 3:
            raise fail("expected: frequency LABEL at-most|at-least|"
                       "exactly|between N [M]")
        label, mode = args[0], args[1].lower()
        try:
            if mode == "at-most":
                return FrequencyConstraint(label, 0, int(args[2]))
            if mode == "at-least":
                return FrequencyConstraint(label, int(args[2]), None)
            if mode == "exactly":
                count = int(args[2])
                return FrequencyConstraint(label, count, count)
            if mode == "between":
                if len(args) != 4:
                    raise fail("between needs two bounds")
                return FrequencyConstraint(label, int(args[2]),
                                           int(args[3]))
        except ValueError as exc:
            if isinstance(exc, ConstraintSyntaxError):
                raise
            raise fail(str(exc)) from exc
        raise fail(f"unknown frequency mode {mode!r}")

    if keyword == "nesting":
        if len(args) != 3 or args[1].lower() not in ("contains",
                                                     "excludes"):
            raise fail("expected: nesting OUTER contains|excludes INNER")
        return NestingConstraint(args[0], args[2],
                                 forbidden=args[1].lower() == "excludes")

    if keyword == "contiguous":
        if len(args) != 2:
            raise fail("expected: contiguous LABEL-A LABEL-B")
        return ContiguityConstraint(args[0], args[1])

    if keyword == "exclusive":
        if len(args) != 2:
            raise fail("expected: exclusive LABEL-A LABEL-B")
        return ExclusivityConstraint(args[0], args[1])

    if keyword == "key":
        if len(args) != 1:
            raise fail("expected: key LABEL")
        return KeyConstraint(args[0])

    if keyword == "fd":
        if "->" not in args:
            raise fail("expected: fd DETERMINANTS... -> DEPENDENT")
        arrow = args.index("->")
        determinants, dependents = args[:arrow], args[arrow + 1:]
        if not determinants or len(dependents) != 1:
            raise fail("expected: fd DETERMINANTS... -> DEPENDENT")
        return FunctionalDependencyConstraint(determinants, dependents[0])

    if keyword == "soft-max":
        if len(args) != 2:
            raise fail("expected: soft-max LABEL N")
        try:
            return MaxCountSoftConstraint(args[0], int(args[1]))
        except ValueError as exc:
            raise fail(str(exc)) from exc

    if keyword == "proximity":
        if len(args) != 2:
            raise fail("expected: proximity LABEL-A LABEL-B")
        return ProximityConstraint(args[0], args[1])

    raise fail(f"unknown constraint keyword {keyword!r}")
