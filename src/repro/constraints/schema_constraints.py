"""Hard constraints verifiable with the target source's schema alone:
frequency, nesting, contiguity, and exclusivity (Table 1).
"""

from __future__ import annotations

from ..core.labels import OTHER
from .base import HardConstraint, MatchContext, tags_with_label


class FrequencyConstraint(HardConstraint):
    """Bounds how many source tags may match a label.

    Table 1: "At most one source element matches HOUSE", "Exactly one
    source element matches PRICE".
    """

    kind = "frequency"

    def __init__(self, label: str, min_count: int = 0,
                 max_count: int | None = 1) -> None:
        if label == OTHER:
            raise ValueError("frequency constraints on OTHER are "
                             "meaningless: any number of tags may be OTHER")
        if max_count is not None and max_count < min_count:
            raise ValueError("max_count below min_count")
        self.label = label
        self.min_count = min_count
        self.max_count = max_count

    @classmethod
    def at_most_one(cls, label: str) -> "FrequencyConstraint":
        return cls(label, 0, 1)

    @classmethod
    def exactly_one(cls, label: str) -> "FrequencyConstraint":
        return cls(label, 1, 1)

    def describe(self) -> str:
        if self.max_count is None:
            return f"at least {self.min_count} source elements match " \
                   f"{self.label}"
        if self.min_count == self.max_count:
            return f"exactly {self.min_count} source element(s) match " \
                   f"{self.label}"
        return (f"between {self.min_count} and {self.max_count} source "
                f"elements match {self.label}")

    def relevant_labels(self) -> set[str]:
        return {self.label}

    def check_partial(self, assignment: dict[str, str],
                      ctx: MatchContext) -> bool:
        if self.max_count is None:
            return False
        return len(tags_with_label(assignment, self.label)) > self.max_count

    def check_complete(self, assignment: dict[str, str],
                       ctx: MatchContext) -> bool:
        count = len(tags_with_label(assignment, self.label))
        if count < self.min_count:
            return True
        return self.max_count is not None and count > self.max_count


class NestingConstraint(HardConstraint):
    """Requires (or forbids) one label's tag to nest inside another's.

    Table 1: "If a matches AGENT-INFO & b matches AGENT-NAME, then b is
    nested in a"; with ``forbidden=True``: "... then b cannot be nested
    in a".
    """

    kind = "nesting"

    def __init__(self, outer_label: str, inner_label: str,
                 forbidden: bool = False) -> None:
        self.outer_label = outer_label
        self.inner_label = inner_label
        self.forbidden = forbidden

    def describe(self) -> str:
        relation = "cannot be nested in" if self.forbidden \
            else "must be nested in"
        return (f"elements matching {self.inner_label} {relation} "
                f"elements matching {self.outer_label}")

    def relevant_labels(self) -> set[str]:
        return {self.outer_label, self.inner_label}

    def _violated(self, assignment: dict[str, str],
                  ctx: MatchContext) -> bool:
        outers = tags_with_label(assignment, self.outer_label)
        inners = tags_with_label(assignment, self.inner_label)
        for outer in outers:
            for inner in inners:
                nested = ctx.schema.is_nested_within(inner, outer)
                if self.forbidden and nested:
                    return True
                if not self.forbidden and not nested:
                    return True
        return False

    # Both directions are definite on partial assignments: adding more
    # assignments never changes whether an existing (outer, inner) pair
    # nests in the schema tree.
    check_partial = _violated
    check_complete = _violated


class ContiguityConstraint(HardConstraint):
    """Two labels' tags must be siblings with only OTHER tags between.

    Table 1: "If a matches BATHS & b matches BEDS, then a & b are siblings
    in the schema-tree, and the elements between them (if any) can only
    match OTHER."
    """

    kind = "contiguity"

    def __init__(self, label_a: str, label_b: str) -> None:
        self.label_a = label_a
        self.label_b = label_b

    def describe(self) -> str:
        return (f"elements matching {self.label_a} and {self.label_b} are "
                f"siblings separated only by OTHER elements")

    def check_partial(self, assignment: dict[str, str],
                      ctx: MatchContext) -> bool:
        for tag_a in tags_with_label(assignment, self.label_a):
            for tag_b in tags_with_label(assignment, self.label_b):
                between = self._between(tag_a, tag_b, ctx)
                if between is None:
                    return True  # not siblings: definite violation
                for tag in between:
                    label = assignment.get(tag)
                    if label is not None and label != OTHER:
                        return True
        return False

    def check_complete(self, assignment: dict[str, str],
                       ctx: MatchContext) -> bool:
        return self.check_partial(assignment, ctx)

    def _between(self, tag_a: str, tag_b: str,
                 ctx: MatchContext) -> list[str] | None:
        """Tags strictly between the two siblings, or None if they are not
        siblings anywhere in the schema."""
        for parent in ctx.schema.dtd.tag_names():
            order = ctx.schema.sibling_order(parent)
            if tag_a in order and tag_b in order:
                i, j = order.index(tag_a), order.index(tag_b)
                if i > j:
                    i, j = j, i
                return order[i + 1:j]
        return None


class ExclusivityConstraint(HardConstraint):
    """Two labels cannot both be present in one source.

    Table 1: "There are no a and b such that a matches COURSE-CREDIT & b
    matches SECTION-CREDIT."
    """

    kind = "exclusivity"

    def __init__(self, label_a: str, label_b: str) -> None:
        self.label_a = label_a
        self.label_b = label_b

    def describe(self) -> str:
        return f"{self.label_a} and {self.label_b} cannot both be matched"

    def relevant_labels(self) -> set[str]:
        return {self.label_a, self.label_b}

    def _violated(self, assignment: dict[str, str],
                  ctx: MatchContext) -> bool:
        return bool(tags_with_label(assignment, self.label_a)
                    and tags_with_label(assignment, self.label_b))

    check_partial = _violated
    check_complete = _violated
