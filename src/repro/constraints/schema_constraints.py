"""Hard constraints verifiable with the target source's schema alone:
frequency, nesting, contiguity, and exclusivity (Table 1).

Each constraint also ships an incremental evaluator (see
:mod:`repro.constraints.base`): per-label counters for frequency and
exclusivity, watched tag lists for nesting, and a watched-tag reference
count for contiguity's between-tags clause, so the search pays O(delta)
per assignment instead of re-scanning the partial mapping.
"""

from __future__ import annotations

from ..core.labels import OTHER
from .base import HardConstraint, HardEvaluator, MatchContext, \
    tags_with_label


class FrequencyConstraint(HardConstraint):
    """Bounds how many source tags may match a label.

    Table 1: "At most one source element matches HOUSE", "Exactly one
    source element matches PRICE".
    """

    kind = "frequency"

    def __init__(self, label: str, min_count: int = 0,
                 max_count: int | None = 1) -> None:
        if label == OTHER:
            raise ValueError("frequency constraints on OTHER are "
                             "meaningless: any number of tags may be OTHER")
        if max_count is not None and max_count < min_count:
            raise ValueError("max_count below min_count")
        self.label = label
        self.min_count = min_count
        self.max_count = max_count

    @classmethod
    def at_most_one(cls, label: str) -> "FrequencyConstraint":
        return cls(label, 0, 1)

    @classmethod
    def exactly_one(cls, label: str) -> "FrequencyConstraint":
        return cls(label, 1, 1)

    def describe(self) -> str:
        if self.max_count is None:
            return f"at least {self.min_count} source elements match " \
                   f"{self.label}"
        if self.min_count == self.max_count:
            return f"exactly {self.min_count} source element(s) match " \
                   f"{self.label}"
        return (f"between {self.min_count} and {self.max_count} source "
                f"elements match {self.label}")

    def relevant_labels(self) -> set[str]:
        return {self.label}

    def check_partial(self, assignment: dict[str, str],
                      ctx: MatchContext) -> bool:
        if self.max_count is None:
            return False
        return len(tags_with_label(assignment, self.label)) > self.max_count

    def check_complete(self, assignment: dict[str, str],
                       ctx: MatchContext) -> bool:
        count = len(tags_with_label(assignment, self.label))
        if count < self.min_count:
            return True
        return self.max_count is not None and count > self.max_count

    def evaluator(self, ctx: MatchContext) -> "_FrequencyEvaluator":
        return _FrequencyEvaluator(self)


class _FrequencyEvaluator(HardEvaluator):
    """O(1) frequency tracking: one counter for the watched label."""

    __slots__ = ("count",)

    def __init__(self, constraint: FrequencyConstraint) -> None:
        super().__init__(constraint)
        self.count = 0

    def push(self, tag, label, assignment, ctx) -> bool:
        c = self.constraint
        if label != c.label:
            return False
        self.count += 1
        return c.max_count is not None and self.count > c.max_count

    def pop(self, tag, label, assignment, ctx) -> None:
        if label == self.constraint.label:
            self.count -= 1

    def complete_violation(self, assignment, ctx) -> bool:
        c = self.constraint
        if self.count < c.min_count:
            return True
        return c.max_count is not None and self.count > c.max_count


class NestingConstraint(HardConstraint):
    """Requires (or forbids) one label's tag to nest inside another's.

    Table 1: "If a matches AGENT-INFO & b matches AGENT-NAME, then b is
    nested in a"; with ``forbidden=True``: "... then b cannot be nested
    in a".
    """

    kind = "nesting"

    def __init__(self, outer_label: str, inner_label: str,
                 forbidden: bool = False) -> None:
        self.outer_label = outer_label
        self.inner_label = inner_label
        self.forbidden = forbidden

    def describe(self) -> str:
        relation = "cannot be nested in" if self.forbidden \
            else "must be nested in"
        return (f"elements matching {self.inner_label} {relation} "
                f"elements matching {self.outer_label}")

    def relevant_labels(self) -> set[str]:
        return {self.outer_label, self.inner_label}

    def _violated(self, assignment: dict[str, str],
                  ctx: MatchContext) -> bool:
        outers = tags_with_label(assignment, self.outer_label)
        inners = tags_with_label(assignment, self.inner_label)
        for outer in outers:
            for inner in inners:
                nested = ctx.schema.is_nested_within(inner, outer)
                if self.forbidden and nested:
                    return True
                if not self.forbidden and not nested:
                    return True
        return False

    # Both directions are definite on partial assignments: adding more
    # assignments never changes whether an existing (outer, inner) pair
    # nests in the schema tree.
    check_partial = _violated
    check_complete = _violated

    def evaluator(self, ctx: MatchContext) -> "_NestingEvaluator":
        return _NestingEvaluator(self)


class _NestingEvaluator(HardEvaluator):
    """Watched tag lists: a new outer/inner tag is checked only against
    the tags already holding the opposite label (O(delta) pairs), with
    the schema's nesting relation memoised per search."""

    __slots__ = ("outers", "inners", "_nested")

    def __init__(self, constraint: NestingConstraint) -> None:
        super().__init__(constraint)
        self.outers: list[str] = []
        self.inners: list[str] = []
        self._nested: dict[tuple[str, str], bool] = {}

    def _bad_pair(self, outer: str, inner: str, ctx: MatchContext) -> bool:
        key = (inner, outer)
        nested = self._nested.get(key)
        if nested is None:
            nested = ctx.schema.is_nested_within(inner, outer)
            self._nested[key] = nested
        return nested if self.constraint.forbidden else not nested

    def push(self, tag, label, assignment, ctx) -> bool:
        c = self.constraint
        violated = False
        if label == c.outer_label:
            violated = any(self._bad_pair(tag, inner, ctx)
                           for inner in self.inners)
            self.outers.append(tag)
        if label == c.inner_label:
            violated = violated or any(self._bad_pair(outer, tag, ctx)
                                       for outer in self.outers)
            if label == c.outer_label:
                # Degenerate outer == inner: the full scan also pairs
                # the tag with itself.
                violated = violated or self._bad_pair(tag, tag, ctx)
            self.inners.append(tag)
        return violated

    def pop(self, tag, label, assignment, ctx) -> None:
        c = self.constraint
        if label == c.outer_label:
            self.outers.pop()
        if label == c.inner_label:
            self.inners.pop()

    def complete_violation(self, assignment, ctx) -> bool:
        # Every pair was checked when its second member was pushed, and
        # nesting status never changes with further assignments.
        return False


class ContiguityConstraint(HardConstraint):
    """Two labels' tags must be siblings with only OTHER tags between.

    Table 1: "If a matches BATHS & b matches BEDS, then a & b are siblings
    in the schema-tree, and the elements between them (if any) can only
    match OTHER."
    """

    kind = "contiguity"

    def __init__(self, label_a: str, label_b: str) -> None:
        self.label_a = label_a
        self.label_b = label_b

    def describe(self) -> str:
        return (f"elements matching {self.label_a} and {self.label_b} are "
                f"siblings separated only by OTHER elements")

    def check_partial(self, assignment: dict[str, str],
                      ctx: MatchContext) -> bool:
        for tag_a in tags_with_label(assignment, self.label_a):
            for tag_b in tags_with_label(assignment, self.label_b):
                between = self._between(tag_a, tag_b, ctx)
                if between is None:
                    return True  # not siblings: definite violation
                for tag in between:
                    label = assignment.get(tag)
                    if label is not None and label != OTHER:
                        return True
        return False

    def check_complete(self, assignment: dict[str, str],
                       ctx: MatchContext) -> bool:
        return self.check_partial(assignment, ctx)

    def _between(self, tag_a: str, tag_b: str,
                 ctx: MatchContext) -> list[str] | None:
        """Tags strictly between the two siblings, or None if they are not
        siblings anywhere in the schema."""
        for parent in ctx.schema.dtd.tag_names():
            order = ctx.schema.sibling_order(parent)
            if tag_a in order and tag_b in order:
                i, j = order.index(tag_a), order.index(tag_b)
                if i > j:
                    i, j = j, i
                return order[i + 1:j]
        return None

    def evaluator(self, ctx: MatchContext) -> "_ContiguityEvaluator":
        return _ContiguityEvaluator(self)


class _ContiguityEvaluator(HardEvaluator):
    """Incremental contiguity: when an (a, b) pair forms, its between
    tags gain a "must stay OTHER" reference count, so every later
    assignment is checked in O(1) instead of re-deriving all pairs.
    Sibling geometry is memoised per search."""

    __slots__ = ("tags_a", "tags_b", "must_other", "_undo", "_between_memo")

    def __init__(self, constraint: ContiguityConstraint) -> None:
        super().__init__(constraint)
        self.tags_a: list[str] = []
        self.tags_b: list[str] = []
        self.must_other: dict[str, int] = {}
        self._undo: list[list[str]] = []
        self._between_memo: dict[tuple[str, str], list[str] | None] = {}

    def _between(self, tag_a: str, tag_b: str,
                 ctx: MatchContext) -> list[str] | None:
        key = (tag_a, tag_b) if tag_a <= tag_b else (tag_b, tag_a)
        if key not in self._between_memo:
            self._between_memo[key] = \
                self.constraint._between(tag_a, tag_b, ctx)
        return self._between_memo[key]

    def _pair(self, tag_a: str, tag_b: str, assignment, ctx,
              incremented: list[str]) -> bool:
        between = self._between(tag_a, tag_b, ctx)
        if between is None:
            return True  # not siblings: definite violation
        violated = False
        for t in between:
            lab = assignment.get(t)
            if lab is not None and lab != OTHER:
                violated = True
            self.must_other[t] = self.must_other.get(t, 0) + 1
            incremented.append(t)
        return violated

    def push(self, tag, label, assignment, ctx) -> bool:
        c = self.constraint
        violated = False
        incremented: list[str] = []
        if label != OTHER and self.must_other.get(tag, 0) > 0:
            violated = True
        if label == c.label_a:
            for other in self.tags_b:
                if self._pair(tag, other, assignment, ctx, incremented):
                    violated = True
        if label == c.label_b:
            for other in self.tags_a:
                if self._pair(other, tag, assignment, ctx, incremented):
                    violated = True
            if label == c.label_a and \
                    self._pair(tag, tag, assignment, ctx, incremented):
                violated = True  # degenerate label_a == label_b self-pair
        if label == c.label_a:
            self.tags_a.append(tag)
        if label == c.label_b:
            self.tags_b.append(tag)
        self._undo.append(incremented)
        return violated

    def pop(self, tag, label, assignment, ctx) -> None:
        c = self.constraint
        for t in self._undo.pop():
            self.must_other[t] -= 1
        if label == c.label_b:
            self.tags_b.pop()
        if label == c.label_a:
            self.tags_a.pop()

    def complete_violation(self, assignment, ctx) -> bool:
        # Pair geometry and between-tag labels were both checked
        # incrementally on every push; nothing new appears at the leaf.
        return False


class ExclusivityConstraint(HardConstraint):
    """Two labels cannot both be present in one source.

    Table 1: "There are no a and b such that a matches COURSE-CREDIT & b
    matches SECTION-CREDIT."
    """

    kind = "exclusivity"

    def __init__(self, label_a: str, label_b: str) -> None:
        self.label_a = label_a
        self.label_b = label_b

    def describe(self) -> str:
        return f"{self.label_a} and {self.label_b} cannot both be matched"

    def relevant_labels(self) -> set[str]:
        return {self.label_a, self.label_b}

    def _violated(self, assignment: dict[str, str],
                  ctx: MatchContext) -> bool:
        return bool(tags_with_label(assignment, self.label_a)
                    and tags_with_label(assignment, self.label_b))

    check_partial = _violated
    check_complete = _violated

    def evaluator(self, ctx: MatchContext) -> "_ExclusivityEvaluator":
        return _ExclusivityEvaluator(self)


class _ExclusivityEvaluator(HardEvaluator):
    """O(1) exclusivity: one counter per watched label."""

    __slots__ = ("count_a", "count_b")

    def __init__(self, constraint: ExclusivityConstraint) -> None:
        super().__init__(constraint)
        self.count_a = 0
        self.count_b = 0

    def push(self, tag, label, assignment, ctx) -> bool:
        c = self.constraint
        if label == c.label_a:
            self.count_a += 1
        if label == c.label_b:
            self.count_b += 1
        return self.count_a > 0 and self.count_b > 0

    def pop(self, tag, label, assignment, ctx) -> None:
        c = self.constraint
        if label == c.label_a:
            self.count_a -= 1
        if label == c.label_b:
            self.count_b -= 1

    def complete_violation(self, assignment, ctx) -> bool:
        return self.count_a > 0 and self.count_b > 0
