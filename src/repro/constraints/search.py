"""Generic A* search — the constraint handler's alternative strategy.

Selected via ``ConstraintHandler(search="astar")`` (the default strategy
is the incremental branch-and-bound; the benchmark compares both). The
handler's state space (one source tag assigned per level) is encoded by
the caller; this module only provides the best-first machinery with an
expansion budget, because the paper observes that constraint handling can
take minutes and we prefer a bounded anytime behaviour.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Iterable, TypeVar

State = TypeVar("State", bound=Hashable)


@dataclass
class SearchResult(Generic[State]):
    """Outcome of an A* run."""

    state: State | None
    cost: float
    expanded: int
    exhausted_budget: bool

    @property
    def found(self) -> bool:
        return self.state is not None


def astar(start: State,
          expand: Callable[[State], Iterable[tuple[State, float]]],
          is_goal: Callable[[State], bool],
          heuristic: Callable[[State], float],
          max_expansions: int = 200_000) -> SearchResult[State]:
    """Best-first search minimising ``g + h``.

    ``expand`` yields ``(successor, transition_cost)`` pairs. ``heuristic``
    must never overestimate the remaining cost for the returned goal to be
    optimal. When the expansion budget runs out the best goal seen so far
    (if any) is returned with ``exhausted_budget=True``.
    """
    counter = itertools.count()  # tie-breaker keeps heap comparisons total
    frontier: list[tuple[float, int, float, State]] = [
        (heuristic(start), next(counter), 0.0, start)]
    best_g: dict[State, float] = {start: 0.0}
    best_goal: State | None = None
    best_goal_cost = float("inf")
    expanded = 0

    while frontier:
        f, _, g, state = heapq.heappop(frontier)
        if f >= best_goal_cost:
            # Nothing left on the frontier can beat the goal we hold.
            return SearchResult(best_goal, best_goal_cost, expanded, False)
        if g > best_g.get(state, float("inf")):
            continue  # stale entry
        if is_goal(state):
            if g < best_goal_cost:
                best_goal, best_goal_cost = state, g
            continue
        if expanded >= max_expansions:
            return SearchResult(best_goal, best_goal_cost, expanded, True)
        expanded += 1
        for successor, step_cost in expand(state):
            new_g = g + step_cost
            if new_g >= best_g.get(successor, float("inf")):
                continue
            best_g[successor] = new_g
            heapq.heappush(frontier,
                           (new_g + heuristic(successor), next(counter),
                            new_g, successor))

    return SearchResult(best_goal, best_goal_cost, expanded, False)
