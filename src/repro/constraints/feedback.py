"""User-feedback constraints (§4.3).

"If the user is not happy with the current mappings, he or she can specify
constraints, then ask the constraint handler to output new mappings." The
two forms the paper uses are equality ("ad-id matches HOUSE-ID") and
inequality ("ad-id does not match HOUSE-ID"); both are ordinary hard
constraints scoped to the current source.
"""

from __future__ import annotations

from .base import HardConstraint, MatchContext


class AssignmentConstraint(HardConstraint):
    """Pins a source tag to a label (user says: tag matches label)."""

    kind = "feedback"

    def __init__(self, tag: str, label: str) -> None:
        self.tag = tag
        self.label = label

    def describe(self) -> str:
        return f"{self.tag} matches {self.label}"

    def check_partial(self, assignment: dict[str, str],
                      ctx: MatchContext) -> bool:
        assigned = assignment.get(self.tag)
        return assigned is not None and assigned != self.label

    def check_complete(self, assignment: dict[str, str],
                       ctx: MatchContext) -> bool:
        return assignment.get(self.tag) != self.label


class ExclusionConstraint(HardConstraint):
    """Forbids one tag-label pair (user says: tag does NOT match label)."""

    kind = "feedback"

    def __init__(self, tag: str, label: str) -> None:
        self.tag = tag
        self.label = label

    def describe(self) -> str:
        return f"{self.tag} does not match {self.label}"

    def _violated(self, assignment: dict[str, str],
                  ctx: MatchContext) -> bool:
        return assignment.get(self.tag) == self.label

    check_partial = _violated
    check_complete = _violated
