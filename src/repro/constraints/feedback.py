"""User-feedback constraints (§4.3).

"If the user is not happy with the current mappings, he or she can specify
constraints, then ask the constraint handler to output new mappings." The
two forms the paper uses are equality ("ad-id matches HOUSE-ID") and
inequality ("ad-id does not match HOUSE-ID"); both are ordinary hard
constraints scoped to the current source.
"""

from __future__ import annotations

from .base import HardConstraint, HardEvaluator, MatchContext


class AssignmentConstraint(HardConstraint):
    """Pins a source tag to a label (user says: tag matches label)."""

    kind = "feedback"

    def __init__(self, tag: str, label: str) -> None:
        self.tag = tag
        self.label = label

    def describe(self) -> str:
        return f"{self.tag} matches {self.label}"

    def check_partial(self, assignment: dict[str, str],
                      ctx: MatchContext) -> bool:
        assigned = assignment.get(self.tag)
        return assigned is not None and assigned != self.label

    def check_complete(self, assignment: dict[str, str],
                       ctx: MatchContext) -> bool:
        return assignment.get(self.tag) != self.label

    def evaluator(self, ctx: MatchContext) -> "_AssignmentEvaluator":
        return _AssignmentEvaluator(self)


class _AssignmentEvaluator(HardEvaluator):
    """O(1) pin tracking: remembers what the watched tag was given."""

    __slots__ = ("seen",)

    def __init__(self, constraint: AssignmentConstraint) -> None:
        super().__init__(constraint)
        self.seen: str | None = None

    def push(self, tag, label, assignment, ctx) -> bool:
        c = self.constraint
        if tag != c.tag:
            return False
        self.seen = label
        return label != c.label

    def pop(self, tag, label, assignment, ctx) -> None:
        if tag == self.constraint.tag:
            self.seen = None

    def complete_violation(self, assignment, ctx) -> bool:
        # A never-assigned pinned tag (absent from the source's score
        # rows) still violates the pin on a complete assignment.
        return self.seen != self.constraint.label


class ExclusionConstraint(HardConstraint):
    """Forbids one tag-label pair (user says: tag does NOT match label)."""

    kind = "feedback"

    def __init__(self, tag: str, label: str) -> None:
        self.tag = tag
        self.label = label

    def describe(self) -> str:
        return f"{self.tag} does not match {self.label}"

    def relevant_labels(self) -> set[str]:
        return {self.label}

    def _violated(self, assignment: dict[str, str],
                  ctx: MatchContext) -> bool:
        return assignment.get(self.tag) == self.label

    check_partial = _violated
    check_complete = _violated

    def evaluator(self, ctx: MatchContext) -> "_ExclusionEvaluator":
        return _ExclusionEvaluator(self)


class _ExclusionEvaluator(HardEvaluator):
    """O(1): violated exactly when the watched pair is pushed."""

    __slots__ = ()

    def push(self, tag, label, assignment, ctx) -> bool:
        c = self.constraint
        return tag == c.tag and label == c.label

    def complete_violation(self, assignment, ctx) -> bool:
        # Definite on partials: the watched pair never survives a push.
        return False
