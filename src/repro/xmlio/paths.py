"""A small path-query language over :class:`repro.xmlio.tree.Element`.

Supports the useful core of XPath for exploring listings:

* ``a/b/c``       — child steps
* ``//phone``     — descendants at any depth (also mid-path: ``a//b``)
* ``*``           — any child tag
* ``tag[2]``      — 1-based positional predicate
* ``tag[@id]``    — attribute-presence predicate
* ``tag[@id='7']``— attribute-equality predicate

:func:`select` returns matching elements in document order;
:func:`select_text` maps them to their text content;
:func:`select_one` returns the first match or ``None``.
"""

from __future__ import annotations

import re

from .errors import XMLError
from .tree import Element

_SEGMENT_RE = re.compile(
    r"^(?P<name>\*|[A-Za-z_][\w.-]*)"
    r"(?:\[(?P<predicate>[^\]]+)\])?$")


class PathSyntaxError(XMLError):
    """A path expression could not be parsed."""


def select(root: Element, path: str) -> list[Element]:
    """All elements matching ``path``, evaluated relative to ``root``.

    The path is relative: its first step matches *children* of ``root``
    (or any descendant, with a leading ``//``).
    """
    steps = _parse(path)
    current: list[Element] = [root]
    for descend, name, predicate in steps:
        gathered: list[Element] = []
        seen: set[int] = set()
        for node in current:
            candidates = (_descendants(node) if descend
                          else node.element_children)
            for candidate in candidates:
                if name != "*" and candidate.tag != name:
                    continue
                if id(candidate) not in seen:
                    seen.add(id(candidate))
                    gathered.append(candidate)
        current = _apply_predicate(gathered, predicate)
    return current


def select_one(root: Element, path: str) -> Element | None:
    """First match of ``path`` or ``None``."""
    matches = select(root, path)
    return matches[0] if matches else None


def select_text(root: Element, path: str) -> list[str]:
    """Character data of every match of ``path``.

    Unlike :meth:`Element.text_content` (which folds attribute values in,
    as LSD's learners want), this returns pure character data.
    """
    return [_character_data(element) for element in select(root, path)]


def _character_data(node: Element) -> str:
    parts = [node.immediate_text()]
    parts.extend(_character_data(child)
                 for child in node.element_children)
    return " ".join(" ".join(parts).split())


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------

def _parse(path: str) -> list[tuple[bool, str, str | None]]:
    """Parse into (descend?, name, predicate) steps."""
    if not path or path == "/":
        raise PathSyntaxError(f"empty path expression {path!r}")
    if path.startswith("/") and not path.startswith("//"):
        raise PathSyntaxError(
            "absolute paths are not supported; start with a tag or '//'")
    steps: list[tuple[bool, str, str | None]] = []
    descend = False
    remaining = path
    if remaining.startswith("//"):
        descend = True
        remaining = remaining[2:]
    while True:
        if "//" in remaining:
            segment, remaining = remaining.split("//", 1)
            next_descend = True
        elif "/" in remaining:
            segment, remaining = remaining.split("/", 1)
            next_descend = False
        else:
            segment, remaining = remaining, None
            next_descend = False
        match = _SEGMENT_RE.match(segment.strip())
        if match is None:
            raise PathSyntaxError(f"bad path segment {segment!r}")
        steps.append((descend, match.group("name"),
                      match.group("predicate")))
        if remaining is None:
            return steps
        if not remaining:
            raise PathSyntaxError(f"trailing slash in {path!r}")
        descend = next_descend


def _descendants(node: Element) -> list[Element]:
    out: list[Element] = []
    for child in node.element_children:
        out.append(child)
        out.extend(_descendants(child))
    return out


def _apply_predicate(elements: list[Element],
                     predicate: str | None) -> list[Element]:
    if predicate is None:
        return elements
    predicate = predicate.strip()
    if predicate.isdigit():
        index = int(predicate)
        if index < 1:
            raise PathSyntaxError("positional predicates are 1-based")
        return elements[index - 1:index]
    if predicate.startswith("@"):
        body = predicate[1:]
        if "=" in body:
            attr, value = body.split("=", 1)
            value = value.strip().strip("'\"")
            attr = attr.strip()
            return [e for e in elements
                    if e.attributes.get(attr) == value]
        return [e for e in elements if body.strip() in e.attributes]
    raise PathSyntaxError(f"unsupported predicate [{predicate}]")
