"""Recursive-descent XML parser built on :class:`repro.xmlio.lexer.Scanner`.

Supports the subset of XML 1.0 that schema-matching workloads need:

* the XML declaration (``<?xml version="1.0" ...?>``),
* a ``<!DOCTYPE name [...]>`` declaration whose internal subset is captured
  verbatim (so :mod:`repro.xmlio.dtd` can parse it),
* elements with attributes, self-closing tags, nested elements,
* character data with predefined and numeric entity references,
* CDATA sections, comments, and processing instructions.

The parser produces the :class:`repro.xmlio.tree.Document` /
:class:`repro.xmlio.tree.Element` model. Whitespace-only text between
elements is dropped by default (``keep_whitespace=True`` keeps it), which is
the behaviour LSD wants when reading data listings.
"""

from __future__ import annotations

from .errors import SourceLocation
from .lexer import Scanner, decode_entity, is_name_start
from .tree import Document, Element


def parse_document(text: str, keep_whitespace: bool = False) -> Document:
    """Parse a complete XML document and return a :class:`Document`."""
    parser = _Parser(text, keep_whitespace=keep_whitespace)
    return parser.parse_document()


def parse_element(text: str, keep_whitespace: bool = False) -> Element:
    """Parse a single XML element (fragment) and return it."""
    return parse_document(text, keep_whitespace=keep_whitespace).root


def parse_fragments(text: str, keep_whitespace: bool = False) -> list[Element]:
    """Parse a sequence of sibling top-level elements.

    Data listings are often stored as one file containing many
    ``<listing>...</listing>`` elements without a shared root; this helper
    accepts that form directly.
    """
    parser = _Parser(text, keep_whitespace=keep_whitespace)
    return parser.parse_fragments()


class _Parser:
    """Internal recursive-descent machinery; use the module functions."""

    def __init__(self, text: str, keep_whitespace: bool = False,
                 start_line: int = 1, start_column: int = 1) -> None:
        self.scanner = Scanner(text, start_line, start_column)
        self.keep_whitespace = keep_whitespace
        self.doctype_name: str | None = None
        self.internal_subset: str | None = None
        self.version: str | None = None
        self.encoding: str | None = None

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def parse_document(self) -> Document:
        self._parse_prolog()
        root = self._parse_element()
        self._skip_misc()
        if not self.scanner.at_end:
            raise self.scanner.error("content after the root element")
        return Document(root, self.doctype_name, self.version,
                        self.encoding, self.internal_subset)

    def parse_fragments(self) -> list[Element]:
        self._parse_prolog()
        roots: list[Element] = []
        while True:
            self._skip_misc()
            if self.scanner.at_end:
                break
            roots.append(self._parse_element())
        if not roots:
            raise self.scanner.error("no elements found")
        return roots

    # ------------------------------------------------------------------
    # prolog
    # ------------------------------------------------------------------
    def _parse_prolog(self) -> None:
        scanner = self.scanner
        scanner.skip_whitespace()
        if scanner.looking_at("<?xml"):
            self._parse_xml_declaration()
        while True:
            scanner.skip_whitespace()
            if scanner.looking_at("<!--"):
                self._skip_comment()
            elif scanner.looking_at("<?"):
                scanner.advance(2)
                scanner.read_until("?>")
            elif scanner.looking_at("<!DOCTYPE"):
                self._parse_doctype()
            else:
                break

    def _parse_xml_declaration(self) -> None:
        scanner = self.scanner
        scanner.expect("<?xml")
        body = scanner.read_until("?>")
        for key, value in _parse_pseudo_attributes(body):
            if key == "version":
                self.version = value
            elif key == "encoding":
                self.encoding = value

    def _parse_doctype(self) -> None:
        scanner = self.scanner
        scanner.expect("<!DOCTYPE")
        scanner.skip_whitespace()
        self.doctype_name = scanner.read_name()
        scanner.skip_whitespace()
        # Optional external identifier (SYSTEM/PUBLIC) — recorded but unused.
        if scanner.looking_at("SYSTEM"):
            scanner.advance(len("SYSTEM"))
            scanner.skip_whitespace()
            scanner.read_quoted()
            scanner.skip_whitespace()
        elif scanner.looking_at("PUBLIC"):
            scanner.advance(len("PUBLIC"))
            scanner.skip_whitespace()
            scanner.read_quoted()
            scanner.skip_whitespace()
            scanner.read_quoted()
            scanner.skip_whitespace()
        if scanner.peek() == "[":
            scanner.advance()
            start = scanner.pos
            depth = 1
            while depth > 0:
                if scanner.at_end:
                    raise scanner.error("unterminated DOCTYPE internal subset")
                ch = scanner.peek()
                if ch == "[":
                    depth += 1
                elif ch == "]":
                    depth -= 1
                    if depth == 0:
                        break
                scanner.advance()
            self.internal_subset = scanner.text[start:scanner.pos]
            scanner.expect("]")
            scanner.skip_whitespace()
        scanner.expect(">")

    # ------------------------------------------------------------------
    # elements
    # ------------------------------------------------------------------
    def _parse_element(self) -> Element:
        scanner = self.scanner
        location = SourceLocation(scanner.line, scanner.column)
        scanner.expect("<")
        tag = scanner.read_name()
        attributes = self._parse_attributes()
        if scanner.looking_at("/>"):
            scanner.advance(2)
            node = Element(tag, attributes)
            node.source_location = location
            return node
        scanner.expect(">")
        node = Element(tag, attributes)
        node.source_location = location
        self._parse_content(node)
        scanner.expect("</")
        end_tag = scanner.read_name()
        if end_tag != tag:
            raise scanner.error(
                f"mismatched end tag </{end_tag}> for <{tag}>")
        scanner.skip_whitespace()
        scanner.expect(">")
        return node

    def _parse_attributes(self) -> dict[str, str]:
        scanner = self.scanner
        attributes: dict[str, str] = {}
        while True:
            skipped = scanner.skip_whitespace()
            ch = scanner.peek()
            if ch in (">", "/") or scanner.at_end:
                return attributes
            if not skipped:
                raise scanner.error("expected whitespace before attribute")
            if not is_name_start(ch):
                raise scanner.error(f"unexpected character {ch!r} in tag")
            name = scanner.read_name()
            scanner.skip_whitespace()
            scanner.expect("=")
            scanner.skip_whitespace()
            raw = scanner.read_quoted()
            if name in attributes:
                raise scanner.error(f"duplicate attribute {name!r}")
            attributes[name] = _decode_text(raw, scanner)

    def _parse_content(self, node: Element) -> None:
        scanner = self.scanner
        buffer: list[str] = []

        def flush() -> None:
            if not buffer:
                return
            text = "".join(buffer)
            buffer.clear()
            if not self.keep_whitespace and not text.strip():
                return
            node.append_text(text)

        while True:
            if scanner.at_end:
                raise scanner.error(f"unterminated element <{node.tag}>")
            if scanner.looking_at("</"):
                flush()
                return
            if scanner.looking_at("<!--"):
                flush()
                self._skip_comment()
            elif scanner.looking_at("<![CDATA["):
                scanner.advance(len("<![CDATA["))
                buffer.append(scanner.read_until("]]>"))
            elif scanner.looking_at("<?"):
                flush()
                scanner.advance(2)
                scanner.read_until("?>")
            elif scanner.peek() == "<":
                flush()
                node.append(self._parse_element())
            elif scanner.peek() == "&":
                scanner.advance()
                name = scanner.read_until(";")
                buffer.append(decode_entity(name, scanner))
            else:
                buffer.append(scanner.advance())

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def _skip_comment(self) -> None:
        self.scanner.expect("<!--")
        body = self.scanner.read_until("-->")
        if "--" in body:
            raise self.scanner.error("'--' is not allowed inside a comment")

    def _skip_misc(self) -> None:
        scanner = self.scanner
        while True:
            scanner.skip_whitespace()
            if scanner.looking_at("<!--"):
                self._skip_comment()
            elif scanner.looking_at("<?"):
                scanner.advance(2)
                scanner.read_until("?>")
            else:
                return


def _decode_text(raw: str, scanner: Scanner) -> str:
    """Resolve entity references inside an attribute value."""
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "&":
            end = raw.find(";", i + 1)
            if end < 0:
                raise scanner.error("unterminated entity reference")
            out.append(decode_entity(raw[i + 1:end], scanner))
            i = end + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_pseudo_attributes(body: str) -> list[tuple[str, str]]:
    """Parse ``key="value"`` pairs inside an XML declaration body."""
    scanner = Scanner(body)
    pairs: list[tuple[str, str]] = []
    while True:
        scanner.skip_whitespace()
        if scanner.at_end:
            return pairs
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        pairs.append((name, scanner.read_quoted()))
