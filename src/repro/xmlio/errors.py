"""Error types raised by the :mod:`repro.xmlio` substrate.

Every error carries enough positional information (line and column where
available) to point a user at the offending byte of the document or DTD.
"""

from __future__ import annotations


class XMLError(Exception):
    """Base class for all errors raised by the XML substrate."""


class XMLSyntaxError(XMLError):
    """A document is not well-formed XML.

    Parameters
    ----------
    message:
        Human-readable description of what went wrong.
    line, column:
        1-based position of the offending character, when known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class DTDSyntaxError(XMLSyntaxError):
    """A DTD declaration could not be parsed."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class ValidationError(XMLError):
    """A well-formed document does not conform to its DTD.

    ``path`` holds the slash-separated element path at which the violation
    was detected, e.g. ``"house-listing/contact"``.
    """

    def __init__(self, message: str, path: str | None = None) -> None:
        self.path = path
        if path:
            message = f"{message} (at {path})"
        super().__init__(message)
