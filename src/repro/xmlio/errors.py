"""Error types raised by the :mod:`repro.xmlio` substrate.

Every error carries a :class:`SourceLocation` (1-based line and column)
pointing a user at the offending byte of the document or DTD. Paths
where the position is genuinely unknowable (e.g. validating an element
tree that was built programmatically rather than parsed) use
:data:`UNKNOWN_LOCATION` instead of dropping the fields, so consumers —
including the ingestion recovery log, which reuses the same location
type — can always read ``error.location.line`` / ``.column``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A 1-based (line, column) position inside a source text.

    ``line == 0`` (see :data:`UNKNOWN_LOCATION`) means the position is
    unknown; :meth:`known` distinguishes the two without sentinel checks
    at every call site.
    """

    line: int
    column: int

    @property
    def known(self) -> bool:
        return self.line > 0

    def __str__(self) -> str:
        if not self.known:
            return "unknown position"
        return f"line {self.line}, column {self.column}"


#: The placeholder for errors whose position cannot be determined.
UNKNOWN_LOCATION = SourceLocation(0, 0)


def _normalize(line: int | None, column: int | None) -> SourceLocation:
    """Fold legacy ``(line, column)`` pairs into a SourceLocation.

    Historical call sites passed ``None``/``-1`` for unknown parts; a
    known line with an unknown column clamps the column to 1 so the
    location stays usable rather than half-missing.
    """
    if line is None or line < 1:
        return UNKNOWN_LOCATION
    if column is None or column < 1:
        return SourceLocation(line, 1)
    return SourceLocation(line, column)


class XMLError(Exception):
    """Base class for all errors raised by the XML substrate."""


class XMLSyntaxError(XMLError):
    """A document is not well-formed XML.

    Parameters
    ----------
    message:
        Human-readable description of what went wrong.
    line, column:
        1-based position of the offending character. Both default to
        unknown, but every parser-internal raise supplies them.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.location = _normalize(line, column)
        self.line = self.location.line if self.location.known else line
        self.column = self.location.column if self.location.known \
            else column
        if self.location.known:
            message = f"{message} ({self.location})"
        super().__init__(message)


class DTDSyntaxError(XMLSyntaxError):
    """A DTD declaration could not be parsed."""


class ValidationError(XMLError):
    """A well-formed document does not conform to its DTD.

    ``path`` holds the slash-separated element path at which the violation
    was detected, e.g. ``"house-listing/contact"``; ``location`` the
    source position of that element when the tree came from the parser
    (programmatically built trees validate at :data:`UNKNOWN_LOCATION`).
    """

    def __init__(self, message: str, path: str | None = None,
                 location: SourceLocation | None = None) -> None:
        self.path = path
        self.location = location if location is not None \
            else UNKNOWN_LOCATION
        suffix = []
        if path:
            suffix.append(f"at {path}")
        if self.location.known:
            suffix.append(str(self.location))
        if suffix:
            message = f"{message} ({'; '.join(suffix)})"
        super().__init__(message)
