"""Validate a parsed XML document against a parsed DTD.

Content-model matching is implemented as a nondeterministic recursive
matcher: ``_match(model, names, start)`` returns the *set* of positions the
model can end at, so alternation and optional/repeat particles are handled
without exponential backtracking on typical (near-deterministic) DTD
content models.
"""

from __future__ import annotations

from .dtd import (Any, Choice, ContentModel, DTD, Empty, NameRef, PCData,
                  Sequence)
from .errors import ValidationError
from .tree import Document, Element, Text


def _loc(node: Element):
    """The node's parse-time location (None for built trees)."""
    return node.location()


def validate(document: Document | Element, dtd: DTD) -> None:
    """Raise :class:`ValidationError` if ``document`` violates ``dtd``.

    Checks performed:

    * every element tag is declared,
    * each element's child-element sequence matches its content model,
    * character data only appears where the content model allows it,
    * ``#REQUIRED`` attributes are present and enumerated attribute values
      are legal.
    """
    root = document.root if isinstance(document, Document) else document
    expected_root = dtd.root_name()
    if root.tag != expected_root:
        raise ValidationError(
            f"root element is <{root.tag}>, DTD expects <{expected_root}>",
            root.tag, location=_loc(root))
    _validate_element(root, dtd)


def is_valid(document: Document | Element, dtd: DTD) -> bool:
    """Boolean twin of :func:`validate`."""
    try:
        validate(document, dtd)
    except ValidationError:
        return False
    return True


def _validate_element(node: Element, dtd: DTD) -> None:
    if node.tag not in dtd:
        raise ValidationError(f"undeclared element <{node.tag}>",
                              node.path(), location=_loc(node))
    decl = dtd[node.tag]
    model = decl.model

    _validate_attributes(node, dtd)

    has_text = any(isinstance(c, Text) and c.value.strip()
                   for c in node.children)
    child_tags = [c.tag for c in node.element_children]

    if isinstance(model, Empty):
        if has_text or child_tags:
            raise ValidationError(
                f"element <{node.tag}> is declared EMPTY but has content",
                node.path(), location=_loc(node))
    elif isinstance(model, Any):
        pass
    elif _is_mixed(model) or isinstance(model, PCData):
        allowed = model.child_names()
        for tag in child_tags:
            if tag not in allowed:
                raise ValidationError(
                    f"element <{tag}> not allowed in mixed content of "
                    f"<{node.tag}>", node.path(), location=_loc(node))
    else:
        if has_text:
            raise ValidationError(
                f"character data not allowed inside <{node.tag}>",
                node.path(), location=_loc(node))
        ends = _match(model, child_tags, 0)
        if len(child_tags) not in ends:
            raise ValidationError(
                f"children of <{node.tag}> ({', '.join(child_tags) or 'none'}) "
                f"do not match content model {model!r}", node.path(),
                location=_loc(node))

    for child in node.element_children:
        _validate_element(child, dtd)


def _validate_attributes(node: Element, dtd: DTD) -> None:
    decl = dtd[node.tag]
    for attr_name, attr_decl in decl.attributes.items():
        value = node.attributes.get(attr_name)
        if value is None:
            if attr_decl.default == "#REQUIRED":
                raise ValidationError(
                    f"missing required attribute {attr_name!r} on "
                    f"<{node.tag}>", node.path(), location=_loc(node))
            continue
        if attr_decl.type.startswith("("):
            allowed = {v.strip() for v in
                       attr_decl.type.strip("()").split("|")}
            if value not in allowed:
                raise ValidationError(
                    f"attribute {attr_name!r} of <{node.tag}> has value "
                    f"{value!r}, expected one of {sorted(allowed)}",
                    node.path(), location=_loc(node))


def _is_mixed(model: ContentModel) -> bool:
    """True for mixed content: a Choice containing #PCDATA."""
    return isinstance(model, Choice) and any(
        isinstance(item, PCData) for item in model.items)


def _match(model: ContentModel, names: list[str], start: int) -> set[int]:
    """Positions where ``model`` can stop matching ``names`` from ``start``."""
    base = _match_once(model, names, start)
    ends = set(base)
    if model.is_optional():
        ends.add(start)
    if model.allows_repeat():
        frontier = set(base)
        while frontier:
            new: set[int] = set()
            for pos in frontier:
                for nxt in _match_once(model, names, pos):
                    if nxt not in ends and nxt != pos:
                        new.add(nxt)
            ends |= new
            frontier = new
    return ends


def _match_once(model: ContentModel, names: list[str],
                start: int) -> set[int]:
    """Match exactly one occurrence of ``model`` (ignoring its own flag)."""
    if isinstance(model, (PCData, Empty)):
        return {start}
    if isinstance(model, Any):
        return set(range(start, len(names) + 1))
    if isinstance(model, NameRef):
        if start < len(names) and names[start] == model.name:
            return {start + 1}
        return set()
    if isinstance(model, Choice):
        ends: set[int] = set()
        for item in model.items:
            ends |= _match(item, names, start)
        return ends
    if isinstance(model, Sequence):
        positions = {start}
        for item in model.items:
            next_positions: set[int] = set()
            for pos in positions:
                next_positions |= _match(item, names, pos)
            if not next_positions:
                return set()
            positions = next_positions
        return positions
    raise TypeError(f"unknown content model node {model!r}")
