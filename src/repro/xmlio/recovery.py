"""Error-recovering XML ingestion for malformed listing files.

The strict parser in :mod:`repro.xmlio.parser` raises on the first
well-formedness violation, which is the right contract for schema files
but too brittle for real-world listing extracts (Section 4 of the paper
runs LSD over sources wrapped by imperfect extractors). This module adds
two lenient ingestion modes on top of it:

* ``lenient`` — repair malformed listings in place: auto-close
  unbalanced tags, keep undeclared entity references as literal text,
  treat stray markup as character data. Every repair is recorded in a
  structured :class:`RecoveryLog` instead of raising.
* ``salvage`` — keep only the well-formed sibling listings and drop the
  malformed ones, recording what was dropped and why.

Both modes work on *chunks*: :func:`split_fragments` cuts the input into
top-level element fragments with a tolerant depth tracker, so one corrupt
listing cannot take down its well-formed siblings. ``strict`` mode
bypasses the chunker entirely and is byte-identical to
:func:`repro.xmlio.parser.parse_fragments`.

Recovery log entries reuse :class:`repro.xmlio.errors.SourceLocation`,
the same location type every parser/validator error carries, and all
positions are file-absolute (chunk parses are seeded with the chunk's
start line/column).
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SourceLocation, UNKNOWN_LOCATION, XMLSyntaxError
from .lexer import Scanner, decode_entity, is_name_char, is_name_start
from .parser import _Parser, parse_fragments
from .tree import Element

#: The ingestion modes accepted by :func:`read_fragments` and the CLI.
INGEST_MODES = ("strict", "lenient", "salvage")

#: Longest entity-reference body the recovering parser will look for
#: before deciding a ``&`` is literal character data.
_MAX_ENTITY = 32


# ---------------------------------------------------------------------------
# recovery log
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RecoveryEvent:
    """One repair or salvage decision made during lenient ingestion."""

    kind: str
    message: str
    location: SourceLocation
    #: Index of the top-level fragment the event belongs to, or ``None``
    #: for document-level events.
    listing: int | None = None

    def as_dict(self) -> dict:
        entry = {
            "kind": self.kind,
            "message": self.message,
            "line": self.location.line,
            "column": self.location.column,
        }
        if self.listing is not None:
            entry["listing"] = self.listing
        return entry


class RecoveryLog:
    """Structured account of everything lenient ingestion had to fix.

    ``clean`` / ``recovered`` / ``dropped`` hold top-level listing
    indices; ``events`` holds every individual repair in input order.
    An empty log (``log.ok``) means the input was well-formed and the
    lenient result is identical to a strict parse.
    """

    def __init__(self) -> None:
        self.events: list[RecoveryEvent] = []
        self.clean: list[int] = []
        self.recovered: list[int] = []
        self.dropped: list[int] = []

    @property
    def ok(self) -> bool:
        return not self.events

    def record(self, kind: str, message: str,
               location: SourceLocation = UNKNOWN_LOCATION,
               listing: int | None = None) -> RecoveryEvent:
        event = RecoveryEvent(kind, message, location, listing)
        self.events.append(event)
        return event

    def counts(self) -> dict[str, int]:
        """Event tally per kind, sorted by kind for stable output."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return dict(sorted(out.items()))

    def as_dict(self) -> dict:
        return {
            "listings": {
                "clean": len(self.clean),
                "recovered": sorted(self.recovered),
                "dropped": sorted(self.dropped),
            },
            "counts": self.counts(),
            "events": [event.as_dict() for event in self.events],
        }


# ---------------------------------------------------------------------------
# tolerant top-level chunker
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Fragment:
    """A top-level slice of the input: one element, or stray content."""

    text: str
    line: int
    column: int
    kind: str = "element"  # "element" | "stray"


def split_fragments(text: str) -> list[Fragment]:
    """Cut ``text`` into top-level fragments without parsing them.

    The splitter tracks element depth with a quote/comment/CDATA-aware
    sweep, so it survives content the strict parser would reject; its
    job is only to isolate sibling listings from each other. A fragment
    that never closes swallows the rest of the input (the recovering
    parser then auto-closes it).
    """
    scanner = Scanner(text)
    fragments: list[Fragment] = []
    while not scanner.at_end:
        scanner.skip_whitespace()
        if scanner.at_end:
            break
        line, column = scanner.line, scanner.column
        start = scanner.pos
        if scanner.looking_at("<!--"):
            _consume_until(scanner, "-->")
        elif scanner.looking_at("<?"):
            _consume_until(scanner, "?>")
        elif scanner.looking_at("<!"):
            _consume_markup_decl(scanner)
        elif scanner.peek() == "<" and is_name_start(scanner.peek(1)):
            _consume_element(scanner)
            fragments.append(
                Fragment(text[start:scanner.pos], line, column))
        else:
            _consume_stray(scanner)
            chunk = text[start:scanner.pos]
            if chunk.strip():
                fragments.append(Fragment(chunk, line, column, "stray"))
    return fragments


def _consume_until(scanner: Scanner, terminator: str) -> None:
    """Advance past ``terminator``, or to EOF if it never appears."""
    index = scanner.text.find(terminator, scanner.pos)
    if index < 0:
        scanner.advance(len(scanner.text) - scanner.pos)
    else:
        scanner.advance(index - scanner.pos + len(terminator))


def _consume_markup_decl(scanner: Scanner) -> None:
    """Skip a ``<!...>`` declaration, honouring quotes and ``[...]``."""
    scanner.advance(2)
    depth = 0
    while not scanner.at_end:
        ch = scanner.peek()
        if ch in ("'", '"'):
            scanner.advance()
            _consume_until(scanner, ch)
            continue
        scanner.advance()
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ">" and depth <= 0:
            return


def _consume_element(scanner: Scanner) -> None:
    """Advance past one top-level element, balancing tags tolerantly.

    Open tags are tracked *by name* so a mismatched end tag inside a
    malformed listing (e.g. ``<listing><price>100</listing>``) still
    ends the fragment at ``</listing>`` instead of swallowing the
    well-formed siblings that follow. End tags matching nothing on the
    stack are ignored.
    """
    stack: list[str] = []
    while not scanner.at_end:
        if scanner.looking_at("<!--"):
            scanner.advance(4)
            _consume_until(scanner, "-->")
        elif scanner.looking_at("<![CDATA["):
            scanner.advance(9)
            _consume_until(scanner, "]]>")
        elif scanner.looking_at("<?"):
            scanner.advance(2)
            _consume_until(scanner, "?>")
        elif scanner.looking_at("</"):
            scanner.advance(2)
            start = scanner.pos
            while not scanner.at_end and is_name_char(scanner.peek()):
                scanner.advance()
            name = scanner.text[start:scanner.pos]
            _consume_until(scanner, ">")
            if name in stack:
                while stack and stack.pop() != name:
                    pass
            if not stack:
                return
        elif scanner.peek() == "<" and is_name_start(scanner.peek(1)):
            name, self_closing = _consume_start_tag(scanner)
            if not self_closing:
                stack.append(name)
            elif not stack:
                return
        else:
            scanner.advance()


def _consume_start_tag(scanner: Scanner) -> tuple[str, bool]:
    """Advance past a start tag; return ``(name, self_closing)``."""
    scanner.advance()  # "<"
    start = scanner.pos
    while not scanner.at_end and is_name_char(scanner.peek()):
        scanner.advance()
    name = scanner.text[start:scanner.pos]
    while not scanner.at_end:
        ch = scanner.peek()
        if ch in ("'", '"'):
            scanner.advance()
            _consume_until(scanner, ch)
        elif ch == ">":
            self_closing = scanner.text[scanner.pos - 1] == "/"
            scanner.advance()
            return name, self_closing
        elif ch == "<":
            # Start tag never closed — let the tag tracker resume at
            # the stray "<" and treat the element as open.
            return name, False
        else:
            scanner.advance()
    return name, False


def _consume_stray(scanner: Scanner) -> None:
    """Advance past top-level content that cannot begin a fragment."""
    while not scanner.at_end:
        if scanner.peek() == "<" and (
                is_name_start(scanner.peek(1))
                or scanner.looking_at("<!")
                or scanner.looking_at("<?")):
            return
        scanner.advance()


# ---------------------------------------------------------------------------
# recovering parser
# ---------------------------------------------------------------------------
class RecoveringParser:
    """Recursive-descent parser that records repairs instead of raising.

    The grammar mirrors :class:`repro.xmlio.parser._Parser`; every point
    where the strict parser would raise instead applies the least
    surprising repair and appends a :class:`RecoveryEvent` to ``log``.
    ``parse_fragments`` therefore always returns (possibly empty) trees.
    """

    def __init__(self, text: str, keep_whitespace: bool = False,
                 log: RecoveryLog | None = None,
                 listing: int | None = None,
                 start_line: int = 1, start_column: int = 1) -> None:
        self.scanner = Scanner(text, start_line, start_column)
        self.keep_whitespace = keep_whitespace
        self.log = log if log is not None else RecoveryLog()
        self.listing = listing

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def parse_fragments(self) -> list[Element]:
        scanner = self.scanner
        roots: list[Element] = []
        self._skip_prolog()
        while True:
            self._skip_misc()
            if scanner.at_end:
                return roots
            if scanner.peek() == "<" and is_name_start(scanner.peek(1)):
                roots.append(self._parse_element())
            else:
                location = self._here()
                start = scanner.pos
                _consume_stray(scanner)
                junk = scanner.text[start:scanner.pos]
                if junk.strip():
                    self._record_at(
                        "stray-markup",
                        f"content {_clip(junk)!r} outside any element "
                        "skipped", location)

    # ------------------------------------------------------------------
    # prolog / misc
    # ------------------------------------------------------------------
    def _skip_prolog(self) -> None:
        scanner = self.scanner
        scanner.skip_whitespace()
        if scanner.looking_at("<?xml"):
            scanner.advance(5)
            self._until("?>", "XML declaration")
        while True:
            scanner.skip_whitespace()
            if scanner.looking_at("<!--"):
                self._comment()
            elif scanner.looking_at("<?"):
                scanner.advance(2)
                self._until("?>", "processing instruction")
            elif scanner.looking_at("<!DOCTYPE"):
                _consume_markup_decl(scanner)
            else:
                return

    def _skip_misc(self) -> None:
        scanner = self.scanner
        while True:
            scanner.skip_whitespace()
            if scanner.looking_at("<!--"):
                self._comment()
            elif scanner.looking_at("<?"):
                scanner.advance(2)
                self._until("?>", "processing instruction")
            elif scanner.looking_at("<!"):
                location = self._here()
                _consume_markup_decl(scanner)
                self._record_at(
                    "stray-markup",
                    "markup declaration between listings skipped",
                    location)
            else:
                return

    # ------------------------------------------------------------------
    # elements
    # ------------------------------------------------------------------
    def _parse_element(self) -> Element:
        scanner = self.scanner
        root, self_closing = self._parse_start_tag()
        if self_closing:
            return root
        stack: list[Element] = [root]
        buffer: list[str] = []

        def flush() -> None:
            if not buffer:
                return
            text = "".join(buffer)
            buffer.clear()
            if not self.keep_whitespace and not text.strip():
                return
            stack[-1].append_text(text)

        while stack:
            if scanner.at_end:
                flush()
                for node in reversed(stack):
                    self._record(
                        "auto-closed",
                        f"auto-closed <{node.tag}> still open at end "
                        "of input")
                break
            if scanner.looking_at("</"):
                self._parse_end_tag(stack, flush)
            elif scanner.looking_at("<!--"):
                flush()
                self._comment()
            elif scanner.looking_at("<![CDATA["):
                scanner.advance(9)
                buffer.append(self._until("]]>", "CDATA section"))
            elif scanner.looking_at("<?"):
                flush()
                scanner.advance(2)
                self._until("?>", "processing instruction")
            elif scanner.peek() == "<" and is_name_start(scanner.peek(1)):
                flush()
                child, self_closing = self._parse_start_tag()
                stack[-1].append(child)
                if not self_closing:
                    stack.append(child)
            elif scanner.peek() == "<":
                self._record("stray-markup",
                             "stray '<' treated as character data")
                buffer.append(scanner.advance())
            elif scanner.peek() == "&":
                buffer.append(self._entity())
            else:
                buffer.append(scanner.advance())
        return root

    def _parse_end_tag(self, stack: list[Element], flush) -> None:
        scanner = self.scanner
        location = self._here()
        scanner.advance(2)
        if scanner.at_end or not is_name_start(scanner.peek()):
            self._record_at("stray-markup",
                            "malformed end tag treated as character data",
                            location)
            # Re-emit the consumed "</" as text via the caller's buffer:
            # simplest is to append directly to the innermost element.
            flush()
            stack[-1].append_text("</")
            return
        name = scanner.read_name()
        scanner.skip_whitespace()
        if scanner.peek() == ">":
            scanner.advance()
        else:
            junk_location = self._here()
            self._until(">", f"end tag </{name}>")
            self._record_at("stray-markup",
                            f"junk inside end tag </{name}> skipped",
                            junk_location)
        open_tags = [node.tag for node in stack]
        if name == open_tags[-1]:
            flush()
            stack.pop()
        elif name in open_tags:
            flush()
            while stack[-1].tag != name:
                node = stack.pop()
                self._record_at(
                    "auto-closed",
                    f"auto-closed <{node.tag}> at mismatched end tag "
                    f"</{name}>", location)
            stack.pop()
        else:
            self._record_at(
                "stray-end-tag",
                f"ignored end tag </{name}> that matches no open "
                "element", location)

    def _parse_start_tag(self) -> tuple[Element, bool]:
        scanner = self.scanner
        location = self._here()
        scanner.advance()  # "<" — guaranteed by the caller's lookahead
        tag = scanner.read_name()
        attributes: dict[str, str] = {}
        while True:
            skipped = scanner.skip_whitespace()
            if scanner.at_end:
                self._record_at(
                    "unterminated",
                    f"start tag <{tag}> not closed before end of input",
                    location)
                break
            ch = scanner.peek()
            if scanner.looking_at("/>"):
                scanner.advance(2)
                node = Element(tag, attributes)
                node.source_location = location
                return node, True
            if ch == ">":
                scanner.advance()
                break
            if ch == "<":
                self._record_at(
                    "unterminated",
                    f"start tag <{tag}> not closed before the next tag",
                    location)
                break
            if not is_name_start(ch):
                self._record(
                    "malformed-attribute",
                    f"unexpected character {ch!r} in <{tag}> start tag "
                    "skipped")
                scanner.advance()
                continue
            if not skipped:
                self._record(
                    "malformed-attribute",
                    f"missing whitespace before attribute in <{tag}>")
            name = scanner.read_name()
            scanner.skip_whitespace()
            if scanner.peek() == "=":
                scanner.advance()
                scanner.skip_whitespace()
                value = self._attribute_value(tag, name)
            else:
                self._record(
                    "malformed-attribute",
                    f"attribute {name!r} in <{tag}> has no value; "
                    "treated as empty")
                value = ""
            if name in attributes:
                self._record(
                    "malformed-attribute",
                    f"duplicate attribute {name!r} in <{tag}> ignored")
            else:
                attributes[name] = value
        node = Element(tag, attributes)
        node.source_location = location
        return node, False

    def _attribute_value(self, tag: str, name: str) -> str:
        scanner = self.scanner
        quote = scanner.peek()
        if quote in ("'", '"'):
            scanner.advance()
            raw = self._until(quote, f"value of attribute {name!r}")
            return self._decode_raw(raw)
        self._record("malformed-attribute",
                     f"unquoted value for attribute {name!r} in <{tag}>")
        start = scanner.pos
        while not scanner.at_end:
            ch = scanner.peek()
            if ch.isspace() or ch in (">", "<") or scanner.looking_at("/>"):
                break
            scanner.advance()
        return self._decode_raw(scanner.text[start:scanner.pos])

    # ------------------------------------------------------------------
    # character data
    # ------------------------------------------------------------------
    def _entity(self) -> str:
        scanner = self.scanner
        location = self._here()
        scanner.advance()  # "&"
        end = scanner.text.find(";", scanner.pos,
                                scanner.pos + _MAX_ENTITY)
        body = scanner.text[scanner.pos:end] if end >= 0 else ""
        if end < 0 or not body or not _entity_body_ok(body):
            self._record_at(
                "skipped-entity",
                "malformed entity reference treated as literal '&'",
                location)
            return "&"
        scanner.advance(end - scanner.pos + 1)
        try:
            return decode_entity(body)
        except XMLSyntaxError:
            self._record_at(
                "skipped-entity",
                f"undeclared entity &{body}; kept as literal text",
                location)
            return f"&{body};"

    def _decode_raw(self, raw: str) -> str:
        """Tolerantly resolve entity references in an attribute value."""
        if "&" not in raw:
            return raw
        out: list[str] = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch != "&":
                out.append(ch)
                i += 1
                continue
            end = raw.find(";", i + 1, i + 1 + _MAX_ENTITY)
            body = raw[i + 1:end] if end > 0 else ""
            if end < 0 or not body or not _entity_body_ok(body):
                self._record(
                    "skipped-entity",
                    "malformed entity reference in attribute value kept "
                    "literally")
                out.append("&")
                i += 1
                continue
            try:
                out.append(decode_entity(body))
            except XMLSyntaxError:
                self._record(
                    "skipped-entity",
                    f"undeclared entity &{body}; in attribute value kept "
                    "literally")
                out.append(f"&{body};")
            i = end + 1
        return "".join(out)

    # ------------------------------------------------------------------
    # shared tolerant consumers
    # ------------------------------------------------------------------
    def _comment(self) -> None:
        location = self._here()
        self.scanner.advance(4)
        body = self._until("-->", "comment")
        if "--" in body:
            self._record_at("malformed-comment",
                            "'--' inside a comment kept", location)

    def _until(self, terminator: str, what: str) -> str:
        scanner = self.scanner
        index = scanner.text.find(terminator, scanner.pos)
        if index < 0:
            location = self._here()
            body = scanner.advance(len(scanner.text) - scanner.pos)
            self._record_at(
                "unterminated",
                f"unterminated {what} consumed to end of input",
                location)
            return body
        chunk = scanner.text[scanner.pos:index]
        scanner.advance(len(chunk) + len(terminator))
        return chunk

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _here(self) -> SourceLocation:
        return SourceLocation(self.scanner.line, self.scanner.column)

    def _record(self, kind: str, message: str) -> None:
        self._record_at(kind, message, self._here())

    def _record_at(self, kind: str, message: str,
                   location: SourceLocation) -> None:
        self.log.record(kind, message, location, self.listing)


def _entity_body_ok(body: str) -> bool:
    """True if ``body`` could plausibly be an entity-reference body."""
    return not any(ch in "<&\"'" or ch.isspace() for ch in body)


def _clip(text: str, limit: int = 30) -> str:
    text = " ".join(text.split())
    if len(text) <= limit:
        return text
    return text[:limit] + "..."


# ---------------------------------------------------------------------------
# mode-aware ingestion
# ---------------------------------------------------------------------------
def parse_chunk(fragment: Fragment, mode: str, log: RecoveryLog,
                listing: int, keep_whitespace: bool = False) -> list[Element]:
    """Parse one top-level chunk under ``lenient`` or ``salvage`` mode.

    Well-formed chunks take the strict parser path (so a clean input
    produces byte-identical trees in every mode); malformed chunks are
    repaired (lenient) or dropped (salvage), with the decision recorded.
    """
    location = SourceLocation(fragment.line, fragment.column)
    if fragment.kind != "element":
        log.record("stray-markup",
                   f"content {_clip(fragment.text)!r} between listings "
                   "skipped", location, listing)
        return []
    try:
        roots = _Parser(fragment.text, keep_whitespace,
                        fragment.line, fragment.column).parse_fragments()
    except XMLSyntaxError as exc:
        message = str(exc).split(" (line ")[0] if exc.args else str(exc)
        log.record("malformed-listing",
                   f"listing is not well-formed: {message}",
                   exc.location, listing)
        if mode == "salvage":
            log.dropped.append(listing)
            log.record("dropped-listing",
                       "malformed listing dropped (salvage mode)",
                       location, listing)
            return []
        before = len(log.events)
        parser = RecoveringParser(fragment.text, keep_whitespace, log,
                                  listing, fragment.line, fragment.column)
        roots = parser.parse_fragments()
        repairs = len(log.events) - before
        if roots:
            log.recovered.append(listing)
            log.record("recovered-listing",
                       f"listing repaired with {repairs} recovery "
                       "action(s)", location, listing)
        else:
            log.dropped.append(listing)
            log.record("dropped-listing",
                       "listing could not be repaired", location, listing)
        return roots
    log.clean.append(listing)
    return roots


def read_fragments(text: str, mode: str = "strict",
                   keep_whitespace: bool = False) \
        -> tuple[list[Element], RecoveryLog]:
    """Parse sibling top-level elements under an ingestion mode.

    ``strict`` delegates to :func:`repro.xmlio.parser.parse_fragments`
    unchanged (and therefore raises on malformed input); ``lenient`` and
    ``salvage`` never raise — they return whatever could be read plus a
    :class:`RecoveryLog` describing the repairs or drops.
    """
    if mode not in INGEST_MODES:
        raise ValueError(
            f"unknown ingestion mode {mode!r}; expected one of "
            f"{', '.join(INGEST_MODES)}")
    if mode == "strict":
        return parse_fragments(text, keep_whitespace=keep_whitespace), \
            RecoveryLog()
    log = RecoveryLog()
    roots: list[Element] = []
    for index, fragment in enumerate(split_fragments(text)):
        roots.extend(parse_chunk(fragment, mode, log, index,
                                 keep_whitespace=keep_whitespace))
    if not roots:
        log.record("no-elements",
                   "no listings could be parsed from the input",
                   SourceLocation(1, 1))
    return roots, log
