"""From-scratch XML + DTD substrate used by the LSD reproduction.

Public surface:

* :func:`parse_document` / :func:`parse_element` / :func:`parse_fragments`
  — XML parsing into the :class:`Element` tree model.
* :func:`parse_dtd` and the :class:`DTD` schema model with structural
  queries (roots, leaves, nesting, depth).
* :func:`validate` / :func:`is_valid` — DTD validation.
* :func:`write_element` / :func:`write_document` / :func:`write_dtd` —
  serialization.
* :func:`read_fragments` / :class:`RecoveryLog` — error-recovering
  ingestion (``strict`` / ``lenient`` / ``salvage`` modes).
"""

from .dtd import (Any, AttributeDecl, Choice, ContentModel, DTD,
                  ElementDecl, Empty, NameRef, PCData, Sequence, parse_dtd)
from .errors import (DTDSyntaxError, SourceLocation, UNKNOWN_LOCATION,
                     ValidationError, XMLError, XMLSyntaxError)
from .parser import parse_document, parse_element, parse_fragments
from .recovery import (Fragment, INGEST_MODES, RecoveringParser,
                       RecoveryEvent, RecoveryLog, read_fragments,
                       split_fragments)
from .paths import PathSyntaxError, select, select_one, select_text
from .tree import Document, Element, Text, element, from_pairs
from .validator import is_valid, validate
from .writer import (escape_attribute, escape_text, write_content_model,
                     write_document, write_dtd, write_element)

__all__ = [
    "Any", "AttributeDecl", "Choice", "ContentModel", "DTD", "Document",
    "DTDSyntaxError", "Element", "ElementDecl", "Empty", "Fragment",
    "INGEST_MODES", "NameRef", "PCData", "PathSyntaxError",
    "RecoveringParser", "RecoveryEvent", "RecoveryLog", "Sequence",
    "SourceLocation", "Text", "UNKNOWN_LOCATION", "ValidationError",
    "XMLError", "XMLSyntaxError", "element", "escape_attribute",
    "escape_text", "from_pairs", "is_valid", "parse_document",
    "parse_dtd", "parse_element", "parse_fragments", "read_fragments",
    "select", "select_one", "select_text", "split_fragments",
    "validate", "write_content_model", "write_document", "write_dtd",
    "write_element",
]
