"""Character-level scanner shared by the XML and DTD parsers.

The scanner is a thin cursor over a string with line/column tracking and
the small set of lookahead/consume primitives a recursive-descent parser
needs. Both :mod:`repro.xmlio.parser` and :mod:`repro.xmlio.dtd` build on
it so position reporting is consistent across the substrate.
"""

from __future__ import annotations

from .errors import XMLSyntaxError

#: Characters allowed to *start* an XML name (simplified to ASCII plus a
#: couple of common extras; sufficient for schema-matching workloads).
_NAME_START = set("abcdefghijklmnopqrstuvwxyz"
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
#: Characters allowed in the body of an XML name.
_NAME_BODY = _NAME_START | set("0123456789.-")

#: The five predefined XML entities.
PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}


def is_name_start(ch: str) -> bool:
    """True if ``ch`` may begin an XML name."""
    return ch in _NAME_START


def is_name_char(ch: str) -> bool:
    """True if ``ch`` may appear inside an XML name."""
    return ch in _NAME_BODY


class Scanner:
    """A cursor over ``text`` with line/column tracking.

    All parser-level consumption goes through :meth:`advance` so that the
    position bookkeeping can never drift from the cursor.
    """

    def __init__(self, text: str, line: int = 1, column: int = 1) -> None:
        """``line``/``column`` seed the position bookkeeping — parsers
        working on a slice of a larger document pass the slice's start
        so every reported location is file-absolute."""
        self.text = text
        self.pos = 0
        self.line = line
        self.column = column

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    @property
    def at_end(self) -> bool:
        """True once every character has been consumed."""
        return self.pos >= len(self.text)

    def peek(self, offset: int = 0) -> str:
        """The character ``offset`` ahead of the cursor, or ``""`` at EOF."""
        index = self.pos + offset
        if index >= len(self.text):
            return ""
        return self.text[index]

    def looking_at(self, prefix: str) -> bool:
        """True if the unconsumed input starts with ``prefix``."""
        return self.text.startswith(prefix, self.pos)

    def advance(self, count: int = 1) -> str:
        """Consume ``count`` characters and return them."""
        end = min(self.pos + count, len(self.text))
        chunk = self.text[self.pos:end]
        for ch in chunk:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos = end
        return chunk

    def error(self, message: str) -> XMLSyntaxError:
        """Build a syntax error pinned at the current position."""
        return XMLSyntaxError(message, self.line, self.column)

    # ------------------------------------------------------------------
    # compound consumers
    # ------------------------------------------------------------------
    def expect(self, literal: str) -> None:
        """Consume ``literal`` or raise."""
        if not self.looking_at(literal):
            found = self.peek() or "<end of input>"
            raise self.error(f"expected {literal!r}, found {found!r}")
        self.advance(len(literal))

    def skip_whitespace(self) -> int:
        """Consume any run of whitespace; return how many chars were eaten."""
        count = 0
        while not self.at_end and self.peek().isspace():
            self.advance()
            count += 1
        return count

    def read_name(self) -> str:
        """Consume and return an XML name."""
        if self.at_end or not is_name_start(self.peek()):
            found = self.peek() or "<end of input>"
            raise self.error(f"expected a name, found {found!r}")
        start = self.pos
        self.advance()
        while not self.at_end and is_name_char(self.peek()):
            self.advance()
        return self.text[start:self.pos]

    def read_until(self, terminator: str) -> str:
        """Consume up to (but not including) ``terminator``; consume it too.

        Returns the text before the terminator. Raises at EOF.
        """
        index = self.text.find(terminator, self.pos)
        if index < 0:
            raise self.error(f"unterminated construct, expected {terminator!r}")
        chunk = self.text[self.pos:index]
        self.advance(len(chunk) + len(terminator))
        return chunk

    def read_quoted(self) -> str:
        """Consume a single- or double-quoted literal; return its body."""
        quote = self.peek()
        if quote not in ("'", '"'):
            raise self.error("expected a quoted literal")
        self.advance()
        return self.read_until(quote)


def decode_entity(name: str, scanner: Scanner | None = None) -> str:
    """Resolve an entity reference body (the part between ``&`` and ``;``).

    Supports the five predefined entities plus decimal (``#65``) and hex
    (``#x41``) character references.
    """
    if name.startswith("#x") or name.startswith("#X"):
        try:
            return chr(int(name[2:], 16))
        except ValueError:
            pass
    elif name.startswith("#"):
        try:
            return chr(int(name[1:]))
        except ValueError:
            pass
    elif name in PREDEFINED_ENTITIES:
        return PREDEFINED_ENTITIES[name]
    if scanner is not None:
        raise scanner.error(f"unknown entity reference &{name};")
    # No scanner context: still report a (nominal) position so every
    # XMLSyntaxError carries a usable location.
    raise XMLSyntaxError(f"unknown entity reference &{name};", 1, 1)
