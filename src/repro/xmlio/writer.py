"""Serialize :mod:`repro.xmlio.tree` models and DTDs back to text.

Round-tripping is exercised heavily by the property-based tests: for any
tree built from legal names/text, ``parse(write(tree))`` must reproduce the
tree.
"""

from __future__ import annotations

from .dtd import (Any, AttributeDecl, Choice, ContentModel, DTD, Empty,
                  NameRef, PCData, Sequence)
from .tree import Document, Element, Text

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {**_TEXT_ESCAPES, '"': "&quot;"}


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    return "".join(_TEXT_ESCAPES.get(ch, ch) for ch in value)


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return "".join(_ATTR_ESCAPES.get(ch, ch) for ch in value)


def write_element(node: Element, indent: int | None = None,
                  _level: int = 0) -> str:
    """Serialize an element subtree.

    ``indent=None`` produces compact output that round-trips exactly.
    ``indent=n`` pretty-prints with ``n`` spaces per level; elements with
    only text content stay on one line.
    """
    attrs = "".join(
        f' {name}="{escape_attribute(value)}"'
        for name, value in node.attributes.items())
    if not node.children:
        return f"<{node.tag}{attrs}/>"

    if indent is None:
        body = "".join(
            escape_text(c.value) if isinstance(c, Text)
            else write_element(c)
            for c in node.children)
        return f"<{node.tag}{attrs}>{body}</{node.tag}>"

    pad = " " * (indent * _level)
    child_pad = " " * (indent * (_level + 1))
    if all(isinstance(c, Text) for c in node.children):
        body = "".join(escape_text(c.value) for c in node.children
                       if isinstance(c, Text))
        return f"{pad}<{node.tag}{attrs}>{body}</{node.tag}>"
    lines = [f"{pad}<{node.tag}{attrs}>"]
    for child in node.children:
        if isinstance(child, Text):
            if child.value.strip():
                lines.append(child_pad + escape_text(child.value.strip()))
        else:
            lines.append(write_element(child, indent, _level + 1))
    lines.append(f"{pad}</{node.tag}>")
    return "\n".join(lines)


def write_document(document: Document, indent: int | None = None) -> str:
    """Serialize a document, emitting an XML declaration."""
    version = document.version or "1.0"
    parts = [f'<?xml version="{version}"?>']
    if document.doctype_name:
        if document.internal_subset:
            subset = document.internal_subset.strip()
            parts.append(
                f"<!DOCTYPE {document.doctype_name} [\n{subset}\n]>")
        else:
            parts.append(f"<!DOCTYPE {document.doctype_name}>")
    parts.append(write_element(document.root, indent))
    return "\n".join(parts) + "\n"


def write_content_model(model: ContentModel) -> str:
    """Serialize a content-model AST back to DTD syntax."""
    if isinstance(model, Empty):
        return "EMPTY"
    if isinstance(model, Any):
        return "ANY"
    if isinstance(model, (Sequence, Choice)):
        return _render_particle(model)
    # A bare particle must still be parenthesised in a declaration.
    return f"({_render_particle(model)})"


def _render_particle(model: ContentModel) -> str:
    if isinstance(model, PCData):
        return "#PCDATA"
    if isinstance(model, NameRef):
        return f"{model.name}{model.occurrence}"
    if isinstance(model, Sequence):
        inner = ", ".join(_render_particle(i) for i in model.items)
        return f"({inner}){model.occurrence}"
    if isinstance(model, Choice):
        inner = " | ".join(_render_particle(i) for i in model.items)
        return f"({inner}){model.occurrence}"
    raise TypeError(f"unknown content model node {model!r}")


def write_dtd(dtd: DTD) -> str:
    """Serialize a DTD as a sequence of declarations."""
    lines: list[str] = []
    for decl in dtd.elements.values():
        lines.append(
            f"<!ELEMENT {decl.name} {write_content_model(decl.model)}>")
        if decl.attributes:
            attr_lines = [f"<!ATTLIST {decl.name}"]
            for attr in decl.attributes.values():
                attr_lines.append(
                    f"    {attr.name} {attr.type} {_render_default(attr)}")
            attr_lines[-1] += ">"
            lines.extend(attr_lines)
    return "\n".join(lines) + "\n"


def _render_default(attr: AttributeDecl) -> str:
    if attr.default.startswith("#"):
        return attr.default
    return f'"{attr.default}"'
