"""DTD (document type descriptor) parser and schema model.

LSD assumes every source and the mediated schema are described by DTDs
(Section 2.1 of the paper). This module parses the BNF-style grammar of
``<!ELEMENT>`` and ``<!ATTLIST>`` declarations into a small AST:

* :class:`PCData` — ``#PCDATA``
* :class:`NameRef` — a reference to a child element
* :class:`Sequence` — ``(a, b, c)``
* :class:`Choice` — ``(a | b | c)`` (also used for mixed content)

Every node carries an occurrence flag from ``{'', '?', '*', '+'}``. The
:class:`DTD` aggregate offers the structural queries the matching layers
need: the set of tags, leaf/non-leaf classification, parent/child edges,
root inference and tree depth — the same statistics the paper reports in
its Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .errors import DTDSyntaxError, XMLSyntaxError
from .lexer import Scanner

OCCURRENCES = ("", "?", "*", "+")


class ContentModel:
    """Base class for content-model AST nodes."""

    occurrence: str = ""

    def with_occurrence(self, occurrence: str) -> "ContentModel":
        """Return a copy of this node with the given occurrence flag."""
        if occurrence not in OCCURRENCES:
            raise ValueError(f"bad occurrence flag {occurrence!r}")
        clone = self._clone()
        clone.occurrence = occurrence
        return clone

    def _clone(self) -> "ContentModel":
        raise NotImplementedError

    def child_names(self) -> set[str]:
        """All element names referenced anywhere below this node."""
        return set()

    def is_optional(self) -> bool:
        """True if this node can match the empty sequence."""
        return self.occurrence in ("?", "*")

    def allows_repeat(self) -> bool:
        """True if this node may match more than once."""
        return self.occurrence in ("*", "+")


class Empty(ContentModel):
    """The ``EMPTY`` content model."""

    def _clone(self) -> "Empty":
        return Empty()

    def __repr__(self) -> str:
        return "EMPTY"


class Any(ContentModel):
    """The ``ANY`` content model."""

    def _clone(self) -> "Any":
        return Any()

    def __repr__(self) -> str:
        return "ANY"


class PCData(ContentModel):
    """``#PCDATA`` — character data."""

    def _clone(self) -> "PCData":
        return PCData()

    def __repr__(self) -> str:
        return "#PCDATA"


class NameRef(ContentModel):
    """A reference to a child element by name."""

    def __init__(self, name: str, occurrence: str = "") -> None:
        self.name = name
        self.occurrence = occurrence

    def _clone(self) -> "NameRef":
        return NameRef(self.name, self.occurrence)

    def child_names(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"{self.name}{self.occurrence}"


class Sequence(ContentModel):
    """An ordered group ``(a, b, c)``."""

    def __init__(self, items: list[ContentModel],
                 occurrence: str = "") -> None:
        self.items = items
        self.occurrence = occurrence

    def _clone(self) -> "Sequence":
        return Sequence(list(self.items), self.occurrence)

    def child_names(self) -> set[str]:
        names: set[str] = set()
        for item in self.items:
            names |= item.child_names()
        return names

    def __repr__(self) -> str:
        inner = ", ".join(repr(i) for i in self.items)
        return f"({inner}){self.occurrence}"


class Choice(ContentModel):
    """An alternation group ``(a | b | c)``; mixed content uses this too."""

    def __init__(self, items: list[ContentModel],
                 occurrence: str = "") -> None:
        self.items = items
        self.occurrence = occurrence

    def _clone(self) -> "Choice":
        return Choice(list(self.items), self.occurrence)

    def child_names(self) -> set[str]:
        names: set[str] = set()
        for item in self.items:
            names |= item.child_names()
        return names

    def __repr__(self) -> str:
        inner = " | ".join(repr(i) for i in self.items)
        return f"({inner}){self.occurrence}"


@dataclass
class AttributeDecl:
    """One attribute in an ``<!ATTLIST>`` declaration."""

    name: str
    type: str
    default: str  # '#REQUIRED', '#IMPLIED', '#FIXED "v"', or a literal


@dataclass
class ElementDecl:
    """An ``<!ELEMENT name model>`` declaration."""

    name: str
    model: ContentModel
    attributes: dict[str, AttributeDecl] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        """True if the element can contain no child elements."""
        return not self.model.child_names()

    def child_names(self) -> set[str]:
        """Names of elements that may appear directly inside this one."""
        return self.model.child_names()


class DTD:
    """A parsed DTD: the element declarations plus structural queries."""

    def __init__(self, elements: dict[str, ElementDecl] | None = None,
                 name: str | None = None) -> None:
        self.name = name
        self.elements: dict[str, ElementDecl] = dict(elements or {})

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def declare(self, declaration: ElementDecl) -> None:
        """Add (or replace) an element declaration.

        Attributes collected from an earlier ``<!ATTLIST>`` for the same
        element are preserved when the ``<!ELEMENT>`` arrives afterwards.
        """
        existing = self.elements.get(declaration.name)
        if existing is not None and existing.attributes \
                and not declaration.attributes:
            declaration.attributes = existing.attributes
        self.elements[declaration.name] = declaration

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self.elements

    def __getitem__(self, name: str) -> ElementDecl:
        return self.elements[name]

    def tag_names(self) -> list[str]:
        """All declared element names, in declaration order."""
        return list(self.elements)

    def leaf_names(self) -> list[str]:
        """Names of elements with no element children."""
        return [n for n, d in self.elements.items() if d.is_leaf]

    def non_leaf_names(self) -> list[str]:
        """Names of elements that may contain child elements."""
        return [n for n, d in self.elements.items() if not d.is_leaf]

    def children_of(self, name: str) -> set[str]:
        """Element names that may appear directly inside ``name``."""
        decl = self.elements.get(name)
        if decl is None:
            return set()
        return decl.child_names()

    def parents_of(self, name: str) -> set[str]:
        """Element names that may directly contain ``name``."""
        return {parent for parent, decl in self.elements.items()
                if name in decl.child_names()}

    def edges(self) -> Iterator[tuple[str, str]]:
        """All (parent, child) containment edges in the DTD graph."""
        for parent, decl in self.elements.items():
            for child in sorted(decl.child_names()):
                yield parent, child

    def root_name(self) -> str:
        """Infer the root element: declared but never referenced as a child.

        If the inference is ambiguous, the first declared candidate wins;
        if no candidate exists (cyclic DTD), the first declaration wins.
        """
        referenced: set[str] = set()
        for decl in self.elements.values():
            referenced |= decl.child_names()
        for name in self.elements:
            if name not in referenced:
                return name
        if not self.elements:
            raise DTDSyntaxError("DTD has no element declarations", 1, 1)
        return next(iter(self.elements))

    def depth(self) -> int:
        """Maximum depth of the DTD tree (root has depth 1).

        Cycles are cut rather than followed, matching how the paper counts
        DTD depth for its Table 3.
        """
        memo: dict[str, int] = {}

        def walk(name: str, seen: frozenset[str]) -> int:
            if name in memo:
                return memo[name]
            if name in seen or name not in self.elements:
                return 0
            children = self.children_of(name)
            if not children:
                result = 1
            else:
                result = 1 + max(
                    walk(child, seen | {name}) for child in children)
            memo[name] = result
            return result

        return walk(self.root_name(), frozenset())

    def nested_within(self, outer: str, inner: str) -> bool:
        """True if ``inner`` can appear anywhere below ``outer``."""
        seen: set[str] = set()
        frontier = [outer]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for child in self.children_of(current):
                if child == inner:
                    return True
                frontier.append(child)
        return False

    def descendant_count(self, name: str) -> int:
        """Number of distinct tags nestable (at any depth) within ``name``.

        This is the score Section 6.3 of the paper uses to order tags when
        soliciting user feedback.
        """
        seen: set[str] = set()
        frontier = list(self.children_of(name))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.children_of(current))
        return len(seen)


def parse_dtd(text: str, name: str | None = None) -> DTD:
    """Parse DTD text (a sequence of declarations) into a :class:`DTD`.

    All syntax problems are reported as :class:`DTDSyntaxError`, including
    ones detected by the shared low-level scanner.
    """
    try:
        return _parse_dtd(text, name)
    except DTDSyntaxError:
        raise
    except XMLSyntaxError as exc:
        # Re-wrap scanner-level errors without losing their position:
        # the structured line/column must survive the class change, not
        # just the rendered message.
        raise DTDSyntaxError(
            str(exc.args[0]).split(" (line ")[0] if exc.args else str(exc),
            exc.line, exc.column) from exc


def _parse_dtd(text: str, name: str | None) -> DTD:
    scanner = Scanner(text)
    dtd = DTD(name=name)
    while True:
        scanner.skip_whitespace()
        if scanner.at_end:
            break
        if scanner.looking_at("<!--"):
            scanner.advance(4)
            scanner.read_until("-->")
        elif scanner.looking_at("<!ELEMENT"):
            dtd.declare(_parse_element_decl(scanner))
        elif scanner.looking_at("<!ATTLIST"):
            _parse_attlist(scanner, dtd)
        elif scanner.looking_at("<!ENTITY"):
            # Entity declarations are tolerated and skipped.
            scanner.advance(len("<!ENTITY"))
            scanner.read_until(">")
        elif scanner.looking_at("<?"):
            scanner.advance(2)
            scanner.read_until("?>")
        else:
            raise _dtd_error(scanner, "expected a DTD declaration")
    return dtd


def _dtd_error(scanner: Scanner, message: str) -> DTDSyntaxError:
    return DTDSyntaxError(message, scanner.line, scanner.column)


def _parse_element_decl(scanner: Scanner) -> ElementDecl:
    scanner.expect("<!ELEMENT")
    scanner.skip_whitespace()
    name = scanner.read_name()
    scanner.skip_whitespace()
    if scanner.looking_at("EMPTY"):
        scanner.advance(len("EMPTY"))
        model: ContentModel = Empty()
    elif scanner.looking_at("ANY"):
        scanner.advance(len("ANY"))
        model = Any()
    elif scanner.peek() == "(":
        model = _parse_group(scanner)
    else:
        raise _dtd_error(scanner, f"bad content model for element {name!r}")
    scanner.skip_whitespace()
    scanner.expect(">")
    return ElementDecl(name, model)


def _parse_group(scanner: Scanner) -> ContentModel:
    """Parse a parenthesised group, including mixed content."""
    scanner.expect("(")
    scanner.skip_whitespace()
    items: list[ContentModel] = []
    separator: str | None = None

    if scanner.looking_at("#PCDATA"):
        scanner.advance(len("#PCDATA"))
        items.append(PCData())
        scanner.skip_whitespace()
        # Mixed content: (#PCDATA | a | b)* or just (#PCDATA)
        while scanner.peek() == "|":
            scanner.advance()
            scanner.skip_whitespace()
            items.append(NameRef(scanner.read_name()))
            scanner.skip_whitespace()
        scanner.expect(")")
        if len(items) == 1:
            occurrence = _read_occurrence(scanner)
            node: ContentModel = items[0]
            return node.with_occurrence(occurrence)
        scanner.expect("*")
        return Choice(items, occurrence="*")

    while True:
        items.append(_parse_particle(scanner))
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (",", "|"):
            if separator is None:
                separator = ch
            elif separator != ch:
                raise _dtd_error(
                    scanner, "cannot mix ',' and '|' in one group")
            scanner.advance()
            scanner.skip_whitespace()
        elif ch == ")":
            scanner.advance()
            break
        else:
            raise _dtd_error(scanner, f"unexpected {ch!r} in content model")

    occurrence = _read_occurrence(scanner)
    if len(items) == 1 and occurrence == "":
        return items[0]
    if separator == "|":
        return Choice(items, occurrence=occurrence)
    return Sequence(items, occurrence=occurrence)


def _parse_particle(scanner: Scanner) -> ContentModel:
    if scanner.peek() == "(":
        return _parse_group(scanner)
    name = scanner.read_name()
    return NameRef(name, _read_occurrence(scanner))


def _read_occurrence(scanner: Scanner) -> str:
    ch = scanner.peek()
    if ch in ("?", "*", "+"):
        scanner.advance()
        return ch
    return ""


def _parse_attlist(scanner: Scanner, dtd: DTD) -> None:
    scanner.expect("<!ATTLIST")
    scanner.skip_whitespace()
    element_name = scanner.read_name()
    while True:
        scanner.skip_whitespace()
        if scanner.peek() == ">":
            scanner.advance()
            break
        attr_name = scanner.read_name()
        scanner.skip_whitespace()
        if scanner.peek() == "(":
            # Enumerated type: (a | b | c)
            scanner.advance()
            attr_type = "(" + scanner.read_until(")") + ")"
        else:
            attr_type = scanner.read_name()
        scanner.skip_whitespace()
        if scanner.looking_at("#FIXED"):
            scanner.advance(len("#FIXED"))
            scanner.skip_whitespace()
            default = '#FIXED "' + scanner.read_quoted() + '"'
        elif scanner.peek() == "#":
            scanner.advance()
            default = "#" + scanner.read_name()
        else:
            default = scanner.read_quoted()
        decl = AttributeDecl(attr_name, attr_type, default)
        if element_name in dtd.elements:
            dtd.elements[element_name].attributes[attr_name] = decl
        else:
            # ATTLIST before ELEMENT: create a placeholder declaration.
            placeholder = ElementDecl(element_name, Empty())
            placeholder.attributes[attr_name] = decl
            dtd.declare(placeholder)
