"""In-memory tree model for XML documents.

The model is intentionally small: an :class:`Element` has a tag, an
attribute dictionary, a list of children (elements and text runs,
interleaved in document order), and a parent pointer. A :class:`Document`
wraps the root element together with optional prolog information.

LSD treats XML attributes and sub-elements uniformly (Section 2.1 of the
paper), so the schema-matching layers above mostly use :meth:`Element.iter`
and :meth:`Element.text_content`.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Text:
    """A run of character data inside an element."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Text({self.value!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Text) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Text", self.value))


class Element:
    """An XML element: tag, attributes, ordered children, parent pointer."""

    __slots__ = ("tag", "attributes", "children", "parent",
                 "source_location")

    def __init__(self, tag: str,
                 attributes: dict[str, str] | None = None) -> None:
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes or {})
        self.children: list[Element | Text] = []
        self.parent: Element | None = None
        #: Where the element's start tag sat in the parsed source
        #: (:class:`~repro.xmlio.errors.SourceLocation`), or ``None``
        #: for programmatically built trees. Read through
        #: :meth:`location` — trees unpickled from models saved before
        #: this slot existed leave it unset entirely.
        self.source_location = None

    def location(self):
        """The element's source position, or ``None`` when unknown."""
        return getattr(self, "source_location", None)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append(self, child: "Element | Text") -> "Element | Text":
        """Append ``child`` and (for elements) set its parent pointer."""
        if isinstance(child, Element):
            child.parent = self
        self.children.append(child)
        return child

    def append_text(self, value: str) -> Text:
        """Append a text run, merging with a trailing text sibling."""
        if self.children and isinstance(self.children[-1], Text):
            last = self.children[-1]
            merged = Text(last.value + value)
            self.children[-1] = merged
            return merged
        node = Text(value)
        self.children.append(node)
        return node

    def make_child(self, tag: str, text: str | None = None,
                   attributes: dict[str, str] | None = None) -> "Element":
        """Create, append and return a child element (optionally with text)."""
        child = Element(tag, attributes)
        if text is not None:
            child.append_text(text)
        self.append(child)
        return child

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    @property
    def element_children(self) -> list["Element"]:
        """Child *elements* only, in document order."""
        return [c for c in self.children if isinstance(c, Element)]

    @property
    def is_leaf(self) -> bool:
        """True if the element contains no child elements."""
        return not self.element_children

    def find(self, tag: str) -> "Element | None":
        """First direct child element with the given tag, or ``None``."""
        for child in self.element_children:
            if child.tag == tag:
                return child
        return None

    def findall(self, tag: str) -> list["Element"]:
        """All direct child elements with the given tag."""
        return [c for c in self.element_children if c.tag == tag]

    def iter(self, tag: str | None = None) -> Iterator["Element"]:
        """Depth-first pre-order iterator over this element and descendants.

        When ``tag`` is given, only elements with that tag are yielded.
        """
        if tag is None or self.tag == tag:
            yield self
        for child in self.element_children:
            yield from child.iter(tag)

    def path(self) -> str:
        """Slash-separated tag path from the root to this element."""
        parts: list[str] = []
        node: Element | None = self
        while node is not None:
            parts.append(node.tag)
            node = node.parent
        return "/".join(reversed(parts))

    def ancestors(self) -> Iterator["Element"]:
        """Iterate ancestors from the parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def depth(self) -> int:
        """Height of the subtree rooted here (a leaf has depth 1)."""
        kids = self.element_children
        if not kids:
            return 1
        return 1 + max(child.depth() for child in kids)

    # ------------------------------------------------------------------
    # content
    # ------------------------------------------------------------------
    def text_content(self) -> str:
        """All character data in the subtree, concatenated in order.

        Attribute values are included as well because LSD treats attributes
        like sub-elements.
        """
        parts: list[str] = []
        self._collect_text(parts)
        # Collapse runs of whitespace so the join never doubles spaces.
        # One collapse over the flat fragment list produces the same
        # word sequence as collapsing at every recursion level.
        return " ".join(" ".join(parts).split())

    def _collect_text(self, parts: list[str]) -> None:
        parts.extend(self.attributes.values())
        for child in self.children:
            if isinstance(child, Text):
                parts.append(child.value)
            else:
                child._collect_text(parts)

    def immediate_text(self) -> str:
        """Character data directly inside this element (not descendants)."""
        return " ".join(
            c.value for c in self.children if isinstance(c, Text)
        ).strip()

    def copy(self) -> "Element":
        """Deep copy of the subtree (parent pointer of the copy is None)."""
        clone = Element(self.tag, self.attributes)
        clone.source_location = self.location()
        for child in self.children:
            if isinstance(child, Text):
                clone.children.append(Text(child.value))
            else:
                clone.append(child.copy())
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Element({self.tag!r}, children={len(self.children)})"


class Document:
    """A parsed XML document: optional prolog info plus the root element."""

    __slots__ = ("root", "doctype_name", "version", "encoding",
                 "internal_subset")

    def __init__(self, root: Element, doctype_name: str | None = None,
                 version: str | None = None,
                 encoding: str | None = None,
                 internal_subset: str | None = None) -> None:
        self.root = root
        self.doctype_name = doctype_name
        self.version = version
        self.encoding = encoding
        #: Raw text of the DOCTYPE internal subset, if the document had one;
        #: feed it to :func:`repro.xmlio.dtd.parse_dtd`.
        self.internal_subset = internal_subset

    def iter(self, tag: str | None = None) -> Iterator[Element]:
        """Iterate the whole tree (see :meth:`Element.iter`)."""
        return self.root.iter(tag)

    def tags(self) -> set[str]:
        """The set of distinct element tags used in the document."""
        return {element.tag for element in self.iter()}


def element(tag: str, *children: "Element | str",
            attributes: dict[str, str] | None = None) -> Element:
    """Convenience builder: ``element('a', element('b', 'text'))``.

    String children become text runs; element children are appended in
    order. This keeps test and example code terse.
    """
    node = Element(tag, attributes)
    for child in children:
        if isinstance(child, str):
            node.append_text(child)
        else:
            node.append(child)
    return node


def from_pairs(tag: str, pairs: Iterable[tuple[str, str]]) -> Element:
    """Build a flat two-level element from ``(child_tag, text)`` pairs."""
    node = Element(tag)
    for child_tag, text in pairs:
        node.make_child(child_tag, text)
    return node
