"""A hard-coded, rule-based schema matcher (the TranScm/Artemis family).

No training phase: given the mediated schema and a source schema, each
source tag is matched to the mediated label with the highest hand-coded
rule score:

1. **Name equality** after normalisation (``listed-price`` vs
   ``LISTED-PRICE``) — the strongest rule.
2. **Synonym match** through a synonym dictionary.
3. **Token overlap** between the split names (Jaccard).
4. **Structural agreement** — leaf tags prefer leaf labels, non-leaf tags
   prefer non-leaf labels; matching at similar tree depths scores higher.

A threshold sends everything unconvincing to OTHER, and a greedy
one-to-one pass resolves ties (highest score first), mirroring how these
systems enforced 1-1 mappings.

This is the comparison point for LSD's claim that learned, data-aware
matching beats fixed schema-only rules (§8).
"""

from __future__ import annotations

from ..core.labels import OTHER
from ..core.mapping import Mapping
from ..core.schema import MediatedSchema, SourceSchema
from ..text import SynonymDictionary, default_synonyms, normalize_name, \
    split_name


class RuleBasedMatcher:
    """Schema-only matcher with fixed rules; see module docstring."""

    def __init__(self, synonyms: SynonymDictionary | None = None,
                 threshold: float = 0.30,
                 enforce_one_to_one: bool = True) -> None:
        self.synonyms = synonyms if synonyms is not None \
            else default_synonyms()
        self.threshold = threshold
        self.enforce_one_to_one = enforce_one_to_one

    # ------------------------------------------------------------------
    def match(self, mediated: MediatedSchema,
              source: SourceSchema) -> Mapping:
        """Produce a 1-1 mapping from fixed rules (no data, no training)."""
        labels = mediated.tags
        pairs: list[tuple[float, str, str]] = []
        for tag in source.tags:
            for label in labels:
                score = self.score(tag, label, source, mediated)
                if score >= self.threshold:
                    pairs.append((score, tag, label))
        pairs.sort(reverse=True)

        assignment: dict[str, str] = {}
        used_labels: set[str] = set()
        for score, tag, label in pairs:
            if tag in assignment:
                continue
            if self.enforce_one_to_one and label in used_labels:
                continue
            assignment[tag] = label
            used_labels.add(label)
        for tag in source.tags:
            assignment.setdefault(tag, OTHER)
        return Mapping(assignment)

    # ------------------------------------------------------------------
    def score(self, tag: str, label: str, source: SourceSchema,
              mediated: MediatedSchema) -> float:
        """Combined rule score in [0, 1] for one (tag, label) pair."""
        name_score = self._name_score(tag, label)
        structure_score = self._structure_score(tag, label, source,
                                                mediated)
        return 0.8 * name_score + 0.2 * structure_score

    def _name_score(self, tag: str, label: str) -> float:
        if normalize_name(tag) == normalize_name(label):
            return 1.0
        tag_tokens = split_name(tag)
        label_tokens = split_name(label)
        expanded_tag = {
            synonym for token in tag_tokens
            for synonym in self.synonyms.synonyms_of(token)}
        expanded_label = {
            synonym for token in label_tokens
            for synonym in self.synonyms.synonyms_of(token)}
        if set(tag_tokens) and expanded_tag == expanded_label:
            return 0.95
        union = expanded_tag | expanded_label
        if not union:
            return 0.0
        overlap = len(expanded_tag & expanded_label) / len(union)
        return 0.9 * overlap

    @staticmethod
    def _structure_score(tag: str, label: str, source: SourceSchema,
                         mediated: MediatedSchema) -> float:
        tag_is_leaf = tag in source.leaf_tags
        label_is_leaf = label in mediated.leaf_tags
        if tag_is_leaf != label_is_leaf:
            return 0.0
        tag_depth = len(source.path_to(tag))
        label_depth = len(mediated.path_to(label))
        return 1.0 / (1.0 + abs(tag_depth - label_depth))
