"""Non-learning baselines for comparison with LSD.

The paper's related-work section (§8) contrasts LSD with *rule-based*
matchers (TranScm, Artemis) that "utilize only schema information in a
hard-coded fashion". :class:`RuleBasedMatcher` implements that family's
canonical recipe so benchmarks can quantify the gap the paper argues
exists.
"""

from .rule_based import RuleBasedMatcher

__all__ = ["RuleBasedMatcher"]
