"""Vocabulary banks used by the synthetic-source generators.

These stand in for the web-sourced data the paper downloaded (DESIGN.md
§3): city/county gazetteers, personal names, street names, description
phrase banks, university course catalogues, and research areas. The
*content matchers* learn from these distributions, so each bank is large
enough that train/test sources share vocabulary without sharing listings.
"""

from __future__ import annotations

CITIES: tuple[tuple[str, str], ...] = (
    ("Seattle", "WA"), ("Portland", "OR"), ("Miami", "FL"),
    ("Boston", "MA"), ("Austin", "TX"), ("Denver", "CO"),
    ("Kent", "WA"), ("Orlando", "FL"), ("Phoenix", "AZ"),
    ("Atlanta", "GA"), ("Chicago", "IL"), ("Houston", "TX"),
    ("Madison", "WI"), ("Raleigh", "NC"), ("Tucson", "AZ"),
    ("Spokane", "WA"), ("Eugene", "OR"), ("Tampa", "FL"),
    ("Salem", "OR"), ("Bellevue", "WA"), ("Tacoma", "WA"),
    ("Everett", "WA"), ("Renton", "WA"), ("Boulder", "CO"),
    ("Plano", "TX"), ("Naples", "FL"), ("Savannah", "GA"),
    ("Ithaca", "NY"), ("Albany", "NY"), ("Trenton", "NJ"),
    ("Dayton", "OH"), ("Columbus", "OH"), ("Omaha", "NE"),
    ("Wichita", "KS"), ("Reno", "NV"), ("Provo", "UT"),
    ("Fresno", "CA"), ("Oakland", "CA"), ("Pasadena", "CA"),
    ("Berkeley", "CA"),
)

STATE_NAMES: dict[str, str] = {
    "WA": "Washington", "OR": "Oregon", "FL": "Florida",
    "MA": "Massachusetts", "TX": "Texas", "CO": "Colorado",
    "AZ": "Arizona", "GA": "Georgia", "IL": "Illinois",
    "WI": "Wisconsin", "NC": "North Carolina", "NY": "New York",
    "NJ": "New Jersey", "OH": "Ohio", "NE": "Nebraska", "KS": "Kansas",
    "NV": "Nevada", "UT": "Utah", "CA": "California",
}

COUNTIES: tuple[str, ...] = (
    "King", "Pierce", "Snohomish", "Multnomah", "Washington", "Clackamas",
    "Miami-Dade", "Broward", "Orange", "Suffolk", "Middlesex", "Travis",
    "Denver", "Boulder", "Maricopa", "Pima", "Fulton", "Cook", "Harris",
    "Dane", "Wake", "Spokane", "Lane", "Hillsborough", "Marion",
    "Collier", "Chatham", "Tompkins", "Albany", "Mercer", "Montgomery",
    "Franklin", "Douglas", "Sedgwick", "Washoe", "Utah", "Fresno",
    "Alameda", "Los Angeles",
)

STREET_NAMES: tuple[str, ...] = (
    "Pine", "Oak", "Maple", "Cedar", "Elm", "Birch", "Walnut", "Cherry",
    "Spruce", "Willow", "Juniper", "Magnolia", "Chestnut", "Sycamore",
    "Laurel", "Alder", "Hawthorn", "Hickory", "Poplar", "Aspen",
    "Main", "Park", "Lake", "Hill", "River", "Sunset", "Highland",
    "Meadow", "Forest", "Garden", "Spring", "Valley", "Ridge", "Canyon",
)

STREET_TYPES: tuple[str, ...] = (
    "St", "Ave", "Blvd", "Dr", "Ln", "Rd", "Ct", "Way", "Pl", "Terrace",
)

FIRST_NAMES: tuple[str, ...] = (
    "Kate", "Mike", "Jane", "Matt", "Gail", "Joe", "Ann", "Sam",
    "Laura", "Peter", "Susan", "David", "Karen", "James", "Linda",
    "Robert", "Nancy", "Paul", "Carol", "Mark", "Lisa", "Brian",
    "Emily", "Kevin", "Sarah", "Eric", "Julia", "Alan", "Diane",
    "Greg", "Helen", "Tom", "Rachel", "Steve", "Monica", "Frank",
    "Alice", "Dan", "Grace", "Carl",
    # Names that are also surnames: real rosters contain them, and they
    # keep a pure content matcher from separating FIRST-NAME from
    # LAST-NAME by vocabulary alone.
    "Scott", "Carter", "Taylor", "Murphy", "Jordan", "Lee",
    "Grant", "Logan", "Parker", "Blake", "Reed", "Wade", "Glenn",
)

LAST_NAMES: tuple[str, ...] = (
    "Richardson", "Smith", "Kendall", "Murphy", "Brown", "Lee", "Fox",
    "Johnson", "Williams", "Jones", "Garcia", "Miller", "Davis",
    "Martinez", "Lopez", "Wilson", "Anderson", "Taylor", "Thomas",
    "Moore", "Jackson", "Martin", "Thompson", "White", "Harris",
    "Clark", "Lewis", "Walker", "Hall", "Young", "King", "Wright",
    "Scott", "Green", "Baker", "Adams", "Nelson", "Carter", "Mitchell",
    "Turner",
    # Surnames that also serve as given names (see FIRST_NAMES).
    "James", "Thomas", "Frank", "Grant", "Logan", "Parker", "Blake",
    "Reed", "Wade", "Glenn",
)

FIRM_NAMES: tuple[str, ...] = (
    "MAX Realtors", "ACME Homes", "Evergreen Realty", "Sunrise Properties",
    "Cascade Brokers", "Pacific Crest Realty", "Landmark Estates",
    "Golden Key Realty", "Summit Homes", "Harborview Properties",
    "Bluebird Realty", "Cornerstone Brokers", "Lakeside Realty",
    "Pioneer Property Group", "Redwood Realty",
)

DESCRIPTION_OPENERS: tuple[str, ...] = (
    "Fantastic", "Great", "Beautiful", "Charming", "Spacious",
    "Stunning", "Lovely", "Wonderful", "Immaculate", "Delightful",
    "Gorgeous", "Inviting", "Sunny", "Elegant", "Cozy",
)

DESCRIPTION_SUBJECTS: tuple[str, ...] = (
    "house", "home", "rambler", "bungalow", "colonial", "craftsman",
    "Victorian", "townhome", "cottage", "split-level", "property",
    "residence",
)

DESCRIPTION_FEATURES: tuple[str, ...] = (
    "with a great location", "close to the river", "with a beautiful view",
    "near fantastic schools", "with a great yard", "close to downtown",
    "with a spacious kitchen", "near the beach", "with hardwood floors",
    "close to the highway", "with a large deck", "on a quiet street",
    "with vaulted ceilings", "near great shopping", "with mature trees",
    "with a fenced backyard", "close to parks", "with mountain views",
    "with a new roof", "in a friendly neighborhood",
)

DESCRIPTION_CLOSERS: tuple[str, ...] = (
    "A must see!", "Won't last long!", "Name your price!",
    "Priced to sell.", "Move-in ready.", "Call today!",
    "Pride of ownership.", "A rare find.", "Shows beautifully.",
    "Bring your offers!",
)

SCHOOL_DISTRICTS: tuple[str, ...] = (
    "Lakeview School District", "Riverside Unified", "North Hill District",
    "Cedar Valley Schools", "Sunset Public Schools",
    "Evergreen District 12", "Harbor City Schools",
    "Maple Grove District", "Eastside Union", "Franklin County Schools",
)

SCHOOL_NAMES: tuple[str, ...] = (
    "Lincoln", "Jefferson", "Roosevelt", "Washington", "Franklin",
    "Whitman", "Garfield", "Madison", "Monroe", "Adams", "Kennedy",
    "Wilson",
)

SUBDIVISIONS: tuple[str, ...] = (
    "Willow Creek", "Eagle Ridge", "Stonebridge", "Foxfield",
    "Harbor Pointe", "Autumn Glen", "Cedar Hollow", "Brookside",
    "Silver Lake Estates", "Quail Run", "Copper Canyon", "The Meadows",
)

AMENITIES: tuple[str, ...] = (
    "community pool", "tennis courts", "clubhouse", "walking trails",
    "playground", "golf course", "fitness center", "boat launch",
    "gated entry", "picnic area",
)

FLOORING: tuple[str, ...] = (
    "hardwood", "carpet", "tile", "laminate", "vinyl", "bamboo",
    "slate", "wall-to-wall carpet", "oak hardwood",
)

HEATING: tuple[str, ...] = (
    "forced air", "gas furnace", "heat pump", "electric baseboard",
    "radiant floor", "oil furnace",
)

COOLING: tuple[str, ...] = (
    "central air", "none", "window units", "heat pump", "evaporative",
)

APPLIANCES: tuple[str, ...] = (
    "dishwasher", "range", "refrigerator", "microwave", "washer",
    "dryer", "garbage disposal", "double oven",
)

ROOF_TYPES: tuple[str, ...] = (
    "composition", "cedar shake", "tile", "metal", "asphalt shingle",
    "flat",
)

SIDING_TYPES: tuple[str, ...] = (
    "wood", "brick", "vinyl", "stucco", "cement plank", "stone",
    "aluminum",
)

GARAGE_TYPES: tuple[str, ...] = (
    "2 car attached", "1 car detached", "3 car attached", "carport",
    "none", "2 car detached", "1 car attached",
)

VIEW_TYPES: tuple[str, ...] = (
    "mountain", "lake", "territorial", "city", "golf course", "sound",
    "river", "none",
)

WATER_SOURCES: tuple[str, ...] = ("public", "well", "community", "city")
SEWER_TYPES: tuple[str, ...] = ("public", "septic", "city sewer")
ELECTRIC_PROVIDERS: tuple[str, ...] = (
    "City Light", "Pacific Power", "Puget Sound Energy", "Valley Electric",
    "Northern Grid Co-op",
)

NEIGHBORHOODS: tuple[str, ...] = (
    "North End", "Capitol Hill", "Riverside", "Old Town", "Westlake",
    "Greenwood", "Bayview", "Hillcrest", "South Shore",
    "University District", "Downtown", "Eastgate",
)

LISTING_STATUS: tuple[str, ...] = (
    "active", "pending", "new", "price reduced", "back on market",
)

# ---------------------------------------------------------------------------
# Time Schedule domain
# ---------------------------------------------------------------------------

DEPARTMENTS: tuple[tuple[str, str], ...] = (
    ("CSE", "Computer Science"), ("MATH", "Mathematics"),
    ("PHYS", "Physics"), ("CHEM", "Chemistry"), ("BIO", "Biology"),
    ("ECON", "Economics"), ("HIST", "History"), ("PSYCH", "Psychology"),
    ("ENGL", "English"), ("MUSIC", "Music"), ("STAT", "Statistics"),
    ("ART", "Art"), ("PHIL", "Philosophy"), ("GEOG", "Geography"),
    ("ASTR", "Astronomy"),
)

COURSE_TOPICS: tuple[str, ...] = (
    "Introduction to Programming", "Data Structures", "Algorithms",
    "Operating Systems", "Databases", "Machine Learning",
    "Linear Algebra", "Calculus I", "Calculus II", "Real Analysis",
    "Quantum Mechanics", "Thermodynamics", "Organic Chemistry",
    "Genetics", "Microbiology", "Microeconomics", "Macroeconomics",
    "World History", "Cognitive Psychology", "Shakespeare",
    "Music Theory", "Probability", "Statistical Inference",
    "Modern Art", "Ethics", "Logic", "Cartography", "Stellar Physics",
    "Compilers", "Computer Networks", "Artificial Intelligence",
    "Number Theory", "Topology", "Electromagnetism", "Biochemistry",
)

BUILDINGS: tuple[str, ...] = (
    "Sieg Hall", "Loew Hall", "Guggenheim Hall", "Smith Hall",
    "Savery Hall", "Thomson Hall", "Kane Hall", "Bagley Hall",
    "Johnson Hall", "Gowen Hall", "Mary Gates Hall", "Odegaard",
)

DAY_PATTERNS: tuple[str, ...] = (
    "MWF", "TTh", "MW", "Daily", "F", "M", "W", "T", "Th", "MTWTh",
)

SEMESTERS: tuple[str, ...] = (
    "Fall 2000", "Winter 2001", "Spring 2001", "Summer 2001",
)

COURSE_NOTES: tuple[str, ...] = (
    "Prerequisite required", "Majors only", "Instructor permission",
    "Lab fee applies", "Meets with graduate section", "No auditors",
    "Honors section available", "Open enrollment", "Waitlist available",
    "First-year students only",
)

# ---------------------------------------------------------------------------
# Faculty Listings domain
# ---------------------------------------------------------------------------

UNIVERSITIES: tuple[str, ...] = (
    "University of Washington", "Stanford University", "MIT",
    "UC Berkeley", "Carnegie Mellon University", "Cornell University",
    "University of Wisconsin", "Princeton University",
    "University of Texas", "Georgia Tech", "Caltech",
    "University of Michigan", "UCLA", "Columbia University",
    "University of Illinois",
)

ACADEMIC_TITLES: tuple[str, ...] = (
    "Professor", "Associate Professor", "Assistant Professor",
    "Senior Lecturer", "Lecturer", "Professor Emeritus",
    "Research Professor", "Affiliate Professor",
)

RESEARCH_AREAS: tuple[str, ...] = (
    "machine learning", "data integration", "databases",
    "computer vision", "natural language processing", "robotics",
    "distributed systems", "computer architecture", "networking",
    "computational biology", "human-computer interaction",
    "programming languages", "software engineering",
    "theory of computation",
    "cryptography", "computer graphics", "operating systems",
    "information retrieval", "artificial intelligence", "compilers",
)

DEGREES: tuple[str, ...] = (
    "PhD", "Ph.D.", "DSc", "MS", "M.S.", "MSc",
)
