"""Domain registry: name -> builder for the four evaluation domains."""

from __future__ import annotations

from typing import Callable

from . import faculty, real_estate, real_estate2, time_schedule
from .base import Domain

_BUILDERS: dict[str, Callable[[int], Domain]] = {
    "real_estate_1": real_estate.build,
    "time_schedule": time_schedule.build,
    "faculty": faculty.build,
    "real_estate_2": real_estate2.build,
}

#: Presentation order used by the paper's figures.
DOMAIN_NAMES: tuple[str, ...] = (
    "real_estate_1", "time_schedule", "faculty", "real_estate_2")


def load_domain(name: str, seed: int = 0) -> Domain:
    """Build one of the four evaluation domains by name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        known = ", ".join(DOMAIN_NAMES)
        raise KeyError(f"unknown domain {name!r}; known: {known}") \
            from None
    return builder(seed)


def load_all_domains(seed: int = 0) -> list[Domain]:
    """All four domains in the paper's presentation order."""
    return [load_domain(name, seed) for name in DOMAIN_NAMES]
