"""The Real Estate I domain (Table 3, row 1).

Mediated schema: 20 tags, 4 non-leaf, depth 3. Five sources listing
houses for sale, 502-3002 listings each, 19-21 tags, with 84-100% of
source tags matchable — all matching the paper's reported
characteristics. The record maker here is shared with Real Estate II,
which extends the same listings with many more fields.
"""

from __future__ import annotations

import random

from ..constraints import parse_constraints
from ..learners import GazetteerRecognizer, RegexRecognizer
from ..text import SynonymDictionary, default_synonyms
from . import vocab
from .base import Domain, Group, Leaf, Record, SourceDef
from .values import (FIRM_DIRECTORY, format_date, format_person,
                     format_phone, format_price, format_state,
                     format_street, format_time, make_description,
                     phone_digits, pick, sample, street_address)

MEDIATED_DTD = """
<!ELEMENT LISTING (ADDRESS, CITY, STATE, ZIP, PRICE, DESCRIPTION,
                   HOUSE-INFO, CONTACT-INFO, LOCATION-INFO)>
<!ELEMENT ADDRESS (#PCDATA)>
<!ELEMENT CITY (#PCDATA)>
<!ELEMENT STATE (#PCDATA)>
<!ELEMENT ZIP (#PCDATA)>
<!ELEMENT PRICE (#PCDATA)>
<!ELEMENT DESCRIPTION (#PCDATA)>
<!ELEMENT HOUSE-INFO (BEDS, BATHS, SQFT, LOT-SIZE, YEAR-BUILT)>
<!ELEMENT BEDS (#PCDATA)>
<!ELEMENT BATHS (#PCDATA)>
<!ELEMENT SQFT (#PCDATA)>
<!ELEMENT LOT-SIZE (#PCDATA)>
<!ELEMENT YEAR-BUILT (#PCDATA)>
<!ELEMENT CONTACT-INFO (AGENT-NAME, AGENT-PHONE, OFFICE-NAME)>
<!ELEMENT AGENT-NAME (#PCDATA)>
<!ELEMENT AGENT-PHONE (#PCDATA)>
<!ELEMENT OFFICE-NAME (#PCDATA)>
<!ELEMENT LOCATION-INFO (COUNTY, SCHOOL-DISTRICT)>
<!ELEMENT COUNTY (#PCDATA)>
<!ELEMENT SCHOOL-DISTRICT (#PCDATA)>
"""

CONSTRAINTS = """
# Real Estate I domain constraints (hard unless noted).
frequency PRICE at-most 1
frequency ADDRESS at-most 1
frequency CITY at-most 1
frequency STATE at-most 1
frequency ZIP at-most 1
frequency BEDS at-most 1
frequency BATHS at-most 1
frequency SQFT at-most 1
frequency LOT-SIZE at-most 1
frequency YEAR-BUILT at-most 1
frequency AGENT-NAME at-most 1
frequency AGENT-PHONE at-most 1
frequency OFFICE-NAME at-most 1
frequency COUNTY at-most 1
frequency SCHOOL-DISTRICT at-most 1
frequency DESCRIPTION at-most 2
nesting CONTACT-INFO contains AGENT-NAME
nesting CONTACT-INFO contains AGENT-PHONE
nesting HOUSE-INFO contains BEDS
nesting HOUSE-INFO contains BATHS
nesting HOUSE-INFO excludes AGENT-PHONE
nesting CONTACT-INFO excludes PRICE
proximity BEDS BATHS
proximity AGENT-NAME AGENT-PHONE
"""


def _county_of(city: str) -> str:
    """Deterministic city -> county association (gazetteer-coherent)."""
    rng = random.Random(f"county:{city}")
    return pick(rng, vocab.COUNTIES)


def make_real_estate_record(rng: random.Random) -> Record:
    """One coherent house listing's raw values (shared with RE II)."""
    city, state = pick(rng, vocab.CITIES)
    firm = pick(rng, vocab.FIRM_NAMES)
    office_address, office_phone = FIRM_DIRECTORY[firm]
    beds = rng.randint(1, 6)
    full_baths = rng.randint(1, 4)
    half_baths = rng.randint(0, 2)
    sqft = rng.randint(70, 520) * 10
    agent_first = pick(rng, vocab.FIRST_NAMES)
    agent_last = pick(rng, vocab.LAST_NAMES)
    county = _county_of(city)
    school_district = pick(rng, vocab.SCHOOL_DISTRICTS)
    elementary = pick(rng, vocab.SCHOOL_NAMES) + " Elementary"
    # Real listing prose name-drops the agent, firm, neighborhood and
    # schools — the vocabulary overlap that §5 of the paper says confuses
    # flat bag-of-words learners (Figure 7's contact-vs-description case).
    description = make_description(rng, sentences=rng.randint(1, 2))
    extras = []
    if rng.random() < 0.6:
        extras.append(f"Contact {agent_first} {agent_last} "
                      f"at {firm} today.")
    if rng.random() < 0.4:
        extras.append(f"Located in {county} County, {city}.")
    if rng.random() < 0.4:
        extras.append(f"Walk to {elementary} in the acclaimed "
                      f"{school_district}.")
    if rng.random() < 0.3:
        extras.append(f"{beds} bedrooms, {full_baths} baths.")
    if extras:
        description = " ".join([description, *extras])
    return {
        "street": street_address(rng),
        "city": city,
        "state": state,
        "zip": f"{rng.randint(10000, 99499)}",
        "county": county,
        "price": rng.randint(60, 1200) * 1000,
        "description": description,
        "beds": beds,
        "full_baths": full_baths,
        "half_baths": half_baths,
        "sqft": sqft,
        "lot_acres": round(rng.uniform(0.08, 5.0), 2),
        "year_built": rng.randint(1905, 2001),
        "stories": rng.randint(1, 3),
        "agent_first": agent_first,
        "agent_last": agent_last,
        "agent_phone": phone_digits(rng),
        "firm": firm,
        "office_address": office_address,
        "office_phone": office_phone,
        "school_district": school_district,
        "elementary": elementary,
        "middle": pick(rng, vocab.SCHOOL_NAMES) + " Middle School",
        "high": pick(rng, vocab.SCHOOL_NAMES) + " High School",
        "mls": f"MLS{rng.randint(100000, 999999)}",
        "status": pick(rng, vocab.LISTING_STATUS),
        "listing_date": (rng.randint(1, 12), rng.randint(1, 28), 2000),
        "subdivision": pick(rng, vocab.SUBDIVISIONS),
        "hoa": rng.randint(0, 45) * 10,
        "amenities": sample(rng, vocab.AMENITIES, rng.randint(1, 3)),
        "taxes": rng.randint(800, 9000),
        "tax_year": rng.randint(1998, 2000),
        "assessment": rng.randint(50, 1100) * 1000,
        "flooring": sample(rng, vocab.FLOORING, rng.randint(1, 2)),
        "heating": pick(rng, vocab.HEATING),
        "cooling": pick(rng, vocab.COOLING),
        "fireplaces": rng.randint(0, 3),
        "basement": rng.random() < 0.4,
        "appliances": sample(rng, vocab.APPLIANCES, rng.randint(2, 4)),
        "garage": pick(rng, vocab.GARAGE_TYPES),
        "roof": pick(rng, vocab.ROOF_TYPES),
        "siding": pick(rng, vocab.SIDING_TYPES),
        "pool": rng.random() < 0.15,
        "waterfront": rng.random() < 0.1,
        "view": pick(rng, vocab.VIEW_TYPES),
        "fence": rng.random() < 0.5,
        "water": pick(rng, vocab.WATER_SOURCES),
        "sewer": pick(rng, vocab.SEWER_TYPES),
        "open_date": (rng.randint(1, 12), rng.randint(1, 28), 2001),
        "open_time": rng.randint(18, 34) * 30,  # 9:00am - 5:00pm
        "page_views": rng.randint(3, 4000),
        "area_name": pick(rng, vocab.NEIGHBORHOODS),
        "directions": (
            f"From I-{pick(rng, (5, 90, 405, 10, 80))}, take exit "
            f"{rng.randint(2, 180)}, "
            f"{pick(rng, ('left', 'right'))} on "
            f"{pick(rng, vocab.STREET_NAMES)} "
            f"{pick(rng, vocab.STREET_TYPES)}."),
        "electric": pick(rng, vocab.ELECTRIC_PROVIDERS),
    }


def real_estate_formatters() -> dict:
    """Concept -> formatter map shared by both real-estate domains."""
    return {
        "ADDRESS": lambda r, s, g: format_street(r["street"], s),
        "CITY": lambda r, s, g: r["city"],
        "STATE": lambda r, s, g: format_state(r["state"], s),
        "ZIP": lambda r, s, g: r["zip"],
        "PRICE": lambda r, s, g: format_price(r["price"], s),
        "DESCRIPTION": lambda r, s, g: r["description"],
        "BEDS": lambda r, s, g: str(r["beds"]),
        "BATHS": lambda r, s, g: _total_baths(r),
        "SQFT": lambda r, s, g: (f"{r['sqft']:,}"
                                 if s.get("sqft_style") == "comma"
                                 else f"{r['sqft']} sq ft"
                                 if s.get("sqft_style") == "unit"
                                 else str(r["sqft"])),
        "LOT-SIZE": lambda r, s, g: (f"{r['lot_acres']} acres"
                                     if s.get("lot_style") == "unit"
                                     else str(r["lot_acres"])),
        "YEAR-BUILT": lambda r, s, g: str(r["year_built"]),
        "AGENT-NAME": lambda r, s, g: format_person(
            r["agent_first"], r["agent_last"], s),
        "AGENT-PHONE": lambda r, s, g: format_phone(r["agent_phone"], s),
        "OFFICE-NAME": lambda r, s, g: r["firm"],
        "COUNTY": lambda r, s, g: (f"{r['county']} County"
                                   if s.get("county_style") == "suffixed"
                                   else r["county"]),
        "SCHOOL-DISTRICT": lambda r, s, g: r["school_district"],
        # Concepts used only by unmatchable (OTHER) tags:
        "mls_id": lambda r, s, g: f"MLS{100001 + r['_index']}",
        "listing_status": lambda r, s, g: r["status"],
        "listing_date": lambda r, s, g: format_date(*r["listing_date"], s),
        "listing_url": lambda r, s, g: (
            "http://listings.example.com/"
            f"{r['mls'].lower()}.html"),
        "page_views": lambda r, s, g: str(r["page_views"]),
        "disclaimer": lambda r, s, g: (
            "Information deemed reliable but not guaranteed."),
        "open_house": lambda r, s, g: (
            f"{format_date(*r['open_date'], s)} "
            f"{format_time(r['open_time'], s)}"),
    }


def _total_baths(record: Record) -> str:
    total = record["full_baths"] + 0.5 * record["half_baths"]
    return str(int(total)) if total == int(total) else str(total)


def _sources() -> list[SourceDef]:
    return [
        # Flat source, terse names, three unmatchable tags (84% matchable).
        SourceDef(
            name="homeseekers.com", root_tag="house", n_listings=3002,
            style={"phone_format": "paren", "price_format": "symbol_comma",
                   "sqft_style": "comma"},
            tree=[
                Leaf("location", "ADDRESS"),
                Leaf("city", "CITY"),
                Leaf("state", "STATE"),
                Leaf("zipcode", "ZIP"),
                Leaf("asking-price", "PRICE"),
                Leaf("comments", "DESCRIPTION"),
                Leaf("num-beds", "BEDS"),
                Leaf("num-baths", "BATHS"),
                Leaf("square-feet", "SQFT"),
                Leaf("lot-acres", "LOT-SIZE"),
                Leaf("built-year", "YEAR-BUILT"),
                Leaf("realtor", "AGENT-NAME"),
                Leaf("realtor-phone", "AGENT-PHONE"),
                Leaf("realty-office", "OFFICE-NAME"),
                Leaf("county-name", "COUNTY"),
                Leaf("school-dist", "SCHOOL-DISTRICT"),
                Leaf("mls-number", None, concept="mls_id"),
                Leaf("photo-link", None, concept="listing_url"),
                Leaf("open-house", None, concept="open_house",
                     optional=0.5),
            ]),
        # Fully grouped source mirroring the mediated structure.
        SourceDef(
            name="yahoo-homes.com", root_tag="entry", n_listings=2240,
            style={"phone_format": "dash", "price_format": "plain",
                   "state_style": "full", "name_order": "last_first",
                   "lot_style": "unit"},
            tree=[
                Leaf("address", "ADDRESS"),
                Leaf("town", "CITY"),
                Leaf("state", "STATE"),
                Leaf("postal-code", "ZIP"),
                Leaf("list-price", "PRICE"),
                Leaf("remarks", "DESCRIPTION"),
                Group("home-facts", "HOUSE-INFO", [
                    Leaf("bedrooms", "BEDS"),
                    Leaf("bathrooms", "BATHS"),
                    Leaf("living-area", "SQFT"),
                    Leaf("lot-size", "LOT-SIZE"),
                    Leaf("year", "YEAR-BUILT"),
                ]),
                Group("agent-contact", "CONTACT-INFO", [
                    Leaf("agent", "AGENT-NAME"),
                    Leaf("phone", "AGENT-PHONE"),
                    Leaf("office", "OFFICE-NAME"),
                ]),
                Group("area-info", "LOCATION-INFO", [
                    Leaf("county", "COUNTY"),
                    Leaf("district", "SCHOOL-DISTRICT"),
                ]),
            ]),
        # Vacuous group names and a couple of partial leaf names.
        SourceDef(
            name="realestate.com", root_tag="ad", n_listings=1500,
            style={"phone_format": "dot", "price_format": "symbol_space",
                   "county_style": "suffixed", "sqft_style": "unit"},
            tree=[
                Leaf("location", "ADDRESS"),
                Leaf("city-name", "CITY"),
                Leaf("st", "STATE"),
                Leaf("zip-code", "ZIP"),
                Leaf("price", "PRICE"),
                Leaf("extra-info", "DESCRIPTION"),
                Group("details", "HOUSE-INFO", [
                    Leaf("beds", "BEDS"),
                    Leaf("baths", "BATHS"),
                    Leaf("size", "SQFT"),
                    Leaf("lot", "LOT-SIZE"),
                    Leaf("yr-built", "YEAR-BUILT"),
                ]),
                Group("contact", "CONTACT-INFO", [
                    Leaf("name", "AGENT-NAME"),
                    Leaf("office-phone", "AGENT-PHONE"),
                    Leaf("firm", "OFFICE-NAME"),
                ]),
                Leaf("county", "COUNTY"),
                Leaf("school", "SCHOOL-DISTRICT"),
                Leaf("banner", None, concept="disclaimer"),
            ]),
        # Contact details flattened to the top level; verbose names.
        SourceDef(
            name="greathomes.com", root_tag="home", n_listings=880,
            style={"phone_format": "paren", "price_format": "symbol_comma",
                   "street_style": "verbose", "bool_style": "yn"},
            tree=[
                Leaf("street-address", "ADDRESS"),
                Leaf("city", "CITY"),
                Leaf("state-name", "STATE"),
                Leaf("zip", "ZIP"),
                Leaf("listed-price", "PRICE"),
                Leaf("description", "DESCRIPTION"),
                Group("house-facts", "HOUSE-INFO", [
                    Leaf("bedrooms", "BEDS"),
                    Leaf("bathrooms", "BATHS"),
                    Leaf("sqft", "SQFT"),
                    Leaf("acreage", "LOT-SIZE"),
                    Leaf("year-built", "YEAR-BUILT"),
                ]),
                Leaf("agent-name", "AGENT-NAME"),
                Leaf("work-phone", "AGENT-PHONE"),
                Leaf("brokerage", "OFFICE-NAME"),
                Leaf("county-name", "COUNTY"),
                Leaf("school-district", "SCHOOL-DISTRICT"),
                Leaf("ad-id", None, concept="mls_id"),
                Leaf("status", None, concept="listing_status"),
            ]),
        # Heavily abbreviated names: the name matcher's weak spot.
        SourceDef(
            name="nwrealty.com", root_tag="listing", n_listings=502,
            style={"phone_format": "plain", "price_format": "thousands",
                   "name_order": "last_first"},
            tree=[
                Leaf("addr", "ADDRESS"),
                Leaf("cty", "CITY"),
                Leaf("st", "STATE"),
                Leaf("zip", "ZIP"),
                Leaf("prc", "PRICE"),
                Leaf("desc", "DESCRIPTION"),
                Group("specs", "HOUSE-INFO", [
                    Leaf("bd", "BEDS"),
                    Leaf("ba", "BATHS"),
                    Leaf("sf", "SQFT"),
                    Leaf("lot", "LOT-SIZE"),
                    Leaf("yr", "YEAR-BUILT"),
                ]),
                Group("agt-info", "CONTACT-INFO", [
                    Leaf("agt", "AGENT-NAME"),
                    Leaf("agt-ph", "AGENT-PHONE"),
                    Leaf("ofc", "OFFICE-NAME"),
                ]),
                Leaf("cnty", "COUNTY"),
                Leaf("schl-dist", "SCHOOL-DISTRICT"),
                Leaf("hotline", None, concept="disclaimer",
                     optional=0.3),
            ]),
    ]


def domain_synonyms() -> SynonymDictionary:
    """Default synonyms extended with real-estate-specific groups."""
    synonyms = default_synonyms()
    synonyms.add_group(("brokerage", "office", "realty", "firm"))
    synonyms.add_group(("remarks", "comments", "description"))
    synonyms.add_group(("acreage", "lot"))
    return synonyms


def recognizers() -> list:
    """Domain recognizers: the paper's county-name module plus a phone
    regex recognizer."""
    return [
        GazetteerRecognizer(
            "COUNTY",
            list(vocab.COUNTIES) + [f"{c} County" for c in vocab.COUNTIES],
            name="county_recognizer"),
        RegexRecognizer(
            "AGENT-PHONE",
            r"\(?\d{3}\)?[ .-]\d{3}[ .-]\d{4}|\d{3} \d{3} \d{4}",
            name="phone_recognizer"),
    ]


def build(seed: int = 0) -> Domain:
    """Construct the Real Estate I domain."""
    return Domain(
        name="real_estate_1",
        title="Real Estate I",
        mediated_schema=MEDIATED_DTD,
        source_defs=_sources(),
        make_record=make_real_estate_record,
        formatters=real_estate_formatters(),
        constraints=parse_constraints(CONSTRAINTS),
        synonyms=domain_synonyms(),
        recognizers=recognizers,
        seed=seed,
    )
