"""Shared value-formatting helpers for the synthetic domains.

A *record* holds raw semantic values (integers, name tuples, digit
strings); formatters render them as strings with per-source quirks picked
via the source's ``style`` dict. Two sources can therefore present the
same underlying fact as ``"(206) 523 4719"`` vs ``"206-523-4719"`` or
``"$ 250,000"`` vs ``"250000"`` — exactly the heterogeneity the paper's
learners must see through.
"""

from __future__ import annotations

import random
from typing import Sequence

from . import vocab


def pick(rng: random.Random, items: Sequence):
    """Uniform choice (tiny wrapper to keep call sites short)."""
    return items[rng.randrange(len(items))]


def sample(rng: random.Random, items: Sequence, count: int) -> list:
    """Sample without replacement (clamped to the population size)."""
    return rng.sample(list(items), min(count, len(items)))


def phone_digits(rng: random.Random) -> tuple[int, int, int]:
    """Raw (area, exchange, number) phone components."""
    return (rng.randint(200, 989), rng.randint(200, 989),
            rng.randint(1000, 9999))


def format_phone(parts: tuple[int, int, int], style: dict) -> str:
    """Render phone digits per the source's ``phone_format`` style."""
    area, exchange, number = parts
    variant = style.get("phone_format", "paren")
    if variant == "paren":
        return f"({area}) {exchange} {number}"
    if variant == "dash":
        return f"{area}-{exchange}-{number}"
    if variant == "dot":
        return f"{area}.{exchange}.{number}"
    return f"{area} {exchange} {number}"


def format_price(amount: int, style: dict) -> str:
    """Render a dollar amount per the source's ``price_format`` style."""
    variant = style.get("price_format", "symbol_comma")
    if variant == "symbol_comma":
        return f"${amount:,}"
    if variant == "symbol_space":
        return f"$ {amount:,}"
    if variant == "plain":
        return str(amount)
    if variant == "thousands":
        return f"{amount // 1000}K"
    return f"{amount:,}"


def format_person(first: str, last: str, style: dict) -> str:
    """Render a person name per the source's ``name_order`` style."""
    if style.get("name_order") == "last_first":
        return f"{last}, {first}"
    return f"{first} {last}"


def format_state(abbrev: str, style: dict) -> str:
    """Render a state per the source's ``state_style`` style."""
    if style.get("state_style") == "full":
        return vocab.STATE_NAMES.get(abbrev, abbrev)
    return abbrev


def format_yes_no(value: bool, style: dict) -> str:
    """Render a boolean per the source's ``bool_style`` style."""
    variant = style.get("bool_style", "yes_no")
    if variant == "yn":
        return "Y" if value else "N"
    if variant == "true_false":
        return "true" if value else "false"
    return "yes" if value else "no"


def format_time(minutes: int, style: dict) -> str:
    """Render a time-of-day (minutes after midnight)."""
    hour, minute = divmod(minutes, 60)
    if style.get("time_style") == "military":
        return f"{hour:02d}{minute:02d}"
    suffix = "am" if hour < 12 else "pm"
    display_hour = hour % 12 or 12
    return f"{display_hour}:{minute:02d} {suffix}"


def format_date(month: int, day: int, year: int, style: dict) -> str:
    """Render a date per the source's ``date_style`` style."""
    variant = style.get("date_style", "slash")
    if variant == "iso":
        return f"{year:04d}-{month:02d}-{day:02d}"
    if variant == "text":
        months = ("Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug",
                  "Sep", "Oct", "Nov", "Dec")
        return f"{months[month - 1]} {day}, {year}"
    return f"{month}/{day}/{year}"


def make_description(rng: random.Random, sentences: int = 2) -> str:
    """A house description from the phrase banks (word-frequency signal
    for the Naive Bayes learner, per the paper's 'fantastic'/'great'
    example)."""
    parts = []
    for __ in range(max(1, sentences)):
        opener = pick(rng, vocab.DESCRIPTION_OPENERS)
        subject = pick(rng, vocab.DESCRIPTION_SUBJECTS)
        feature = pick(rng, vocab.DESCRIPTION_FEATURES)
        parts.append(f"{opener} {subject} {feature}.")
    parts.append(pick(rng, vocab.DESCRIPTION_CLOSERS))
    return " ".join(parts)


def street_address(rng: random.Random) -> tuple[int, str, str]:
    """Raw (number, street, type) address components."""
    return (rng.randint(100, 19999), pick(rng, vocab.STREET_NAMES),
            pick(rng, vocab.STREET_TYPES))


def format_street(parts: tuple[int, str, str], style: dict) -> str:
    number, street, street_type = parts
    if style.get("street_style") == "verbose":
        expansions = {"St": "Street", "Ave": "Avenue", "Blvd": "Boulevard",
                      "Dr": "Drive", "Ln": "Lane", "Rd": "Road",
                      "Ct": "Court", "Pl": "Place"}
        street_type = expansions.get(street_type, street_type)
    return f"{number} {street} {street_type}"


def firm_directory() -> dict[str, tuple[str, str]]:
    """Deterministic (address, phone) per firm, so CITY & FIRM-NAME
    functionally determine FIRM-ADDRESS in every generated source."""
    directory: dict[str, tuple[str, str]] = {}
    for firm in vocab.FIRM_NAMES:
        rng = random.Random(f"firm:{firm}")
        address = format_street(street_address(rng), {})
        phone = format_phone(phone_digits(rng), {})
        directory[firm] = (address, phone)
    return directory


FIRM_DIRECTORY = firm_directory()


def email_for(first: str, last: str, domain: str,
              rng: random.Random) -> str:
    """A plausible email address for a person."""
    forms = (f"{first.lower()}.{last.lower()}", f"{first[0].lower()}"
             f"{last.lower()}", f"{last.lower()}{rng.randint(1, 99)}")
    return f"{pick(rng, forms)}@{domain}"
