"""Framework for declaring synthetic evaluation domains.

A :class:`Domain` plays the role of one of the paper's four evaluation
domains: a mediated schema, domain constraints, a synonym dictionary, and
five heterogeneous :class:`Source` definitions. Every source declares its
own tag vocabulary and tree structure over the domain's *concepts*; the
generator turns a shared per-listing record into differently named,
differently formatted XML for each source, so tag names, formats and
structure vary across sources while the underlying semantics (what the
learners must recover) stay aligned.

Determinism: every listing stream is derived from ``(domain seed, source
name, sample seed)``, so experiments are reproducible and "taking a new
sample of data" (the paper's methodology) is just a different sample seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..constraints.base import Constraint
from ..core.labels import OTHER
from ..core.mapping import Mapping
from ..core.schema import MediatedSchema, SourceSchema
from ..learners.base import BaseLearner
from ..text.synonyms import SynonymDictionary
from ..xmlio import Element

#: A per-listing record of raw semantic values, keyed by concept name.
Record = dict[str, object]
#: Formats one concept of a record as a string, honouring source style.
Formatter = Callable[[Record, dict, random.Random], str]


@dataclass
class Leaf:
    """A leaf field of a source schema.

    ``label`` is the mediated tag this field truly corresponds to (None
    for unmatchable fields → OTHER). ``concept`` is the value-generator
    key; it defaults to the label, and *must* be given for OTHER fields.
    ``optional`` is the per-listing probability that the field is absent.
    """

    tag: str
    label: str | None
    concept: str | None = None
    optional: float = 0.0

    def __post_init__(self) -> None:
        if self.concept is None:
            if self.label is None:
                raise ValueError(
                    f"leaf {self.tag!r} has no label and no concept")
            self.concept = self.label


@dataclass
class Group:
    """A non-leaf element grouping child fields."""

    tag: str
    label: str | None
    children: list["Leaf | Group"]
    optional: float = 0.0


@dataclass
class SourceDef:
    """Declarative description of one source."""

    name: str
    root_tag: str
    tree: list[Leaf | Group]
    n_listings: int
    style: dict = field(default_factory=dict)


class Source:
    """A concrete source: schema, ground-truth mapping, listing generator."""

    def __init__(self, definition: SourceDef,
                 make_record: Callable[[random.Random], Record],
                 formatters: dict[str, Formatter], domain_seed: int) -> None:
        self._definition = definition
        self._make_record = make_record
        self._formatters = formatters
        self._domain_seed = domain_seed
        self.name = definition.name
        self.n_listings = definition.n_listings
        self.style = dict(definition.style)
        self.schema = SourceSchema(_build_dtd(definition),
                                   name=definition.name)
        self.mapping = _build_mapping(definition)

    def listings(self, count: int | None = None,
                 sample_seed: int = 0) -> list[Element]:
        """Generate ``count`` listings (default: the source's full size).

        Different ``sample_seed`` values produce different samples from
        the same underlying source distribution — the paper's "each time
        taking a new sample of data from each source".
        """
        if count is None:
            count = self.n_listings
        count = min(count, self.n_listings)
        rng = random.Random(
            f"{self._domain_seed}:{self._definition.name}:{sample_seed}")
        return [self._generate_listing(rng, index)
                for index in range(count)]

    # ------------------------------------------------------------------
    def _generate_listing(self, rng: random.Random, index: int) -> Element:
        record = self._make_record(rng)
        # The listing's position in the stream: lets formatters mint
        # guaranteed-unique identifiers (MLS numbers, schedule line
        # numbers) that key constraints can rely on.
        record["_index"] = index
        root = Element(self._definition.root_tag)
        for node in self._definition.tree:
            child = self._generate_node(node, record, rng)
            if child is not None:
                root.append(child)
        return root

    def _generate_node(self, node: Leaf | Group, record: Record,
                       rng: random.Random) -> Element | None:
        if node.optional and rng.random() < node.optional:
            return None
        if isinstance(node, Leaf):
            formatter = self._formatters.get(node.concept)
            if formatter is None:
                raise KeyError(
                    f"source {self.name!r}: no formatter for concept "
                    f"{node.concept!r} (tag {node.tag!r})")
            element = Element(node.tag)
            value = formatter(record, self.style, rng)
            if value:
                element.append_text(value)
            return element
        element = Element(node.tag)
        for child_node in node.children:
            child = self._generate_node(child_node, record, rng)
            if child is not None:
                element.append(child)
        return element

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Source {self.name!r}: {len(self.schema.tags)} tags, "
                f"{self.n_listings} listings>")


class Domain:
    """One evaluation domain: mediated schema + constraints + 5 sources."""

    def __init__(self, name: str, title: str,
                 mediated_schema: MediatedSchema | str,
                 source_defs: Sequence[SourceDef],
                 make_record: Callable[[random.Random], Record],
                 formatters: dict[str, Formatter],
                 constraints: Sequence[Constraint] = (),
                 synonyms: SynonymDictionary | None = None,
                 recognizers: Callable[[], list[BaseLearner]] | None = None,
                 seed: int = 0) -> None:
        if isinstance(mediated_schema, str):
            mediated_schema = MediatedSchema(mediated_schema)
        self.name = name
        self.title = title
        self.mediated_schema = mediated_schema
        self.constraints = list(constraints)
        self.synonyms = synonyms
        self._recognizers = recognizers
        self.seed = seed
        self.sources = [
            Source(definition, make_record, formatters, seed)
            for definition in source_defs
        ]
        self._validate()

    def recognizers(self) -> list[BaseLearner]:
        """Fresh instances of the domain's recognizer learners."""
        if self._recognizers is None:
            return []
        return self._recognizers()

    def source_named(self, name: str) -> Source:
        """Look up a source by name."""
        for source in self.sources:
            if source.name == name:
                return source
        raise KeyError(f"domain {self.name!r} has no source {name!r}")

    def matchable_fraction(self, source: Source) -> float:
        """Fraction of the source's tags with a real (non-OTHER) label —
        Table 3's rightmost column."""
        tags = source.schema.tags
        if not tags:
            return 0.0
        matchable = sum(
            1 for tag in tags if source.mapping.get(tag, OTHER) != OTHER)
        return matchable / len(tags)

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        space = self.mediated_schema.label_space()
        for source in self.sources:
            for tag, label in source.mapping.items():
                if label not in space:
                    raise ValueError(
                        f"source {source.name!r} maps {tag!r} to unknown "
                        f"label {label!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Domain {self.name!r}: "
                f"{len(self.mediated_schema.tags)} mediated tags, "
                f"{len(self.sources)} sources>")


# ---------------------------------------------------------------------------
# schema / mapping construction from SourceDef trees
# ---------------------------------------------------------------------------

def _build_dtd(definition: SourceDef) -> str:
    """Render a SourceDef tree as DTD text."""
    lines: list[str] = []

    def declare(tag: str, children: list[Leaf | Group]) -> None:
        parts = []
        for node in children:
            suffix = "?" if node.optional else ""
            parts.append(f"{node.tag}{suffix}")
        lines.append(f"<!ELEMENT {tag} ({', '.join(parts)})>")
        for node in children:
            if isinstance(node, Group):
                declare(node.tag, node.children)
            else:
                lines.append(f"<!ELEMENT {node.tag} (#PCDATA)>")

    declare(definition.root_tag, definition.tree)
    return "\n".join(lines)


def _build_mapping(definition: SourceDef) -> Mapping:
    """Ground-truth mapping for a SourceDef (OTHER for unlabelled tags)."""
    assignments: dict[str, str] = {}

    def walk(nodes: list[Leaf | Group]) -> None:
        for node in nodes:
            assignments[node.tag] = node.label if node.label else OTHER
            if isinstance(node, Group):
                walk(node.children)

    walk(definition.tree)
    return Mapping(assignments)
