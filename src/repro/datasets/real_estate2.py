"""The Real Estate II domain (Table 3, row 4).

Same houses-for-sale task as Real Estate I but with a much larger
mediated schema: 66 tags, 13 non-leaf, depth 4. Sources carry 33-48 tags
with 11-13 non-leaf tags — the deep structure that gives the XML learner
"more room for showing improvements" (§6.1). All source tags are
matchable (100%), as in Table 3.
"""

from __future__ import annotations

from ..constraints import parse_constraints
from ..text import SynonymDictionary
from .base import Domain, Group, Leaf, SourceDef
from .real_estate import (domain_synonyms as _re1_synonyms,
                          make_real_estate_record, real_estate_formatters,
                          recognizers)
from .values import format_date, format_time, format_yes_no

MEDIATED_DTD = """
<!ELEMENT LISTING (GENERAL-INFO, LOCATION-INFO, INTERIOR-INFO,
                   EXTERIOR-INFO, COMMUNITY-INFO, FINANCIAL-INFO,
                   UTILITY-INFO, CONTACT-INFO, OPEN-HOUSE-INFO)>
<!ELEMENT GENERAL-INFO (MLS-ID, STATUS, LISTING-DATE, PRICE, DESCRIPTION)>
<!ELEMENT MLS-ID (#PCDATA)>
<!ELEMENT STATUS (#PCDATA)>
<!ELEMENT LISTING-DATE (#PCDATA)>
<!ELEMENT PRICE (#PCDATA)>
<!ELEMENT DESCRIPTION (#PCDATA)>
<!ELEMENT LOCATION-INFO (ADDRESS, CITY, STATE, ZIP, COUNTY, AREA-NAME,
                         DIRECTIONS, SCHOOL-INFO)>
<!ELEMENT ADDRESS (#PCDATA)>
<!ELEMENT CITY (#PCDATA)>
<!ELEMENT STATE (#PCDATA)>
<!ELEMENT ZIP (#PCDATA)>
<!ELEMENT COUNTY (#PCDATA)>
<!ELEMENT AREA-NAME (#PCDATA)>
<!ELEMENT DIRECTIONS (#PCDATA)>
<!ELEMENT SCHOOL-INFO (ELEMENTARY-SCHOOL, MIDDLE-SCHOOL, HIGH-SCHOOL,
                       SCHOOL-DISTRICT)>
<!ELEMENT ELEMENTARY-SCHOOL (#PCDATA)>
<!ELEMENT MIDDLE-SCHOOL (#PCDATA)>
<!ELEMENT HIGH-SCHOOL (#PCDATA)>
<!ELEMENT SCHOOL-DISTRICT (#PCDATA)>
<!ELEMENT INTERIOR-INFO (BEDS, FULL-BATHS, HALF-BATHS, SQFT, FLOORING,
                         HEATING, COOLING, FIREPLACES, BASEMENT,
                         APPLIANCES)>
<!ELEMENT BEDS (#PCDATA)>
<!ELEMENT FULL-BATHS (#PCDATA)>
<!ELEMENT HALF-BATHS (#PCDATA)>
<!ELEMENT SQFT (#PCDATA)>
<!ELEMENT FLOORING (#PCDATA)>
<!ELEMENT HEATING (#PCDATA)>
<!ELEMENT COOLING (#PCDATA)>
<!ELEMENT FIREPLACES (#PCDATA)>
<!ELEMENT BASEMENT (#PCDATA)>
<!ELEMENT APPLIANCES (#PCDATA)>
<!ELEMENT EXTERIOR-INFO (LOT-SIZE, YEAR-BUILT, STORIES, GARAGE, ROOF,
                         SIDING, POOL, WATERFRONT, VIEW, FENCE)>
<!ELEMENT LOT-SIZE (#PCDATA)>
<!ELEMENT YEAR-BUILT (#PCDATA)>
<!ELEMENT STORIES (#PCDATA)>
<!ELEMENT GARAGE (#PCDATA)>
<!ELEMENT ROOF (#PCDATA)>
<!ELEMENT SIDING (#PCDATA)>
<!ELEMENT POOL (#PCDATA)>
<!ELEMENT WATERFRONT (#PCDATA)>
<!ELEMENT VIEW (#PCDATA)>
<!ELEMENT FENCE (#PCDATA)>
<!ELEMENT COMMUNITY-INFO (SUBDIVISION, HOA-FEE, AMENITIES)>
<!ELEMENT SUBDIVISION (#PCDATA)>
<!ELEMENT HOA-FEE (#PCDATA)>
<!ELEMENT AMENITIES (#PCDATA)>
<!ELEMENT FINANCIAL-INFO (TAXES, TAX-YEAR, ASSESSMENT)>
<!ELEMENT TAXES (#PCDATA)>
<!ELEMENT TAX-YEAR (#PCDATA)>
<!ELEMENT ASSESSMENT (#PCDATA)>
<!ELEMENT UTILITY-INFO (WATER, SEWER, ELECTRIC)>
<!ELEMENT WATER (#PCDATA)>
<!ELEMENT SEWER (#PCDATA)>
<!ELEMENT ELECTRIC (#PCDATA)>
<!ELEMENT CONTACT-INFO (AGENT-INFO, OFFICE-INFO)>
<!ELEMENT AGENT-INFO (AGENT-NAME, AGENT-PHONE, AGENT-EMAIL)>
<!ELEMENT AGENT-NAME (#PCDATA)>
<!ELEMENT AGENT-PHONE (#PCDATA)>
<!ELEMENT AGENT-EMAIL (#PCDATA)>
<!ELEMENT OFFICE-INFO (OFFICE-NAME, OFFICE-PHONE, OFFICE-ADDRESS)>
<!ELEMENT OFFICE-NAME (#PCDATA)>
<!ELEMENT OFFICE-PHONE (#PCDATA)>
<!ELEMENT OFFICE-ADDRESS (#PCDATA)>
<!ELEMENT OPEN-HOUSE-INFO (OPEN-DATE, OPEN-TIME)>
<!ELEMENT OPEN-DATE (#PCDATA)>
<!ELEMENT OPEN-TIME (#PCDATA)>
"""

CONSTRAINTS = """
# Real Estate II domain constraints.
key MLS-ID
frequency MLS-ID at-most 1
frequency PRICE at-most 1
frequency ADDRESS at-most 1
frequency CITY at-most 1
frequency STATE at-most 1
frequency ZIP at-most 1
frequency COUNTY at-most 1
frequency BEDS at-most 1
frequency FULL-BATHS at-most 1
frequency HALF-BATHS at-most 1
frequency SQFT at-most 1
frequency LOT-SIZE at-most 1
frequency YEAR-BUILT at-most 1
frequency AGENT-NAME at-most 1
frequency AGENT-PHONE at-most 1
frequency AGENT-EMAIL at-most 1
frequency OFFICE-NAME at-most 1
frequency OFFICE-PHONE at-most 1
frequency OFFICE-ADDRESS at-most 1
frequency TAXES at-most 1
frequency TAX-YEAR at-most 1
frequency ASSESSMENT at-most 1
frequency DESCRIPTION at-most 2
nesting AGENT-INFO contains AGENT-NAME
nesting AGENT-INFO contains AGENT-PHONE
nesting OFFICE-INFO contains OFFICE-NAME
nesting SCHOOL-INFO contains ELEMENTARY-SCHOOL
nesting AGENT-INFO excludes PRICE
nesting SCHOOL-INFO excludes AGENT-PHONE
fd CITY OFFICE-NAME -> OFFICE-ADDRESS
contiguous FULL-BATHS HALF-BATHS
proximity BEDS FULL-BATHS
proximity AGENT-NAME AGENT-PHONE
proximity OPEN-DATE OPEN-TIME
soft-max AMENITIES 2
"""


def _formatters() -> dict:
    """RE I formatters extended with the RE II-only concepts."""
    formatters = real_estate_formatters()
    formatters.update({
        "MLS-ID": lambda r, s, g: f"MLS{100001 + r['_index']}",
        "STATUS": lambda r, s, g: r["status"],
        "LISTING-DATE": lambda r, s, g: format_date(*r["listing_date"],
                                                    s),
        "AREA-NAME": lambda r, s, g: r["area_name"],
        "DIRECTIONS": lambda r, s, g: r["directions"],
        "ELEMENTARY-SCHOOL": lambda r, s, g: r["elementary"],
        "MIDDLE-SCHOOL": lambda r, s, g: r["middle"],
        "HIGH-SCHOOL": lambda r, s, g: r["high"],
        "FULL-BATHS": lambda r, s, g: str(r["full_baths"]),
        "HALF-BATHS": lambda r, s, g: str(r["half_baths"]),
        "FLOORING": lambda r, s, g: ", ".join(r["flooring"]),
        "HEATING": lambda r, s, g: r["heating"],
        "COOLING": lambda r, s, g: r["cooling"],
        "FIREPLACES": lambda r, s, g: str(r["fireplaces"]),
        "BASEMENT": lambda r, s, g: format_yes_no(r["basement"], s),
        "APPLIANCES": lambda r, s, g: ", ".join(r["appliances"]),
        "STORIES": lambda r, s, g: str(r["stories"]),
        "GARAGE": lambda r, s, g: r["garage"],
        "ROOF": lambda r, s, g: r["roof"],
        "SIDING": lambda r, s, g: r["siding"],
        "POOL": lambda r, s, g: format_yes_no(r["pool"], s),
        "WATERFRONT": lambda r, s, g: format_yes_no(r["waterfront"], s),
        "VIEW": lambda r, s, g: r["view"],
        "FENCE": lambda r, s, g: format_yes_no(r["fence"], s),
        "SUBDIVISION": lambda r, s, g: r["subdivision"],
        "HOA-FEE": lambda r, s, g: (f"${r['hoa']}/mo" if r["hoa"]
                                    else "none"),
        "AMENITIES": lambda r, s, g: ", ".join(r["amenities"]),
        "TAXES": lambda r, s, g: f"${r['taxes']:,}",
        "TAX-YEAR": lambda r, s, g: str(r["tax_year"]),
        "ASSESSMENT": lambda r, s, g: f"${r['assessment']:,}",
        "WATER": lambda r, s, g: r["water"],
        "SEWER": lambda r, s, g: r["sewer"],
        "ELECTRIC": lambda r, s, g: r["electric"],
        "AGENT-EMAIL": lambda r, s, g: (
            f"{r['agent_first'].lower()}.{r['agent_last'].lower()}"
            "@realty.example.com"),
        "OFFICE-PHONE": lambda r, s, g: r["office_phone"],
        "OFFICE-ADDRESS": lambda r, s, g: r["office_address"],
        "OPEN-DATE": lambda r, s, g: format_date(*r["open_date"], s),
        "OPEN-TIME": lambda r, s, g: format_time(r["open_time"], s),
    })
    return formatters


def _leaves(pairs: list[tuple[str, str]]) -> list[Leaf]:
    """Shorthand: build leaves from (tag, label) pairs."""
    return [Leaf(tag, label) for tag, label in pairs]


def _sources() -> list[SourceDef]:
    return [
        # Rich MLS feed: 48 tags, 13 non-leaf, mirrors the mediated tree.
        SourceDef(
            name="windermere.com", root_tag="property", n_listings=3002,
            style={"phone_format": "paren",
                   "price_format": "symbol_comma", "sqft_style": "comma"},
            tree=[
                Group("overview", "GENERAL-INFO", _leaves([
                    ("mls-number", "MLS-ID"),
                    ("date-listed", "LISTING-DATE"),
                    ("asking-price", "PRICE"),
                    ("remarks", "DESCRIPTION")])),
                Group("where", "LOCATION-INFO", [
                    *_leaves([
                        ("street", "ADDRESS"), ("city", "CITY"),
                        ("state", "STATE"), ("zip", "ZIP"),
                        ("county", "COUNTY")]),
                    Group("schools", "SCHOOL-INFO", _leaves([
                        ("elementary", "ELEMENTARY-SCHOOL"),
                        ("junior-high", "MIDDLE-SCHOOL"),
                        ("senior-high", "HIGH-SCHOOL"),
                        ("district", "SCHOOL-DISTRICT")])),
                ]),
                Group("inside", "INTERIOR-INFO", _leaves([
                    ("bedrooms", "BEDS"), ("full-baths", "FULL-BATHS"),
                    ("half-baths", "HALF-BATHS"), ("square-feet", "SQFT"),
                    ("heat-type", "HEATING")])),
                Group("outside", "EXTERIOR-INFO", _leaves([
                    ("lot-size", "LOT-SIZE"), ("year-built", "YEAR-BUILT"),
                    ("stories", "STORIES"), ("garage", "GARAGE"),
                    ("view", "VIEW")])),
                Group("community", "COMMUNITY-INFO", _leaves([
                    ("subdivision", "SUBDIVISION"),
                    ("monthly-dues", "HOA-FEE")])),
                Group("financials", "FINANCIAL-INFO", _leaves([
                    ("annual-taxes", "TAXES"), ("tax-year", "TAX-YEAR"),
                    ("assessed-value", "ASSESSMENT")])),
                Group("utilities", "UTILITY-INFO", _leaves([
                    ("water-source", "WATER"), ("sewer-type", "SEWER")])),
                Group("listing-agent", "CONTACT-INFO", [
                    Group("agent", "AGENT-INFO", _leaves([
                        ("name", "AGENT-NAME"), ("phone", "AGENT-PHONE"),
                        ("email", "AGENT-EMAIL")])),
                    Group("office", "OFFICE-INFO", _leaves([
                        ("office-name", "OFFICE-NAME"),
                        ("office-phone", "OFFICE-PHONE"),
                        ("office-address", "OFFICE-ADDRESS")])),
                ]),
            ]),
        # Broker feed with different grouping and terser names: 42 tags.
        SourceDef(
            name="johnlscott.com", root_tag="house", n_listings=2350,
            style={"phone_format": "dash", "price_format": "plain",
                   "bool_style": "yn", "name_order": "last_first",
                   "lot_style": "unit"},
            tree=[
                Group("listing-info", "GENERAL-INFO", _leaves([
                    ("listing-no", "MLS-ID"), ("list-date", "LISTING-DATE"),
                    ("price", "PRICE"), ("description", "DESCRIPTION")])),
                Group("location", "LOCATION-INFO", [
                    *_leaves([
                        ("address", "ADDRESS"), ("town", "CITY"),
                        ("st", "STATE"), ("postal", "ZIP"),
                        ("county-name", "COUNTY"),
                        ("area", "AREA-NAME")]),
                    Group("school-data", "SCHOOL-INFO", _leaves([
                        ("elem", "ELEMENTARY-SCHOOL"),
                        ("high", "HIGH-SCHOOL"),
                        ("school-district", "SCHOOL-DISTRICT")])),
                ]),
                Group("rooms", "INTERIOR-INFO", _leaves([
                    ("beds", "BEDS"), ("baths-full", "FULL-BATHS"),
                    ("baths-half", "HALF-BATHS"),
                    ("floors", "FLOORING"), ("heating", "HEATING"),
                    ("cooling", "COOLING"), ("appliances", "APPLIANCES")])),
                Group("structure", "EXTERIOR-INFO", _leaves([
                    ("lot", "LOT-SIZE"), ("built", "YEAR-BUILT"),
                    ("parking", "GARAGE"),
                    ("roofing", "ROOF"), ("siding", "SIDING"),
                    ("pool", "POOL"), ("fenced", "FENCE")])),
                Group("dues-info", "COMMUNITY-INFO", _leaves([
                    ("development", "SUBDIVISION")])),
                Group("tax-info", "FINANCIAL-INFO", _leaves([
                    ("taxes", "TAXES")])),
                Group("services", "UTILITY-INFO", _leaves([
                    ("water", "WATER"), ("sewer", "SEWER")])),
                Group("contact", "CONTACT-INFO", [
                    Group("realtor", "AGENT-INFO", _leaves([
                        ("realtor-name", "AGENT-NAME"),
                        ("cell", "AGENT-PHONE")])),
                    Group("brokerage", "OFFICE-INFO", _leaves([
                        ("brokerage-name", "OFFICE-NAME"),
                        ("main-line", "OFFICE-PHONE")])),
                ]),
            ]),
        # Newspaper-classified style: flatter inside groups, 36 tags.
        SourceDef(
            name="nwclassifieds.com", root_tag="ad", n_listings=1400,
            style={"phone_format": "dot", "price_format": "symbol_space",
                   "county_style": "suffixed", "state_style": "full"},
            tree=[
                Group("header", "GENERAL-INFO", _leaves([
                    ("ad-number", "MLS-ID"), ("ad-status", "STATUS"),
                    ("cost", "PRICE"), ("text", "DESCRIPTION")])),
                Group("place", "LOCATION-INFO", _leaves([
                    ("street-address", "ADDRESS"), ("city", "CITY"),
                    ("state", "STATE"), ("zip-code", "ZIP"),
                    ("county", "COUNTY"), ("district-name",
                                           "SCHOOL-DISTRICT")])),
                Group("home-details", "INTERIOR-INFO", _leaves([
                    ("br", "BEDS"), ("full-ba", "FULL-BATHS"),
                    ("half-ba", "HALF-BATHS"), ("area-sqft", "SQFT"),
                    ("heat", "HEATING"), ("ac", "COOLING"),
                    ("fireplace-count", "FIREPLACES")])),
                Group("yard-details", "EXTERIOR-INFO", _leaves([
                    ("lot-acres", "LOT-SIZE"), ("yr", "YEAR-BUILT"),
                    ("floors", "STORIES"), ("garage-type", "GARAGE"),
                    ("view-type", "VIEW"), ("water-front", "WATERFRONT")])),
                Group("money", "FINANCIAL-INFO", _leaves([
                    ("property-tax", "TAXES"),
                    ("valuation", "ASSESSMENT")])),
                Group("seller", "CONTACT-INFO", [
                    Group("agent-details", "AGENT-INFO", _leaves([
                        ("contact-name", "AGENT-NAME"),
                        ("contact-phone", "AGENT-PHONE")])),
                    Group("office-details", "OFFICE-INFO", _leaves([
                        ("company", "OFFICE-NAME"),
                        ("company-phone", "OFFICE-PHONE"),
                        ("company-address", "OFFICE-ADDRESS")])),
                ]),
                Group("showing", "OPEN-HOUSE-INFO", _leaves([
                    ("open-date", "OPEN-DATE"),
                    ("open-hour", "OPEN-TIME")])),
            ]),
        # County assessor-flavoured feed: 38 tags, data-heavy names.
        SourceDef(
            name="assessor-feed.gov", root_tag="parcel", n_listings=1900,
            style={"phone_format": "plain", "price_format": "plain",
                   "bool_style": "true_false", "date_style": "iso",
                   "time_style": "military"},
            tree=[
                Group("record", "GENERAL-INFO", _leaves([
                    ("record-id", "MLS-ID"), ("record-date",
                                              "LISTING-DATE"),
                    ("sale-price", "PRICE"), ("notes", "DESCRIPTION")])),
                Group("situs", "LOCATION-INFO", [
                    *_leaves([
                        ("situs-address", "ADDRESS"),
                        ("situs-city", "CITY"), ("situs-state", "STATE"),
                        ("situs-zip", "ZIP"), ("county-id", "COUNTY"),
                        ("plat-name", "AREA-NAME")]),
                    Group("school-zones", "SCHOOL-INFO", _leaves([
                        ("elementary-zone", "ELEMENTARY-SCHOOL"),
                        ("middle-zone", "MIDDLE-SCHOOL"),
                        ("high-zone", "HIGH-SCHOOL"),
                        ("district", "SCHOOL-DISTRICT")])),
                ]),
                Group("improvements", "INTERIOR-INFO", _leaves([
                    ("bedroom-count", "BEDS"),
                    ("bath-full-count", "FULL-BATHS"),
                    ("bath-half-count", "HALF-BATHS"),
                    ("finished-sqft", "SQFT"),
                    ("heat-system", "HEATING"),
                    ("basement-flag", "BASEMENT")])),
                Group("land", "EXTERIOR-INFO", _leaves([
                    ("acreage", "LOT-SIZE"), ("year-built", "YEAR-BUILT"),
                    ("story-count", "STORIES"), ("garage-desc", "GARAGE"),
                    ("roof-material", "ROOF"),
                    ("siding-material", "SIDING")])),
                Group("assessment-data", "FINANCIAL-INFO", _leaves([
                    ("levy-amount", "TAXES"), ("levy-year", "TAX-YEAR"),
                    ("assessed-value", "ASSESSMENT")])),
                Group("utility-services", "UTILITY-INFO", _leaves([
                    ("water-service", "WATER"),
                    ("sewer-service", "SEWER"),
                    ("electric-service", "ELECTRIC")])),
                Group("listing-contact", "CONTACT-INFO", [
                    Group("agent-of-record", "AGENT-INFO", _leaves([
                        ("agent", "AGENT-NAME"),
                        ("agent-telephone", "AGENT-PHONE")])),
                    Group("firm-of-record", "OFFICE-INFO", _leaves([
                        ("firm", "OFFICE-NAME"),
                        ("firm-address", "OFFICE-ADDRESS")])),
                ]),
            ]),
        # Boutique agency site: 33 tags, chatty names.
        SourceDef(
            name="dreamhomes.com", root_tag="dream-home",
            n_listings=502,
            style={"phone_format": "paren",
                   "price_format": "symbol_comma",
                   "street_style": "verbose", "sqft_style": "unit"},
            tree=[
                Group("the-basics", "GENERAL-INFO", _leaves([
                    ("reference", "MLS-ID"), ("offered-at", "PRICE"),
                    ("about-this-home", "DESCRIPTION")])),
                Group("the-neighborhood", "LOCATION-INFO", _leaves([
                    ("address", "ADDRESS"), ("city", "CITY"),
                    ("state", "STATE"), ("zip", "ZIP"),
                    ("neighborhood", "AREA-NAME"),
                    ("how-to-find-us", "DIRECTIONS")])),
                Group("the-interior", "INTERIOR-INFO", _leaves([
                    ("bedrooms", "BEDS"), ("bathrooms", "FULL-BATHS"),
                    ("powder-rooms", "HALF-BATHS"),
                    ("living-space", "SQFT"),
                    ("cozy-fireplaces", "FIREPLACES"),
                    ("kitchen-appliances", "APPLIANCES")])),
                Group("the-exterior", "EXTERIOR-INFO", _leaves([
                    ("grounds", "LOT-SIZE"), ("vintage", "YEAR-BUILT"),
                    ("swimming-pool", "POOL"),
                    ("the-view", "VIEW"), ("private-fence", "FENCE")])),
                Group("the-community", "COMMUNITY-INFO", _leaves([
                    ("estate-name", "SUBDIVISION"),
                    ("association-fee", "HOA-FEE"),
                    ("perks", "AMENITIES")])),
                Group("your-agent", "CONTACT-INFO", [
                    Group("agent-card", "AGENT-INFO", _leaves([
                        ("agent-name", "AGENT-NAME"),
                        ("direct-line", "AGENT-PHONE"),
                        ("agent-email", "AGENT-EMAIL")])),
                    Group("office-card", "OFFICE-INFO", _leaves([
                        ("agency", "OFFICE-NAME"),
                        ("agency-phone", "OFFICE-PHONE")])),
                ]),
                Group("visit-us", "OPEN-HOUSE-INFO", _leaves([
                    ("visit-date", "OPEN-DATE"),
                    ("visit-time", "OPEN-TIME")])),
            ]),
    ]


def domain_synonyms() -> SynonymDictionary:
    synonyms = _re1_synonyms()
    synonyms.add_group(("mls", "reference", "record", "ad", "listing"))
    synonyms.add_group(("taxes", "levy", "tax"))
    synonyms.add_group(("assessment", "valuation", "assessed"))
    synonyms.add_group(("subdivision", "development", "estate", "plat"))
    synonyms.add_group(("neighborhood", "area"))
    return synonyms


def build(seed: int = 0) -> Domain:
    """Construct the Real Estate II domain."""
    return Domain(
        name="real_estate_2",
        title="Real Estate II",
        mediated_schema=MEDIATED_DTD,
        source_defs=_sources(),
        make_record=make_real_estate_record,
        formatters=_formatters(),
        constraints=parse_constraints(CONSTRAINTS),
        synonyms=domain_synonyms(),
        recognizers=recognizers,
        seed=seed,
    )
