"""The Faculty Listings domain (Table 3, row 3): faculty profiles across
CS departments. Mediated schema: 14 tags, 4 non-leaf, depth 3; five small
sources (32-73 profiles, 13-14 tags, 100% matchable).
"""

from __future__ import annotations

import random

from ..constraints import parse_constraints
from ..learners import GazetteerRecognizer
from ..text import SynonymDictionary, default_synonyms
from . import vocab
from .base import Domain, Group, Leaf, Record, SourceDef
from .values import email_for, format_phone, phone_digits, pick, sample

MEDIATED_DTD = """
<!ELEMENT FACULTY-MEMBER (NAME-INFO, TITLE, DEGREE, ALMA-MATER,
                          CONTACT-INFO, RESEARCH-INFO)>
<!ELEMENT NAME-INFO (FIRST-NAME, LAST-NAME)>
<!ELEMENT FIRST-NAME (#PCDATA)>
<!ELEMENT LAST-NAME (#PCDATA)>
<!ELEMENT TITLE (#PCDATA)>
<!ELEMENT DEGREE (#PCDATA)>
<!ELEMENT ALMA-MATER (#PCDATA)>
<!ELEMENT CONTACT-INFO (EMAIL, OFFICE-PHONE, OFFICE-LOCATION)>
<!ELEMENT EMAIL (#PCDATA)>
<!ELEMENT OFFICE-PHONE (#PCDATA)>
<!ELEMENT OFFICE-LOCATION (#PCDATA)>
<!ELEMENT RESEARCH-INFO (RESEARCH-AREA, HOMEPAGE)>
<!ELEMENT RESEARCH-AREA (#PCDATA)>
<!ELEMENT HOMEPAGE (#PCDATA)>
"""

CONSTRAINTS = """
# Faculty Listings domain constraints.
frequency FIRST-NAME at-most 1
frequency LAST-NAME at-most 1
frequency TITLE at-most 1
frequency DEGREE at-most 1
frequency ALMA-MATER at-most 1
frequency EMAIL at-most 1
frequency OFFICE-PHONE at-most 1
frequency OFFICE-LOCATION at-most 1
frequency RESEARCH-AREA at-most 2
frequency HOMEPAGE at-most 1
nesting NAME-INFO contains FIRST-NAME
nesting NAME-INFO contains LAST-NAME
nesting CONTACT-INFO contains EMAIL
nesting NAME-INFO excludes RESEARCH-AREA
contiguous FIRST-NAME LAST-NAME
proximity FIRST-NAME LAST-NAME
"""


def make_faculty_record(rng: random.Random) -> Record:
    """One coherent faculty profile."""
    first = pick(rng, vocab.FIRST_NAMES)
    last = pick(rng, vocab.LAST_NAMES)
    university = pick(rng, vocab.UNIVERSITIES)
    areas = sample(rng, vocab.RESEARCH_AREAS, rng.randint(2, 3))
    title = pick(rng, vocab.ACADEMIC_TITLES)
    if rng.random() < 0.4:
        # Real titles often carry the field, overlapping RESEARCH-AREA
        # vocabulary ("Professor of Computer Science").
        title += " of Computer Science"
    return {
        "first": first,
        "last": last,
        "title": title,
        # Real profile pages write "PhD, MIT, 1992" — the degree field
        # frequently mentions the alma mater, confusing content learners.
        "degree": (f"{pick(rng, vocab.DEGREES)}, {university}, "
                   f"{rng.randint(1965, 1999)}"
                   if rng.random() < 0.5 else pick(rng, vocab.DEGREES)),
        "alma_mater": university,
        "email": email_for(first, last, "cs.example.edu", rng),
        "phone": phone_digits(rng),
        "building": pick(rng, vocab.BUILDINGS),
        "room": rng.randint(100, 699),
        # Research blurbs name-drop the alma mater and collaborators,
        # overlapping ALMA-MATER and name vocabulary.
        "areas": (areas + [f"joint projects with {university}"]
                  if rng.random() < 0.35 else areas),
        "homepage": (f"http://www.cs.example.edu/~{last.lower()}"),
        "fax": phone_digits(rng),
    }


def faculty_formatters() -> dict:
    return {
        "FIRST-NAME": lambda r, s, g: r["first"],
        "LAST-NAME": lambda r, s, g: r["last"],
        "TITLE": lambda r, s, g: r["title"],
        "DEGREE": lambda r, s, g: r["degree"],
        "ALMA-MATER": lambda r, s, g: r["alma_mater"],
        "EMAIL": lambda r, s, g: r["email"],
        "OFFICE-PHONE": lambda r, s, g: format_phone(r["phone"], s),
        "OFFICE-LOCATION": lambda r, s, g: (
            f"{r['building']} {r['room']}"
            if s.get("office_style") != "room_first"
            else f"Room {r['room']}, {r['building']}"),
        "RESEARCH-AREA": lambda r, s, g: ", ".join(r["areas"]),
        "HOMEPAGE": lambda r, s, g: r["homepage"],
        "fax_number": lambda r, s, g: format_phone(r["fax"], s),
    }


def _sources() -> list[SourceDef]:
    return [
        SourceDef(
            name="washington.edu", root_tag="faculty", n_listings=73,
            style={"phone_format": "paren"},
            tree=[
                Group("name", "NAME-INFO", [
                    Leaf("fname", "FIRST-NAME"),
                    Leaf("lname", "LAST-NAME"),
                ]),
                Leaf("position", "TITLE"),
                Leaf("degree", "DEGREE"),
                Leaf("doctorate-from", "ALMA-MATER"),
                Group("contact", "CONTACT-INFO", [
                    Leaf("email", "EMAIL"),
                    Leaf("phone", "OFFICE-PHONE"),
                    Leaf("office", "OFFICE-LOCATION"),
                ]),
                Group("research", "RESEARCH-INFO", [
                    Leaf("interests", "RESEARCH-AREA"),
                    Leaf("web-page", "HOMEPAGE"),
                ]),
            ]),
        SourceDef(
            name="wisc.edu", root_tag="professor", n_listings=58,
            style={"phone_format": "dash", "office_style": "room_first"},
            tree=[
                Group("full-name", "NAME-INFO", [
                    Leaf("first", "FIRST-NAME"),
                    Leaf("last", "LAST-NAME"),
                ]),
                Leaf("rank", "TITLE"),
                Leaf("highest-degree", "DEGREE"),
                Leaf("university", "ALMA-MATER"),
                Group("how-to-reach", "CONTACT-INFO", [
                    Leaf("e-mail", "EMAIL"),
                    Leaf("telephone", "OFFICE-PHONE"),
                    Leaf("room", "OFFICE-LOCATION"),
                ]),
                Group("work", "RESEARCH-INFO", [
                    Leaf("research-areas", "RESEARCH-AREA"),
                    Leaf("url", "HOMEPAGE"),
                ]),
            ]),
        SourceDef(
            name="cornell.edu", root_tag="member", n_listings=46,
            style={"phone_format": "dot"},
            tree=[
                Group("person", "NAME-INFO", [
                    Leaf("given-name", "FIRST-NAME"),
                    Leaf("surname", "LAST-NAME"),
                ]),
                Leaf("academic-title", "TITLE"),
                Leaf("diploma", "DEGREE"),
                Leaf("phd-institution", "ALMA-MATER"),
                Group("coordinates", "CONTACT-INFO", [
                    Leaf("mail", "EMAIL"),
                    Leaf("extension", "OFFICE-PHONE"),
                    Leaf("location", "OFFICE-LOCATION"),
                ]),
                Group("scholarship", "RESEARCH-INFO", [
                    Leaf("specialties", "RESEARCH-AREA"),
                    Leaf("homepage", "HOMEPAGE"),
                ]),
            ]),
        SourceDef(
            name="utexas.edu", root_tag="staff-member", n_listings=39,
            style={"phone_format": "plain"},
            tree=[
                Group("name-parts", "NAME-INFO", [
                    Leaf("first-name", "FIRST-NAME"),
                    Leaf("family-name", "LAST-NAME"),
                ]),
                Leaf("job-title", "TITLE"),
                Leaf("degree-earned", "DEGREE"),
                Leaf("alma-mater", "ALMA-MATER"),
                Group("contact-details", "CONTACT-INFO", [
                    Leaf("email-address", "EMAIL"),
                    Leaf("office-phone", "OFFICE-PHONE"),
                    Leaf("office-number", "OFFICE-LOCATION"),
                ]),
                Group("research-profile", "RESEARCH-INFO", [
                    Leaf("focus", "RESEARCH-AREA"),
                    Leaf("personal-page", "HOMEPAGE"),
                ]),
            ]),
        SourceDef(
            name="gatech-faculty.edu", root_tag="listing", n_listings=32,
            style={"phone_format": "dash", "office_style": "room_first"},
            tree=[
                Group("who", "NAME-INFO", [
                    Leaf("forename", "FIRST-NAME"),
                    Leaf("lastname", "LAST-NAME"),
                ]),
                Leaf("appointment", "TITLE"),
                Leaf("credential", "DEGREE"),
                Leaf("doctoral-school", "ALMA-MATER"),
                Group("reach", "CONTACT-INFO", [
                    Leaf("electronic-mail", "EMAIL"),
                    Leaf("desk-phone", "OFFICE-PHONE"),
                    Leaf("office-room", "OFFICE-LOCATION"),
                ]),
                Group("expertise", "RESEARCH-INFO", [
                    Leaf("topics", "RESEARCH-AREA"),
                    Leaf("website", "HOMEPAGE"),
                ]),
            ]),
    ]


def domain_synonyms() -> SynonymDictionary:
    # Only the generic built-in dictionary: a fresh faculty-listing
    # mediated schema would not ship with profile-specific synonyms, and
    # several source names (rank, extension, coordinates) are exactly the
    # partial/vacuous names §3.3 warns the name matcher about.
    return default_synonyms()


def recognizers() -> list:
    """University-name gazetteer (analogous to the county recognizer)."""
    return [
        GazetteerRecognizer("ALMA-MATER", vocab.UNIVERSITIES,
                            name="university_recognizer"),
    ]


def build(seed: int = 0) -> Domain:
    """Construct the Faculty Listings domain."""
    return Domain(
        name="faculty",
        title="Faculty Listings",
        mediated_schema=MEDIATED_DTD,
        source_defs=_sources(),
        make_record=make_faculty_record,
        formatters=faculty_formatters(),
        constraints=parse_constraints(CONSTRAINTS),
        synonyms=domain_synonyms(),
        recognizers=recognizers,
        seed=seed,
    )
