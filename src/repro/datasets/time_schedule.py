"""The Time Schedule domain (Table 3, row 2): course offerings across
universities. Mediated schema: 23 tags, 6 non-leaf, depth 4; five sources
with 704-3925 listings and 15-19 tags, 95-100% matchable.
"""

from __future__ import annotations

import random

from ..constraints import parse_constraints
from ..learners import RegexRecognizer
from ..text import SynonymDictionary, default_synonyms
from . import vocab
from .base import Domain, Group, Leaf, Record, SourceDef
from .values import (email_for, format_person, format_time, pick)

MEDIATED_DTD = """
<!ELEMENT COURSE-OFFERING (SLN, SEMESTER, COURSE-INFO, SECTION-INFO,
                           INSTRUCTOR-INFO, NOTES)>
<!ELEMENT SLN (#PCDATA)>
<!ELEMENT SEMESTER (#PCDATA)>
<!ELEMENT COURSE-INFO (COURSE-CODE, COURSE-TITLE, CREDITS, DEPARTMENT)>
<!ELEMENT COURSE-CODE (#PCDATA)>
<!ELEMENT COURSE-TITLE (#PCDATA)>
<!ELEMENT CREDITS (#PCDATA)>
<!ELEMENT DEPARTMENT (#PCDATA)>
<!ELEMENT SECTION-INFO (SECTION-NUMBER, ENROLLMENT, LIMIT, SCHEDULE,
                        ROOM-INFO)>
<!ELEMENT SECTION-NUMBER (#PCDATA)>
<!ELEMENT ENROLLMENT (#PCDATA)>
<!ELEMENT LIMIT (#PCDATA)>
<!ELEMENT SCHEDULE (DAYS, START-TIME, END-TIME)>
<!ELEMENT DAYS (#PCDATA)>
<!ELEMENT START-TIME (#PCDATA)>
<!ELEMENT END-TIME (#PCDATA)>
<!ELEMENT ROOM-INFO (BUILDING, ROOM-NUMBER)>
<!ELEMENT BUILDING (#PCDATA)>
<!ELEMENT ROOM-NUMBER (#PCDATA)>
<!ELEMENT INSTRUCTOR-INFO (INSTRUCTOR-NAME, INSTRUCTOR-EMAIL)>
<!ELEMENT INSTRUCTOR-NAME (#PCDATA)>
<!ELEMENT INSTRUCTOR-EMAIL (#PCDATA)>
<!ELEMENT NOTES (#PCDATA)>
"""

CONSTRAINTS = """
# Time Schedule domain constraints.
key SLN
frequency SLN at-most 1
frequency SEMESTER at-most 1
frequency COURSE-CODE at-most 1
frequency COURSE-TITLE at-most 1
frequency CREDITS at-most 1
frequency DEPARTMENT at-most 1
frequency SECTION-NUMBER at-most 1
frequency ENROLLMENT at-most 1
frequency LIMIT at-most 1
frequency DAYS at-most 1
frequency START-TIME at-most 1
frequency END-TIME at-most 1
frequency BUILDING at-most 1
frequency ROOM-NUMBER at-most 1
frequency INSTRUCTOR-NAME at-most 1
frequency INSTRUCTOR-EMAIL at-most 1
nesting SCHEDULE contains DAYS
nesting SCHEDULE contains START-TIME
nesting ROOM-INFO contains BUILDING
nesting COURSE-INFO contains COURSE-CODE
nesting SCHEDULE excludes INSTRUCTOR-NAME
contiguous START-TIME END-TIME
proximity BUILDING ROOM-NUMBER
proximity START-TIME END-TIME
"""


def make_schedule_record(rng: random.Random) -> Record:
    """One coherent course-offering record."""
    dept_code, dept_name = pick(rng, vocab.DEPARTMENTS)
    number = rng.randint(100, 599)
    start = rng.randint(16, 34) * 30  # 8:00am .. 5:00pm
    duration = pick(rng, (50, 80, 110))
    limit = pick(rng, (20, 25, 30, 40, 60, 90, 120, 200))
    first = pick(rng, vocab.FIRST_NAMES)
    last = pick(rng, vocab.LAST_NAMES)
    return {
        "dept_code": dept_code,
        "dept_name": dept_name,
        "course_number": number,
        "title": pick(rng, vocab.COURSE_TOPICS),
        "credits": rng.randint(1, 5),
        "section": pick(rng, ("A", "B", "C", "01", "02", "1", "2")),
        "enrollment": rng.randint(0, limit),
        "limit": limit,
        "days": pick(rng, vocab.DAY_PATTERNS),
        "start": start,
        "end": start + duration,
        "building": pick(rng, vocab.BUILDINGS),
        "room": rng.randint(100, 499),
        "instructor_first": first,
        "instructor_last": last,
        "instructor_email": email_for(first, last, "u.example.edu", rng),
        "semester": pick(rng, vocab.SEMESTERS),
        "notes": _make_notes(rng, first, last),
    }


def _make_notes(rng: random.Random, first: str, last: str) -> str:
    """Course notes that name-drop the instructor and a building —
    vocabulary overlap that makes flat content learners confuse NOTES
    with INSTRUCTOR-NAME and BUILDING."""
    note = pick(rng, vocab.COURSE_NOTES)
    if rng.random() < 0.5:
        note += f" See {first} {last} for an add code."
    if rng.random() < 0.3:
        note += f" Meets in {pick(rng, vocab.BUILDINGS)}."
    return note


def schedule_formatters() -> dict:
    return {
        "SLN": lambda r, s, g: str(10001 + r["_index"]),
        "SEMESTER": lambda r, s, g: r["semester"],
        "COURSE-CODE": lambda r, s, g: (
            f"{r['dept_code']} {r['course_number']}"
            if s.get("code_style") == "spaced"
            else f"{r['dept_code']}{r['course_number']}"),
        "COURSE-TITLE": lambda r, s, g: r["title"],
        "CREDITS": lambda r, s, g: (f"{r['credits']} cr"
                                    if s.get("credit_style") == "unit"
                                    else str(r["credits"])),
        "DEPARTMENT": lambda r, s, g: (r["dept_code"]
                                       if s.get("dept_style") == "code"
                                       else r["dept_name"]),
        "SECTION-NUMBER": lambda r, s, g: r["section"],
        "ENROLLMENT": lambda r, s, g: str(r["enrollment"]),
        "LIMIT": lambda r, s, g: str(r["limit"]),
        "DAYS": lambda r, s, g: r["days"],
        "START-TIME": lambda r, s, g: format_time(r["start"], s),
        "END-TIME": lambda r, s, g: format_time(r["end"], s),
        "BUILDING": lambda r, s, g: r["building"],
        "ROOM-NUMBER": lambda r, s, g: str(r["room"]),
        "INSTRUCTOR-NAME": lambda r, s, g: format_person(
            r["instructor_first"], r["instructor_last"], s),
        "INSTRUCTOR-EMAIL": lambda r, s, g: r["instructor_email"],
        "NOTES": lambda r, s, g: r["notes"],
        "catalog_url": lambda r, s, g: (
            f"http://catalog.example.edu/{r['dept_code'].lower()}"
            f"{r['course_number']}.html"),
        "fee": lambda r, s, g: f"${g.randint(0, 12) * 5}",
    }


def _sources() -> list[SourceDef]:
    return [
        # Structured like the mediated schema (a university time schedule).
        SourceDef(
            name="uw.edu", root_tag="offering", n_listings=3925,
            style={"code_style": "spaced", "dept_style": "name"},
            tree=[
                Leaf("sln", "SLN"),
                Group("course", "COURSE-INFO", [
                    Leaf("course-code", "COURSE-CODE"),
                    Leaf("course-title", "COURSE-TITLE"),
                    Leaf("credits", "CREDITS"),
                    Leaf("department", "DEPARTMENT"),
                ]),
                Group("section", "SECTION-INFO", [
                    Leaf("section-id", "SECTION-NUMBER"),
                    Leaf("enrolled", "ENROLLMENT"),
                    Group("meeting-time", "SCHEDULE", [
                        Leaf("days", "DAYS"),
                        Leaf("begins", "START-TIME"),
                        Leaf("ends", "END-TIME"),
                    ]),
                    Group("place", "ROOM-INFO", [
                        Leaf("bldg", "BUILDING"),
                        Leaf("room", "ROOM-NUMBER"),
                    ]),
                ]),
                Group("instructor", "INSTRUCTOR-INFO", [
                    Leaf("name", "INSTRUCTOR-NAME"),
                ]),
            ]),
        # Flatter catalogue with military times.
        SourceDef(
            name="reed.edu", root_tag="class", n_listings=704,
            style={"time_style": "military", "dept_style": "code",
                   "name_order": "last_first"},
            tree=[
                Leaf("class-id", "SLN"),
                Leaf("term", "SEMESTER"),
                Leaf("course-num", "COURSE-CODE"),
                Leaf("title", "COURSE-TITLE"),
                Leaf("units", "CREDITS"),
                Leaf("dept", "DEPARTMENT"),
                Leaf("sect", "SECTION-NUMBER"),
                Group("when", "SCHEDULE", [
                    Leaf("meets", "DAYS"),
                    Leaf("from", "START-TIME"),
                    Leaf("to", "END-TIME"),
                ]),
                Group("where", "ROOM-INFO", [
                    Leaf("hall", "BUILDING"),
                    Leaf("room-no", "ROOM-NUMBER"),
                ]),
                Leaf("taught-by", "INSTRUCTOR-NAME"),
                Leaf("contact-email", "INSTRUCTOR-EMAIL"),
                Leaf("notes", "NOTES", optional=0.4),
            ]),
        # Enrollment-centric registrar dump.
        SourceDef(
            name="wsu.edu", root_tag="course-listing", n_listings=2880,
            style={"credit_style": "unit", "code_style": "spaced"},
            tree=[
                Leaf("line-number", "SLN"),
                Leaf("code", "COURSE-CODE"),
                Leaf("name", "COURSE-TITLE"),
                Leaf("credit-hours", "CREDITS"),
                Leaf("offering-dept", "DEPARTMENT"),
                Group("enrollment-info", "SECTION-INFO", [
                    Leaf("section", "SECTION-NUMBER"),
                    Leaf("current-enrollment", "ENROLLMENT"),
                    Leaf("enrollment-limit", "LIMIT"),
                    Group("time-info", "SCHEDULE", [
                        Leaf("day-pattern", "DAYS"),
                        Leaf("start", "START-TIME"),
                        Leaf("end", "END-TIME"),
                    ]),
                    Group("location", "ROOM-INFO", [
                        Leaf("building", "BUILDING"),
                        Leaf("room-number", "ROOM-NUMBER"),
                    ]),
                ]),
                Leaf("professor", "INSTRUCTOR-NAME"),
                Leaf("e-mail", "INSTRUCTOR-EMAIL"),
            ]),
        # Terse department listing without enrollment data.
        SourceDef(
            name="gatech.edu", root_tag="entry", n_listings=1100,
            style={"dept_style": "code", "time_style": "military"},
            tree=[
                Leaf("crn", "SLN"),
                Leaf("term", "SEMESTER"),
                Leaf("course", "COURSE-CODE"),
                Leaf("course-name", "COURSE-TITLE"),
                Leaf("hours", "CREDITS"),
                Leaf("school", "DEPARTMENT"),
                Leaf("sec", "SECTION-NUMBER"),
                Leaf("cap", "LIMIT"),
                Group("schedule", "SCHEDULE", [
                    Leaf("days", "DAYS"),
                    Leaf("start-time", "START-TIME"),
                    Leaf("end-time", "END-TIME"),
                ]),
                Leaf("building", "BUILDING"),
                Leaf("room", "ROOM-NUMBER"),
                Leaf("instructor", "INSTRUCTOR-NAME"),
                Leaf("lab-fee", None, concept="fee", optional=0.6),
            ]),
        # Course bulletin with verbose tag names.
        SourceDef(
            name="conncoll.edu", root_tag="course-offering",
            n_listings=950,
            style={"code_style": "spaced", "dept_style": "name",
                   "credit_style": "unit"},
            tree=[
                Leaf("registration-number", "SLN"),
                Leaf("academic-term", "SEMESTER"),
                Group("course-description", "COURSE-INFO", [
                    Leaf("course-number", "COURSE-CODE"),
                    Leaf("course-title", "COURSE-TITLE"),
                    Leaf("credit-hours", "CREDITS"),
                    Leaf("department-name", "DEPARTMENT"),
                ]),
                Group("meeting-details", "SCHEDULE", [
                    Leaf("meeting-days", "DAYS"),
                    Leaf("begin-time", "START-TIME"),
                    Leaf("finish-time", "END-TIME"),
                ]),
                Group("classroom", "ROOM-INFO", [
                    Leaf("building-name", "BUILDING"),
                    Leaf("room-num", "ROOM-NUMBER"),
                ]),
                Leaf("section-letter", "SECTION-NUMBER"),
                Leaf("seats-taken", "ENROLLMENT"),
                Leaf("faculty-name", "INSTRUCTOR-NAME"),
                Leaf("comments", "NOTES", optional=0.3),
            ]),
    ]


def domain_synonyms() -> SynonymDictionary:
    synonyms = default_synonyms()
    synonyms.add_group(("sln", "crn", "line", "registration"))
    synonyms.add_group(("quarter", "term", "semester"))
    synonyms.add_group(("enrolled", "enrollment", "seats"))
    synonyms.add_group(("capacity", "limit", "cap"))
    synonyms.add_group(("days", "meets", "meeting"))
    synonyms.add_group(("begin", "begins", "start", "from"))
    synonyms.add_group(("end", "ends", "finish", "to"))
    return synonyms


def recognizers() -> list:
    """A course-code format recognizer (the §7 suggestion)."""
    return [
        RegexRecognizer("COURSE-CODE", r"[A-Z]{2,5} ?\d{3}",
                        name="course_code_recognizer"),
    ]


def build(seed: int = 0) -> Domain:
    """Construct the Time Schedule domain."""
    return Domain(
        name="time_schedule",
        title="Time Schedule",
        mediated_schema=MEDIATED_DTD,
        source_defs=_sources(),
        make_record=make_schedule_record,
        formatters=schedule_formatters(),
        constraints=parse_constraints(CONSTRAINTS),
        synonyms=domain_synonyms(),
        recognizers=recognizers,
        seed=seed,
    )
