"""Synthetic evaluation domains standing in for the paper's web sources.

Four domains matching Table 3 of the paper: Real Estate I, Time Schedule,
Faculty Listings, and Real Estate II. See DESIGN.md §3 for why the
substitution preserves the experimental signal.
"""

from .base import (Domain, Group, Leaf, Record, Source, SourceDef)
from .registry import DOMAIN_NAMES, load_all_domains, load_domain

__all__ = [
    "DOMAIN_NAMES", "Domain", "Group", "Leaf", "Record", "Source",
    "SourceDef", "load_all_domains", "load_domain",
]
