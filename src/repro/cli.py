"""Command-line interface for the LSD reproduction.

Five subcommands::

    python -m repro generate --domain real_estate_1 --out data/
        Materialise a synthetic evaluation domain on disk: the mediated
        DTD, the domain constraints, and per source a schema DTD, an XML
        listings file, and the ground-truth mapping.

    python -m repro train --mediated data/mediated.dtd \\
        --train data/homeseekers.com data/yahoo-homes.com \\
        [--constraints data/constraints.txt] --model model.lsd
        Train LSD on user-mapped source directories (each containing
        schema.dtd, listings.xml, mapping.txt) and save the model.

    python -m repro match --model model.lsd --schema s.dtd \\
        --listings l.xml [--feedback tag=LABEL ...] [--out mapping.txt] \\
        [--workers N] [--search bnb|astar] [--profile] \\
        [--trace-out trace.jsonl] [--report-out report.json]
        Propose 1-1 mappings for a new source; feedback constraints pin
        or re-run exactly as in §4.3. ``--workers`` fans learner
        prediction and the constraint search's root-split out over N
        threads (identical results at any count); ``--search`` picks the
        constraint strategy (incremental branch-and-bound by default);
        ``--profile`` prints the per-stage timing table; ``--trace-out``
        and ``--report-out`` turn on the observability layer and write
        the span trace (JSONL) and the run report (JSON).

    python -m repro evaluate --domain real_estate_1 --experiment ladder
        Run one of the paper's experiments and print its table.

    python -m repro analyze [lint-args ...]
        Run the project's static checker and sanitizers (the ``lsd-lint``
        console script) over the given paths; see
        ``python -m repro analyze --help`` for its options.

Mapping files are plain text: one ``source-tag = LABEL`` per line, ``#``
comments allowed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .constraints import AssignmentConstraint, parse_constraints
from .core import LSDSystem, Mapping, MediatedSchema, SourceSchema
from .core.persistence import load_system, save_system
from .datasets import DOMAIN_NAMES, load_domain
from .learners import default_learners
from .observability import (Observer, build_match_report,
                            dataset_fingerprint, resolve_observer,
                            write_report)
from .observability.metrics import M_INSTANCES
from .xmlio import parse_dtd, parse_fragments, write_dtd, write_element


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "analyze":
        # Forwarded verbatim (argparse.REMAINDER cannot pass through
        # leading option-like arguments such as ``--list-rules``).
        return _cmd_analyze_argv(argv[1:])
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


class CliError(Exception):
    """A user-facing CLI failure (bad paths, malformed inputs)."""


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LSD schema matching (SIGMOD 2001 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="materialise a synthetic domain on disk")
    generate.add_argument("--domain", required=True,
                          choices=list(DOMAIN_NAMES))
    generate.add_argument("--out", required=True, type=Path)
    generate.add_argument("--listings", type=int, default=100,
                          help="listings per source (default 100)")
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(handler=_cmd_generate)

    train = commands.add_parser(
        "train", help="train LSD on mapped source directories")
    train.add_argument("--mediated", required=True, type=Path,
                       help="mediated schema DTD file")
    train.add_argument("--train", required=True, nargs="+", type=Path,
                       metavar="SOURCE_DIR",
                       help="directories with schema.dtd, listings.xml, "
                            "mapping.txt")
    train.add_argument("--constraints", type=Path,
                       help="domain constraint declarations file")
    train.add_argument("--model", required=True, type=Path,
                       help="where to save the trained model")
    train.add_argument("--max-instances", type=int, default=100,
                       help="instance cap per tag (default 100)")
    train.add_argument("--workers", type=int, default=1,
                       help="worker threads for cross-validation fan-out "
                            "(default 1 = serial; results are identical "
                            "at any worker count)")
    train.add_argument("--trace-out", type=Path,
                       help="write the training trace (JSONL, one span "
                            "per line) to this file")
    train.set_defaults(handler=_cmd_train)

    match = commands.add_parser(
        "match", help="propose mappings for a new source")
    match.add_argument("--model", required=True, type=Path)
    match.add_argument("--schema", required=True, type=Path)
    match.add_argument("--listings", required=True, type=Path)
    match.add_argument("--feedback", nargs="*", default=[],
                       metavar="TAG=LABEL",
                       help="user corrections applied as constraints")
    match.add_argument("--top", type=int, default=3,
                       help="candidates to display per tag (default 3)")
    match.add_argument("--out", type=Path,
                       help="write the mapping to this file")
    match.add_argument("--workers", type=int, default=1,
                       help="worker threads for learner prediction "
                            "(default 1 = serial; results are identical "
                            "at any worker count)")
    match.add_argument("--search", choices=["bnb", "astar"],
                       default="bnb",
                       help="constraint-handler strategy: incremental "
                            "branch-and-bound (default) or best-first A*")
    match.add_argument("--profile", action="store_true",
                       help="print the per-stage timing/counter table "
                            "after matching")
    match.add_argument("--trace-out", type=Path,
                       help="write the run's trace (JSONL, one span per "
                            "line) to this file")
    match.add_argument("--report-out", type=Path,
                       help="write the run report (JSON: config, dataset "
                            "fingerprint, stage timings, metrics, "
                            "quality records, mapping) to this file")
    match.set_defaults(handler=_cmd_match)

    evaluate = commands.add_parser(
        "evaluate", help="run one of the paper's experiments")
    evaluate.add_argument("--domain", required=True,
                          choices=list(DOMAIN_NAMES))
    evaluate.add_argument("--experiment", default="ladder",
                          choices=["ladder", "lesion", "information",
                                   "feedback"])
    evaluate.add_argument("--listings", type=int, default=25)
    evaluate.add_argument("--trials", type=int, default=1)
    evaluate.add_argument("--splits", type=int, default=2)
    evaluate.set_defaults(handler=_cmd_evaluate)

    # ``analyze`` is dispatched in :func:`main` before argparse runs (its
    # arguments forward verbatim to lsd-lint); it is declared here only
    # so it shows up in ``repro --help``.
    commands.add_parser(
        "analyze", add_help=False,
        help="run the static checker / sanitizers (lsd-lint)")

    return parser


# ---------------------------------------------------------------------------
# generate
# ---------------------------------------------------------------------------

def _cmd_generate(args: argparse.Namespace) -> int:
    domain = load_domain(args.domain, seed=args.seed)
    out: Path = args.out
    out.mkdir(parents=True, exist_ok=True)

    (out / "mediated.dtd").write_text(write_dtd(domain.mediated_schema.dtd))
    _write_domain_constraints(domain, out / "constraints.txt")

    for source in domain.sources:
        source_dir = out / source.name
        source_dir.mkdir(exist_ok=True)
        (source_dir / "schema.dtd").write_text(write_dtd(source.schema.dtd))
        listings = source.listings(args.listings)
        body = "\n".join(write_element(l, indent=2) for l in listings)
        (source_dir / "listings.xml").write_text(body + "\n")
        (source_dir / "mapping.txt").write_text(
            _render_mapping(source.mapping))
        print(f"wrote {source_dir} ({len(listings)} listings, "
              f"{len(source.schema.tags)} tags)")
    print(f"domain {domain.title!r} written to {out}")
    return 0


def _write_domain_constraints(domain, path: Path) -> None:
    """Regenerate the domain's constraint declarations from its module."""
    from .datasets import faculty, real_estate, real_estate2, \
        time_schedule

    texts = {
        "real_estate_1": real_estate.CONSTRAINTS,
        "time_schedule": time_schedule.CONSTRAINTS,
        "faculty": faculty.CONSTRAINTS,
        "real_estate_2": real_estate2.CONSTRAINTS,
    }
    path.write_text(texts[domain.name].strip() + "\n")


# ---------------------------------------------------------------------------
# train
# ---------------------------------------------------------------------------

def _cmd_train(args: argparse.Namespace) -> int:
    observer = Observer.full() if args.trace_out else None
    obs = resolve_observer(observer)
    with obs.trace.span("run", command="train"):
        mediated = MediatedSchema(_read_dtd(args.mediated))
        constraints = []
        if args.constraints:
            constraints = parse_constraints(_read_text(args.constraints))
        system = LSDSystem(mediated, default_learners(),
                           constraints=constraints,
                           max_instances_per_tag=args.max_instances,
                           workers=args.workers)
        for source_dir in args.train:
            schema, listings, mapping = _read_source_dir(source_dir)
            system.add_training_source(schema, listings, mapping)
            print(f"added training source {source_dir} "
                  f"({len(listings)} listings)")
        system.train(observer=observer)
        save_system(system, args.model)
    if args.trace_out:
        obs.trace.write_jsonl(args.trace_out)
        print(f"trace written to {args.trace_out}")
    print(f"trained on {len(args.train)} source(s); model saved to "
          f"{args.model}")
    return 0


# ---------------------------------------------------------------------------
# match
# ---------------------------------------------------------------------------

def _cmd_match(args: argparse.Namespace) -> int:
    observer = Observer.full() if (args.trace_out or args.report_out) \
        else None
    obs = resolve_observer(observer)
    # The root span covers the whole run — model load and input parsing
    # included — so trace consumers can attribute all wall time.
    with obs.trace.span("run", command="match"):
        with obs.trace.span("load_model"):
            system = load_system(args.model)
        system.workers = args.workers
        if system.handler is not None:
            system.handler.search = args.search
        with obs.trace.span("parse_inputs"):
            schema = SourceSchema(_read_dtd(args.schema))
            listings = _read_listings(args.listings)
        feedback = [
            AssignmentConstraint(*_parse_feedback(item))
            for item in args.feedback
        ]
        result = system.match(schema, listings,
                              extra_constraints=feedback,
                              observer=observer)

    print(f"proposed mappings for {args.schema.name}:")
    for tag in sorted(result.mapping.tags()):
        candidates = ", ".join(
            f"{label}:{score:.2f}"
            for label, score in result.top_candidates(tag, args.top))
        print(f"  {tag:<20} => {result.mapping[tag]:<20} [{candidates}]")
    if args.out:
        args.out.write_text(_render_mapping(result.mapping))
        print(f"mapping written to {args.out}")
    if args.profile:
        print(f"\nstage profile (workers={args.workers}):")
        print(result.profile.table())
    if args.trace_out:
        obs.trace.write_jsonl(args.trace_out)
        print(f"trace written to {args.trace_out}")
    if args.report_out:
        report = build_match_report(
            config={"model": str(args.model),
                    "schema": str(args.schema),
                    "listings": str(args.listings),
                    "workers": args.workers,
                    "search": args.search,
                    "top": args.top,
                    "feedback": len(feedback)},
            dataset={"fingerprint": dataset_fingerprint(
                         schema.tags,
                         [listing.text_content()
                          for listing in listings]),
                     "tags": len(schema.tags),
                     "instances": obs.metrics.counter(
                         M_INSTANCES).value,
                     "listings": len(listings)},
            result=result, observer=observer)
        write_report(report, args.report_out)
        print(f"run report written to {args.report_out}")
    return 0


def _parse_feedback(item: str) -> tuple[str, str]:
    if "=" not in item:
        raise CliError(f"feedback must look like TAG=LABEL, got {item!r}")
    tag, label = item.split("=", 1)
    return tag.strip(), label.strip()


# ---------------------------------------------------------------------------
# evaluate
# ---------------------------------------------------------------------------

def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .evaluation import (ExperimentSettings, feedback_table,
                             ladder_table, run_feedback_study,
                             run_information_study, run_ladder,
                             run_lesion_study, study_table)

    domain = load_domain(args.domain, seed=0)
    settings = ExperimentSettings(
        n_listings=args.listings, trials=args.trials,
        max_splits=None if args.splits >= 10 else args.splits,
        max_instances_per_tag=args.listings)

    if args.experiment == "ladder":
        print(ladder_table({domain.name: run_ladder(domain, settings)}))
    elif args.experiment == "lesion":
        print(study_table({domain.name: run_lesion_study(domain,
                                                         settings)},
                          "Lesion study"))
    elif args.experiment == "information":
        print(study_table(
            {domain.name: run_information_study(domain, settings)},
            "Schema vs data information"))
    else:
        study = run_feedback_study(domain, settings, runs=3)
        print(feedback_table([study]))
    return 0


# ---------------------------------------------------------------------------
# analyze
# ---------------------------------------------------------------------------

def _cmd_analyze_argv(lint_args: list[str]) -> int:
    # Lazy import: the analysis package is tooling, not pipeline code,
    # and the other subcommands should not pay for loading it.
    from .analysis.cli import main as lint_main

    return lint_main(lint_args)


# ---------------------------------------------------------------------------
# file helpers
# ---------------------------------------------------------------------------

def _read_text(path: Path) -> str:
    try:
        return Path(path).read_text()
    except OSError as exc:
        raise CliError(f"cannot read {path}: {exc}") from exc


def _read_dtd(path: Path):
    from .xmlio import DTDSyntaxError

    try:
        return parse_dtd(_read_text(path))
    except DTDSyntaxError as exc:
        raise CliError(f"{path}: {exc}") from exc


def _read_listings(path: Path):
    from .xmlio import XMLSyntaxError

    try:
        return parse_fragments(_read_text(path))
    except XMLSyntaxError as exc:
        raise CliError(f"{path}: {exc}") from exc


def _read_source_dir(source_dir: Path):
    source_dir = Path(source_dir)
    if not source_dir.is_dir():
        raise CliError(f"{source_dir} is not a directory")
    schema = SourceSchema(_read_dtd(source_dir / "schema.dtd"),
                          name=source_dir.name)
    listings = _read_listings(source_dir / "listings.xml")
    mapping = _parse_mapping(_read_text(source_dir / "mapping.txt"),
                             source_dir / "mapping.txt")
    return schema, listings, mapping


def _render_mapping(mapping: Mapping) -> str:
    lines = [f"{tag} = {label}"
             for tag, label in sorted(mapping.items())]
    return "\n".join(lines) + "\n"


def _parse_mapping(text: str, origin: Path) -> Mapping:
    assignments: dict[str, str] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise CliError(
                f"{origin}:{line_number}: expected 'tag = LABEL', got "
                f"{line!r}")
        tag, label = (part.strip() for part in line.split("=", 1))
        if not tag or not label:
            raise CliError(
                f"{origin}:{line_number}: empty tag or label")
        assignments[tag] = label
    return Mapping(assignments)


if __name__ == "__main__":  # pragma: no cover - module execution
    raise SystemExit(main())
