"""Command-line interface for the LSD reproduction.

Five subcommands::

    python -m repro generate --domain real_estate_1 --out data/
        Materialise a synthetic evaluation domain on disk: the mediated
        DTD, the domain constraints, and per source a schema DTD, an XML
        listings file, and the ground-truth mapping.

    python -m repro train --mediated data/mediated.dtd \\
        --train data/homeseekers.com data/yahoo-homes.com \\
        [--constraints data/constraints.txt] --model model.lsd
        Train LSD on user-mapped source directories (each containing
        schema.dtd, listings.xml, mapping.txt) and save the model.

    python -m repro match --model model.lsd --schema s.dtd \\
        --listings l.xml [--feedback tag=LABEL ...] [--out mapping.txt] \\
        [--workers N] [--backend thread|process|serial] \\
        [--search bnb|astar] [--profile] \\
        [--trace-out trace.jsonl] [--report-out report.json]
        Propose 1-1 mappings for a new source; feedback constraints pin
        or re-run exactly as in §4.3. ``--workers`` fans learner
        prediction and the constraint search's root-split out over N
        workers (identical results at any count); ``--backend process``
        runs the prediction fan-out on a persistent worker-process pool
        sharing the model zero-copy — the backend that actually beats
        serial on CPU-bound matching; ``--search`` picks the
        constraint strategy (incremental branch-and-bound by default);
        ``--profile`` prints the per-stage timing table; ``--trace-out``
        and ``--report-out`` turn on the observability layer and write
        the span trace (JSONL) and the run report (JSON).

    python -m repro evaluate --domain real_estate_1 --experiment ladder
        Run one of the paper's experiments and print its table.

    python -m repro analyze [lint-args ...]
        Run the project's static checker and sanitizers (the ``lsd-lint``
        console script) over the given paths; see
        ``python -m repro analyze --help`` for its options.

    python -m repro ledger history|diff|check [--ledger PATH ...]
        Inspect the append-only run ledger (``.lsd/ledger.jsonl``):
        ``history`` lists recent runs, ``diff`` compares the two most
        recent comparable runs, ``check`` gates the newest run of each
        series against its trailing baseline window and exits nonzero
        on a regression.

``match`` and ``train`` additionally take live-telemetry flags:
``--serve-metrics PORT`` exposes ``/metrics`` (OpenMetrics) and
``/healthz`` over HTTP for the duration of the run, ``--events-out``
streams structured progress events (JSONL), and ``--ledger-out``
(match only) appends the run's summary to the ledger.

``match`` also takes durability flags (see :mod:`repro.runtime`):
``--checkpoint-dir``/``--resume`` make runs crash-safe — a killed run
restarted with ``--resume`` skips completed stages and produces a
byte-identical mapping — while ``--watchdog SECONDS`` supervises
worker processes and ``--rss-limit MIB`` arms the memory-pressure
guardrails. SIGTERM/SIGINT finish cleanly with best-so-far results
and flushed artifacts.

Mapping files are plain text: one ``source-tag = LABEL`` per line, ``#``
comments allowed.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import signal
import sys
import time
from pathlib import Path

from .constraints import AssignmentConstraint, parse_constraints
from .core import LSDSystem, Mapping, MediatedSchema, SourceSchema
from .core.persistence import ModelFormatError, load_system, save_system
from .datasets import DOMAIN_NAMES, load_domain
from .learners import default_learners
from .observability import (EventStream, Observer, ResourceSampler,
                            TelemetryServer, build_match_report,
                            dataset_fingerprint, resolve_observer,
                            write_report)
from .observability.events import (EV_CHECKPOINT, EV_RUN_END,
                                   EV_RUN_START)
from .observability.metrics import M_INSTANCES
from .resilience import (FaultInjected, FaultPlan, ResiliencePolicy,
                         ingest_fragments)
from .xmlio import (INGEST_MODES, parse_dtd, parse_fragments, write_dtd,
                    write_element)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "analyze":
        # Forwarded verbatim (argparse.REMAINDER cannot pass through
        # leading option-like arguments such as ``--list-rules``).
        return _cmd_analyze_argv(argv[1:])
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; the
        # conventional quiet exit (and a detached stdout so the
        # interpreter's shutdown flush cannot raise again).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


class CliError(Exception):
    """A user-facing CLI failure (bad paths, malformed inputs)."""


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LSD schema matching (SIGMOD 2001 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="materialise a synthetic domain on disk")
    generate.add_argument("--domain", required=True,
                          choices=list(DOMAIN_NAMES))
    generate.add_argument("--out", required=True, type=Path)
    generate.add_argument("--listings", type=int, default=100,
                          help="listings per source (default 100)")
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(handler=_cmd_generate)

    train = commands.add_parser(
        "train", help="train LSD on mapped source directories")
    train.add_argument("--mediated", required=True, type=Path,
                       help="mediated schema DTD file")
    train.add_argument("--train", required=True, nargs="+", type=Path,
                       metavar="SOURCE_DIR",
                       help="directories with schema.dtd, listings.xml, "
                            "mapping.txt")
    train.add_argument("--constraints", type=Path,
                       help="domain constraint declarations file")
    train.add_argument("--model", required=True, type=Path,
                       help="where to save the trained model")
    train.add_argument("--max-instances", type=int, default=100,
                       help="instance cap per tag (default 100)")
    train.add_argument("--workers", type=int, default=1,
                       help="worker threads for cross-validation fan-out "
                            "(default 1 = serial; results are identical "
                            "at any worker count)")
    train.add_argument("--trace-out", type=Path,
                       help="write the training trace (JSONL, one span "
                            "per line) to this file")
    _add_telemetry_flags(train)
    _add_resilience_flags(train)
    train.set_defaults(handler=_cmd_train)

    match = commands.add_parser(
        "match", help="propose mappings for a new source")
    match.add_argument("--model", required=True, type=Path)
    match.add_argument("--schema", required=True, type=Path)
    match.add_argument("--listings", required=True, type=Path)
    match.add_argument("--feedback", nargs="*", default=[],
                       metavar="TAG=LABEL",
                       help="user corrections applied as constraints")
    match.add_argument("--top", type=int, default=3,
                       help="candidates to display per tag (default 3)")
    match.add_argument("--out", type=Path,
                       help="write the mapping to this file")
    match.add_argument("--workers", type=int, default=1,
                       help="workers for learner prediction (default 1 "
                            "= serial; results are identical at any "
                            "worker count)")
    match.add_argument("--backend", choices=["serial", "thread",
                                             "process"],
                       default="thread",
                       help="execution backend for the prediction "
                            "fan-out: 'thread' (default; bounded "
                            "overhead but GIL-limited), 'process' "
                            "(persistent worker processes sharing the "
                            "model zero-copy — the one that beats "
                            "serial on CPU-bound matching), or "
                            "'serial'. Outputs are byte-identical "
                            "across backends")
    match.add_argument("--search", choices=["bnb", "astar"],
                       default="bnb",
                       help="constraint-handler strategy: incremental "
                            "branch-and-bound (default) or best-first A*")
    match.add_argument("--profile", action="store_true",
                       help="print the per-stage timing/counter table "
                            "after matching")
    match.add_argument("--trace-out", type=Path,
                       help="write the run's trace (JSONL, one span per "
                            "line) to this file")
    match.add_argument("--report-out", type=Path,
                       help="write the run report (JSON: config, dataset "
                            "fingerprint, stage timings, metrics, "
                            "quality records, mapping) to this file")
    _add_telemetry_flags(match)
    match.add_argument("--ledger-out", type=Path, metavar="PATH",
                       help="append this run's summary (fingerprint, "
                            "config, timings, metrics) to the run "
                            "ledger at PATH (JSONL; see 'repro ledger')")
    match.add_argument("--ledger-label", default="match",
                       help="series label for the ledger entry "
                            "(default 'match'; runs are only compared "
                            "within the same label + fingerprint)")
    _add_resilience_flags(match)
    _add_durability_flags(match)
    match.set_defaults(handler=_cmd_match)

    evaluate = commands.add_parser(
        "evaluate", help="run one of the paper's experiments")
    evaluate.add_argument("--domain", required=True,
                          choices=list(DOMAIN_NAMES))
    evaluate.add_argument("--experiment", default="ladder",
                          choices=["ladder", "lesion", "information",
                                   "feedback"])
    evaluate.add_argument("--listings", type=int, default=25)
    evaluate.add_argument("--trials", type=int, default=1)
    evaluate.add_argument("--splits", type=int, default=2)
    evaluate.set_defaults(handler=_cmd_evaluate)

    # ``analyze`` is dispatched in :func:`main` before argparse runs (its
    # arguments forward verbatim to lsd-lint); it is declared here only
    # so it shows up in ``repro --help``.
    commands.add_parser(
        "analyze", add_help=False,
        help="run the static checker / sanitizers (lsd-lint)")

    ledger = commands.add_parser(
        "ledger", help="inspect the run ledger and gate regressions")
    ledger.add_argument("action",
                        choices=["history", "diff", "check"],
                        help="history: list recent runs; diff: compare "
                             "the two newest comparable runs; check: "
                             "gate the newest run of each series "
                             "against its trailing baseline (nonzero "
                             "exit on regression)")
    ledger.add_argument("--ledger", type=Path,
                        default=None, metavar="PATH",
                        help="ledger file (default .lsd/ledger.jsonl)")
    ledger.add_argument("--label",
                        help="restrict to one series label")
    ledger.add_argument("--limit", type=int, default=20,
                        help="history rows to show (default 20)")
    ledger.add_argument("--window", type=int, default=None,
                        help="baseline window size for check "
                             "(default 3)")
    ledger.add_argument("--max-slowdown", type=float, default=None,
                        help="check fails when total seconds exceed "
                             "the baseline mean by this factor "
                             "(default 1.5)")
    ledger.add_argument("--max-accuracy-drop", type=float,
                        default=None,
                        help="check fails when accuracy drops more "
                             "than this below the baseline best "
                             "(default 0.02)")
    ledger.set_defaults(handler=_cmd_ledger)

    return parser


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "telemetry",
        "live telemetry (all off by default; see repro.observability)")
    group.add_argument("--serve-metrics", type=int, metavar="PORT",
                       help="serve /metrics (OpenMetrics) and /healthz "
                            "on this port for the duration of the run "
                            "(0 = ephemeral port; the bound address is "
                            "printed)")
    group.add_argument("--serve-grace", type=float, default=0.0,
                       metavar="SECONDS",
                       help="keep the metrics endpoint up this many "
                            "seconds after the run finishes, so an "
                            "external scraper can read final values "
                            "(default 0)")
    group.add_argument("--events-out", type=Path, metavar="PATH",
                       help="stream structured progress events (JSONL: "
                            "stage boundaries, shard heartbeats, "
                            "degradation notices) to this file")


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "resilience",
        "fault tolerance and graceful degradation (all off by default; "
        "degraded runs are reported in the run report's 'degradation' "
        "section)")
    group.add_argument("--input-mode", choices=list(INGEST_MODES),
                       default="strict",
                       help="how to ingest listings XML: 'strict' "
                            "rejects malformed input (default), "
                            "'lenient' repairs what it can, 'salvage' "
                            "keeps only well-formed listings")
    group.add_argument("--fault-plan", type=Path,
                       help="JSON fault-injection plan for chaos "
                            "testing (see repro.resilience)")
    group.add_argument("--retries", type=int, default=0,
                       help="retry budget per parallel task (default 0)")
    group.add_argument("--backoff", type=float, default=0.05,
                       help="base seconds for seeded exponential retry "
                            "backoff (default 0.05)")
    group.add_argument("--deadline", type=float,
                       help="overall seconds budget; the constraint "
                            "search returns its best-so-far mapping "
                            "when it expires")
    group.add_argument("--learner-timeout", type=float,
                       help="per-call seconds cap on base-learner "
                            "fit/predict; a learner that exceeds it is "
                            "quarantined for the run")


def _add_durability_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "durability",
        "crash-safe checkpointing, watchdog supervision, and memory "
        "guardrails (all off by default; see repro.runtime)")
    group.add_argument("--checkpoint-dir", type=Path, metavar="DIR",
                       help="persist per-stage checkpoints under "
                            "DIR/<run-key>/ (atomic, versioned); a "
                            "killed run restarted with --resume skips "
                            "completed stages and produces a "
                            "byte-identical mapping")
    group.add_argument("--resume", action="store_true",
                       help="resume from the checkpoint under "
                            "--checkpoint-dir: completed stages load "
                            "from disk and the constraint search "
                            "warm-starts from its last saved incumbent")
    group.add_argument("--watchdog", type=float, metavar="SECONDS",
                       help="supervision deadline: a worker process "
                            "holding a shard longer than this is killed "
                            "and the shard re-dispatched; a fully "
                            "stalled pipeline trips the run deadline so "
                            "the search exits on its anytime path")
    group.add_argument("--rss-limit", type=float, metavar="MIB",
                       help="memory guardrail: crossing 80%%/90%%/97%% "
                            "of this RSS budget sheds feature caches, "
                            "halves the shard grain, and finally "
                            "degrades to best-so-far results instead of "
                            "being OOM-killed")


def _build_policy(args: argparse.Namespace) -> ResiliencePolicy:
    plan = None
    if args.fault_plan:
        try:
            plan = FaultPlan.from_json(_read_text(args.fault_plan))
        except ValueError as exc:
            raise CliError(f"{args.fault_plan}: {exc}") from exc
    if args.retries < 0:
        raise CliError("--retries must be >= 0")
    return ResiliencePolicy(
        input_mode=args.input_mode,
        retries=args.retries,
        backoff=args.backoff,
        deadline=args.deadline,
        learner_timeout=args.learner_timeout,
        fault_plan=plan)


def _start_telemetry(args: argparse.Namespace, command: str,
                     wants_observer: bool):
    """Build the run's telemetry stack from the CLI flags.

    Returns ``(observer, events, server, sampler)``; each element is
    ``None`` when its flag is off. Any telemetry flag forces a full
    observer — the registry must be live for the endpoint to have
    something to expose.
    """
    events = None
    if getattr(args, "events_out", None):
        events = EventStream(args.events_out)
    wants = (wants_observer or events is not None
             or getattr(args, "serve_metrics", None) is not None
             or getattr(args, "ledger_out", None))
    observer = Observer.full(events=events) if wants else None
    server = sampler = None
    if getattr(args, "serve_metrics", None) is not None:
        server = TelemetryServer(observer.metrics,
                                 port=args.serve_metrics,
                                 labels={"command": command}).start()
        print(f"serving metrics at {server.url}/metrics "
              f"(healthz at {server.url}/healthz)")
        sampler = ResourceSampler(observer.metrics).start()
    return observer, events, server, sampler


def _finish_telemetry(args: argparse.Namespace, events, server,
                      sampler, plan, report=None) -> None:
    """Publish the event stream and tear the endpoint down (after the
    optional scrape-grace window)."""
    if events is not None:
        if _emit_artifact("events", args.events_out, report,
                          lambda: events.close(plan=plan)):
            print(f"events written to {args.events_out}")
    if sampler is not None:
        sampler.close()
    if server is not None:
        if args.serve_grace > 0:
            time.sleep(args.serve_grace)
        server.close()


def _emit_artifact(artifact: str, path, report, write) -> bool:
    """Run one observability-artifact write; absorb an injected
    artifact fault (or an OS-level write failure) as a degradation.

    The run's *results* must survive the loss of its telemetry: the
    mapping is already computed and printed by the time artifacts are
    emitted, so a crash here would throw away a successful match. The
    atomic writer guarantees the destination file is never corrupted
    (``FaultInjected`` from the ``artifact.write`` site propagates up
    to exactly this boundary); this guard turns the loss into a
    recorded degradation instead of a traceback.
    """
    try:
        write()
    except (FaultInjected, OSError) as exc:
        if report is not None:
            report.artifact_failed(artifact, str(exc))
        print(f"warning: {artifact} not written to {path}: {exc}",
              file=sys.stderr)
        return False
    return True


def _load_model(path: Path) -> LSDSystem:
    try:
        return load_system(path)
    except ModelFormatError as exc:
        raise CliError(str(exc)) from exc
    except OSError as exc:
        raise CliError(f"cannot read model {path}: {exc}") from exc


def _save_model(system: LSDSystem, path: Path) -> None:
    try:
        save_system(system, path)
    except OSError as exc:
        raise CliError(f"cannot write model {path}: {exc}") from exc


# ---------------------------------------------------------------------------
# generate
# ---------------------------------------------------------------------------

def _cmd_generate(args: argparse.Namespace) -> int:
    domain = load_domain(args.domain, seed=args.seed)
    out: Path = args.out
    out.mkdir(parents=True, exist_ok=True)

    (out / "mediated.dtd").write_text(write_dtd(domain.mediated_schema.dtd))
    _write_domain_constraints(domain, out / "constraints.txt")

    for source in domain.sources:
        source_dir = out / source.name
        source_dir.mkdir(exist_ok=True)
        (source_dir / "schema.dtd").write_text(write_dtd(source.schema.dtd))
        listings = source.listings(args.listings)
        body = "\n".join(write_element(l, indent=2) for l in listings)
        (source_dir / "listings.xml").write_text(body + "\n")
        (source_dir / "mapping.txt").write_text(
            _render_mapping(source.mapping))
        print(f"wrote {source_dir} ({len(listings)} listings, "
              f"{len(source.schema.tags)} tags)")
    print(f"domain {domain.title!r} written to {out}")
    return 0


def _write_domain_constraints(domain, path: Path) -> None:
    """Regenerate the domain's constraint declarations from its module."""
    from .datasets import faculty, real_estate, real_estate2, \
        time_schedule

    texts = {
        "real_estate_1": real_estate.CONSTRAINTS,
        "time_schedule": time_schedule.CONSTRAINTS,
        "faculty": faculty.CONSTRAINTS,
        "real_estate_2": real_estate2.CONSTRAINTS,
    }
    path.write_text(texts[domain.name].strip() + "\n")


# ---------------------------------------------------------------------------
# train
# ---------------------------------------------------------------------------

def _cmd_train(args: argparse.Namespace) -> int:
    observer, events, server, sampler = _start_telemetry(
        args, "train", wants_observer=bool(args.trace_out))
    obs = resolve_observer(observer)
    policy = _build_policy(args)
    started = time.perf_counter()  # lsd: ignore[wallclock]
    obs.events.emit(EV_RUN_START, command="train")
    with obs.trace.span("run", command="train"):
        mediated = MediatedSchema(_read_dtd(args.mediated))
        constraints = []
        if args.constraints:
            constraints = parse_constraints(_read_text(args.constraints))
        system = LSDSystem(mediated, default_learners(),
                           constraints=constraints,
                           max_instances_per_tag=args.max_instances,
                           workers=args.workers,
                           policy=policy)
        for source_dir in args.train:
            schema, listings, mapping = _read_source_dir(source_dir,
                                                         policy)
            system.add_training_source(schema, listings, mapping)
            print(f"added training source {source_dir} "
                  f"({len(listings)} listings)")
        system.train(observer=observer)
        _save_model(system, args.model)
    obs.events.emit(EV_RUN_END, ok=True,
                    elapsed_seconds=time.perf_counter() - started)  # lsd: ignore[wallclock]
    if args.trace_out:
        if _emit_artifact(
                "trace", args.trace_out, policy.report,
                lambda: obs.trace.write_jsonl(args.trace_out,
                                              plan=policy.fault_plan)):
            print(f"trace written to {args.trace_out}")
    _finish_telemetry(args, events, server, sampler, policy.fault_plan,
                      policy.report)
    quarantined = policy.report.quarantined_learners
    if quarantined:
        print("WARNING: quarantined learners (training continued "
              "without them): " + ", ".join(quarantined))
    print(f"trained on {len(args.train)} source(s); model saved to "
          f"{args.model}")
    return 0


# ---------------------------------------------------------------------------
# match
# ---------------------------------------------------------------------------

def _cmd_match(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint_dir:
        raise CliError("--resume requires --checkpoint-dir")
    if args.watchdog is not None and args.watchdog <= 0:
        raise CliError("--watchdog must be > 0 seconds")
    if args.rss_limit is not None and args.rss_limit <= 0:
        raise CliError("--rss-limit must be > 0 MiB")
    policy = _build_policy(args)
    with _graceful_shutdown(policy):
        return _run_match(args, policy)


@contextlib.contextmanager
def _graceful_shutdown(policy: ResiliencePolicy):
    """SIGTERM/SIGINT land a *clean* finish instead of a traceback.

    The first signal trips the run deadline: the constraint search
    exits on its anytime path with the best-so-far mapping, and the
    run then flushes every artifact — checkpoint stages already
    committed stay committed, and the trace/report/events/ledger all
    pass through their normal end-of-run writers. A second signal
    restores the default disposition and re-delivers, so a stuck run
    can still be force-quit. Handlers are restored on exit, keeping
    in-process use (tests, notebooks) side-effect free.
    """
    seen = {"signals": 0}

    def handler(signum, frame):
        seen["signals"] += 1
        name = signal.Signals(signum).name
        if seen["signals"] > 1:
            signal.signal(signum, signal.SIG_DFL)
            os.kill(os.getpid(), signum)
            return
        print(f"received {name}: finishing with best-so-far results "
              f"(repeat to force quit)", file=sys.stderr)
        policy.report.watchdog_event("shutdown", f"{name} received")
        policy.trip_deadline()

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, handler)
        except ValueError:
            # Not the main thread (embedded use): signals stay with
            # whoever owns them.
            pass
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


def _open_checkpoint(args: argparse.Namespace,
                     policy: ResiliencePolicy, fingerprint: str):
    """Build and open the run's :class:`Checkpointer`, or ``None``
    when ``--checkpoint-dir`` is off (the default costs nothing)."""
    if not args.checkpoint_dir:
        return None
    from .runtime import Checkpointer, run_key

    key = run_key(fingerprint, search=args.search,
                  feedback=args.feedback,
                  settings={"input_mode": args.input_mode})
    checkpoint = Checkpointer(args.checkpoint_dir, key,
                              plan=policy.fault_plan,
                              report=policy.report,
                              background=True)
    checkpoint.open(resume=args.resume)
    return checkpoint


def _run_match(args: argparse.Namespace,
               policy: ResiliencePolicy) -> int:
    observer, events, server, sampler = _start_telemetry(
        args, "match",
        wants_observer=bool(args.trace_out or args.report_out))
    obs = resolve_observer(observer)
    started = time.perf_counter()  # lsd: ignore[wallclock]
    obs.events.emit(EV_RUN_START, command="match")
    # The root span covers the whole run — model load and input parsing
    # included — so trace consumers can attribute all wall time.
    with obs.trace.span("run", command="match"):
        with obs.trace.span("load_model"):
            system = _load_model(args.model)
        system.workers = args.workers
        system.backend = args.backend
        system.policy = policy
        if system.handler is not None:
            system.handler.search = args.search
        with obs.trace.span("parse_inputs"):
            schema = SourceSchema(_read_dtd(args.schema))
            listings = _read_listings(args.listings, policy)
        feedback = [
            AssignmentConstraint(*_parse_feedback(item))
            for item in args.feedback
        ]
        # The run key needs the dataset fingerprint, so it is computed
        # before matching (the report and ledger reuse it afterwards).
        fingerprint = dataset_fingerprint(
            schema.tags,
            [listing.text_content() for listing in listings])
        checkpoint = _open_checkpoint(args, policy, fingerprint)
        if checkpoint is not None:
            payload = {"run_id": checkpoint.run_id}
            if checkpoint.resumed_from:
                payload["resumed_from"] = checkpoint.resumed_from
            obs.events.emit(EV_CHECKPOINT, stage="open", **payload)
            if checkpoint.resumed_from:
                done = ", ".join(checkpoint.manifest["stages"]) or "none"
                print(f"resuming run {checkpoint.run_id} from "
                      f"{checkpoint.resumed_from} "
                      f"(stages checkpointed: {done})")
            else:
                print(f"checkpointing run {checkpoint.run_id} under "
                      f"{checkpoint.dir}")
        supervisor = monitor = None
        if args.watchdog is not None:
            from .runtime import Supervisor

            supervisor = Supervisor(
                args.watchdog,
                pool_provider=lambda: getattr(system, "_procpool",
                                              None),
                policy=policy, registry=obs.metrics)
            if obs.events.enabled:
                # Stage/shard events double as heartbeats: as long as
                # the pipeline emits, the watchdog stays quiet.
                obs.events.listener = supervisor.note_event
            supervisor.start()
        if args.rss_limit is not None:
            from .runtime import PressureMonitor

            monitor = PressureMonitor(
                int(args.rss_limit * (1 << 20)),
                policy=policy, registry=obs.metrics)
            monitor.start()
        try:
            result = system.match(schema, listings,
                                  extra_constraints=feedback,
                                  observer=observer,
                                  checkpoint=checkpoint)
        finally:
            # Process-backend hygiene: workers and the shared-memory
            # segment never outlive the command. The checkpoint closes
            # first so any absorbed write losses reach the degradation
            # report before it is rendered below.
            if checkpoint is not None:
                checkpoint.close()
            if supervisor is not None:
                supervisor.stop()
                if obs.events.enabled:
                    obs.events.listener = None
            if monitor is not None:
                monitor.stop()
            system.close_pool()
    total_seconds = time.perf_counter() - started  # lsd: ignore[wallclock]
    obs.events.emit(EV_RUN_END, ok=True, elapsed_seconds=total_seconds)

    degradation = result.degradation
    if degradation is not None and degradation.degraded:
        print("DEGRADED RUN: " + _degradation_summary(degradation),
              file=sys.stderr)
    print(f"proposed mappings for {args.schema.name}:")
    for tag in sorted(result.mapping.tags()):
        candidates = ", ".join(
            f"{label}:{score:.2f}"
            for label, score in result.top_candidates(tag, args.top))
        print(f"  {tag:<20} => {result.mapping[tag]:<20} [{candidates}]")
    if args.out:
        args.out.write_text(_render_mapping(result.mapping))
        print(f"mapping written to {args.out}")
    if args.profile:
        print(f"\nstage profile (workers={args.workers}):")
        print(result.profile.table())
    if args.trace_out:
        if _emit_artifact(
                "trace", args.trace_out, policy.report,
                lambda: obs.trace.write_jsonl(args.trace_out,
                                              plan=policy.fault_plan)):
            print(f"trace written to {args.trace_out}")
    if args.report_out:
        config = {"model": str(args.model),
                  "schema": str(args.schema),
                  "listings": str(args.listings),
                  "workers": args.workers,
                  "search": args.search,
                  "top": args.top,
                  "feedback": len(feedback)}
        # Non-default settings only: a plain strict thread-backend
        # run's report stays byte-identical to builds without these
        # flags.
        if args.backend != "thread":
            config["backend"] = args.backend
        if args.input_mode != "strict":
            config["input_mode"] = args.input_mode
        if args.fault_plan:
            config["fault_plan"] = str(args.fault_plan)
        if args.retries:
            config["retries"] = args.retries
        if args.deadline is not None:
            config["deadline"] = args.deadline
        if args.learner_timeout is not None:
            config["learner_timeout"] = args.learner_timeout
        if checkpoint is not None:
            config["run_id"] = checkpoint.run_id
            if checkpoint.resumed_from:
                config["resumed_from"] = checkpoint.resumed_from
        report = build_match_report(
            config=config,
            dataset={"fingerprint": fingerprint,
                     "tags": len(schema.tags),
                     "instances": obs.metrics.counter(
                         M_INSTANCES).value,
                     "listings": len(listings)},
            result=result, observer=observer)
        if _emit_artifact(
                "report", args.report_out, policy.report,
                lambda: write_report(report, args.report_out,
                                     plan=policy.fault_plan)):
            print(f"run report written to {args.report_out}")
    if args.ledger_out:
        from .observability import ledger as run_ledger

        entry = run_ledger.build_entry(
            label=args.ledger_label,
            fingerprint=fingerprint,
            created=time.time(),  # lsd: ignore[wallclock]
            config={"workers": args.workers,
                    "backend": args.backend,
                    "search": args.search},
            host=run_ledger.host_info(backend=args.backend,
                                      workers=args.workers),
            timings={**result.timings, "total": total_seconds},
            metrics={"instances": obs.metrics.counter(
                         M_INSTANCES).value,
                     "tags": len(schema.tags)},
            run_id=checkpoint.run_id
            if checkpoint is not None else None,
            resumed_from=checkpoint.resumed_from
            if checkpoint is not None else None)
        if _emit_artifact(
                "ledger", args.ledger_out, policy.report,
                lambda: run_ledger.append_entry(
                    entry, args.ledger_out,
                    plan=policy.fault_plan)):
            print(f"ledger entry appended to {args.ledger_out}")
    _finish_telemetry(args, events, server, sampler, policy.fault_plan,
                      policy.report)
    return 0


def _degradation_summary(degradation) -> str:
    """One terminal line naming everything the run absorbed."""
    parts: list[str] = []
    quarantined = degradation.quarantined_learners
    if quarantined:
        parts.append("quarantined learners: " + ", ".join(quarantined))
    recovery = degradation.recovery
    if recovery is not None and not recovery.ok:
        parts.append(f"listings recovered={len(recovery.recovered)} "
                     f"dropped={len(recovery.dropped)}")
    if degradation.retries:
        parts.append(f"task retries: {len(degradation.retries)}")
    if degradation.pool_failures:
        parts.append("pool fell back to serial: "
                     + ", ".join(sorted(set(degradation.pool_failures))))
    if degradation.worker_deaths:
        parts.append(f"worker deaths: {len(degradation.worker_deaths)}")
    if degradation.watchdog:
        kinds = sorted({event["kind"] for event in degradation.watchdog})
        parts.append("watchdog: " + ", ".join(kinds))
    if degradation.pressure_events:
        actions = sorted({event["action"]
                          for event in degradation.pressure_events})
        parts.append("memory pressure: " + ", ".join(actions))
    if degradation.anytime:
        parts.append("anytime search exit")
    if degradation.fired_faults:
        parts.append(f"injected faults: {len(degradation.fired_faults)}")
    if degradation.artifact_failures:
        lost = sorted({f["artifact"] for f in
                       degradation.artifact_failures})
        parts.append("artifacts not written: " + ", ".join(lost))
    return "; ".join(parts) if parts else "degraded"


def _parse_feedback(item: str) -> tuple[str, str]:
    if "=" not in item:
        raise CliError(f"feedback must look like TAG=LABEL, got {item!r}")
    tag, label = item.split("=", 1)
    return tag.strip(), label.strip()


# ---------------------------------------------------------------------------
# evaluate
# ---------------------------------------------------------------------------

def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .evaluation import (ExperimentSettings, feedback_table,
                             ladder_table, run_feedback_study,
                             run_information_study, run_ladder,
                             run_lesion_study, study_table)

    domain = load_domain(args.domain, seed=0)
    settings = ExperimentSettings(
        n_listings=args.listings, trials=args.trials,
        max_splits=None if args.splits >= 10 else args.splits,
        max_instances_per_tag=args.listings)

    if args.experiment == "ladder":
        print(ladder_table({domain.name: run_ladder(domain, settings)}))
    elif args.experiment == "lesion":
        print(study_table({domain.name: run_lesion_study(domain,
                                                         settings)},
                          "Lesion study"))
    elif args.experiment == "information":
        print(study_table(
            {domain.name: run_information_study(domain, settings)},
            "Schema vs data information"))
    else:
        study = run_feedback_study(domain, settings, runs=3)
        print(feedback_table([study]))
    return 0


# ---------------------------------------------------------------------------
# ledger
# ---------------------------------------------------------------------------

def _cmd_ledger(args: argparse.Namespace) -> int:
    from .observability import ledger as run_ledger

    path = args.ledger if args.ledger is not None \
        else run_ledger.DEFAULT_PATH
    try:
        entries = run_ledger.read_ledger(path)
    except ValueError as exc:
        raise CliError(str(exc)) from exc

    if args.action == "history":
        if args.label is not None:
            entries = [entry for entry in entries
                       if entry.get("label") == args.label]
        print(run_ledger.render_history(entries, limit=args.limit))
        return 0

    if args.action == "diff":
        if args.label is not None:
            candidates = [entry for entry in entries
                          if entry.get("label") == args.label]
        else:
            candidates = entries
        if not candidates:
            print("no matching ledger entries")
            return 0
        newest = candidates[-1]
        series = run_ledger.series_of(entries, newest.get("label"),
                                      newest.get("fingerprint"))
        if len(series) < 2:
            print(f"{newest.get('label')} @ "
                  f"{newest.get('fingerprint')}: only one run "
                  "recorded; nothing to diff")
            return 0
        print(run_ledger.render_diff(
            run_ledger.diff_entries(series[-2], series[-1])))
        return 0

    ok, text = run_ledger.check_ledger(
        path, label=args.label,
        window=args.window if args.window is not None
        else run_ledger.DEFAULT_WINDOW,
        max_slowdown=args.max_slowdown
        if args.max_slowdown is not None
        else run_ledger.DEFAULT_MAX_SLOWDOWN,
        max_accuracy_drop=args.max_accuracy_drop
        if args.max_accuracy_drop is not None
        else run_ledger.DEFAULT_MAX_ACCURACY_DROP)
    print(text)
    return 0 if ok else 1


# ---------------------------------------------------------------------------
# analyze
# ---------------------------------------------------------------------------

def _cmd_analyze_argv(lint_args: list[str]) -> int:
    # Lazy import: the analysis package is tooling, not pipeline code,
    # and the other subcommands should not pay for loading it.
    from .analysis.cli import main as lint_main

    return lint_main(lint_args)


# ---------------------------------------------------------------------------
# file helpers
# ---------------------------------------------------------------------------

def _read_text(path: Path) -> str:
    try:
        return Path(path).read_text()
    except OSError as exc:
        raise CliError(f"cannot read {path}: {exc}") from exc


def _read_dtd(path: Path):
    from .xmlio import DTDSyntaxError

    try:
        return parse_dtd(_read_text(path))
    except DTDSyntaxError as exc:
        raise CliError(f"{path}: {exc}") from exc


def _read_listings(path: Path, policy: ResiliencePolicy | None = None):
    from .resilience import FaultInjected
    from .xmlio import XMLSyntaxError

    text = _read_text(path)
    if policy is None:
        try:
            return parse_fragments(text)
        except XMLSyntaxError as exc:
            raise CliError(f"{path}: {exc}") from exc
    try:
        listings, log = ingest_fragments(text, mode=policy.input_mode,
                                         plan=policy.fault_plan)
    except (XMLSyntaxError, FaultInjected) as exc:
        raise CliError(
            f"{path}: {exc} (rerun with --input-mode lenient to "
            f"repair, or salvage to keep only well-formed listings)"
            ) from exc
    if not log.ok:
        policy.report.attach_recovery(log)
    if not listings:
        raise CliError(
            f"{path}: no listings survived {policy.input_mode} "
            f"ingestion")
    return listings


def _read_source_dir(source_dir: Path,
                     policy: ResiliencePolicy | None = None):
    source_dir = Path(source_dir)
    if not source_dir.is_dir():
        raise CliError(f"{source_dir} is not a directory")
    schema = SourceSchema(_read_dtd(source_dir / "schema.dtd"),
                          name=source_dir.name)
    listings = _read_listings(source_dir / "listings.xml", policy)
    mapping = _parse_mapping(_read_text(source_dir / "mapping.txt"),
                             source_dir / "mapping.txt")
    return schema, listings, mapping


def _render_mapping(mapping: Mapping) -> str:
    lines = [f"{tag} = {label}"
             for tag, label in sorted(mapping.items())]
    return "\n".join(lines) + "\n"


def _parse_mapping(text: str, origin: Path) -> Mapping:
    assignments: dict[str, str] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise CliError(
                f"{origin}:{line_number}: expected 'tag = LABEL', got "
                f"{line!r}")
        tag, label = (part.strip() for part in line.split("=", 1))
        if not tag or not label:
            raise CliError(
                f"{origin}:{line_number}: empty tag or label")
        assignments[tag] = label
    return Mapping(assignments)


if __name__ == "__main__":  # pragma: no cover - module execution
    raise SystemExit(main())
