"""Crash-safe checkpointing with a byte-identical resume contract.

A checkpoint captures the matching pipeline at its three stage
boundaries, each one an atomic artifact under
``<checkpoint-dir>/<run_key>/``:

``MANIFEST.json``
    Version, run key, attempt counter, completed stages, and the list
    of persisted per-learner score files. Rewritten atomically after
    every stage save, so the manifest never references a file that is
    not fully on disk.
``columns.json``
    The extract stage's *provenance marker*: per-tag instance counts
    (stage ``extract``). The column payload itself is deliberately not
    materialized — columns re-derive deterministically from the run's
    durable inputs (the listings file, already fingerprinted into the
    run key) in ~3 ms, while any faithful serialization of the element
    trees costs 2-4x that to write on *every* run and more to load.
    A resumed run therefore re-extracts; byte identity is unaffected
    because extraction is deterministic.
``scores_<learner>.bin``
    One flat per-learner score matrix each, persisted as each
    learner's shard gather completes — gather happens on the
    orchestrating thread for every backend, so the persisted bytes are
    identical for serial, thread and process execution (stage
    ``predict``). The format is one JSON header line (learner name,
    shape, dtype) followed by the raw C-order array bytes: the shard
    is self-describing, so resume recovers shards by directory scan
    and the hot path never rewrites the manifest, and snapshotting
    costs the pipeline one memcpy instead of an ``np.save``
    serialization.
``incumbent.json``
    The constraint search's best-so-far ``(cost, path, assignment)``
    leaf, snapshotted every :data:`SNAPSHOT_EVERY` expansions. A
    resumed search pre-offers it to the fresh incumbent — equivalent
    to that leaf being explored first, so the final mapping (the
    lexicographically first minimum-cost assignment) is unchanged.
``mapping.json``
    The final mapping (stage ``constrain``).

The *run key* fingerprints everything that determines pipeline output:
the dataset fingerprint, the search strategy, feedback constraints,
and the output-affecting settings. Resuming under a different key
starts fresh instead of serving stale state — worker counts and
backends are deliberately *not* part of the key, because the pipeline
is byte-identical across them.

Every write goes through :mod:`repro.observability.artifacts`
(temp file + rename), so a run SIGKILLed at any instant leaves either
the previous complete snapshot or the new complete snapshot, never a
torn file. The fsync layer is deliberately skipped
(``durable=False``): the threat model is *process death* — SIGKILL,
OOM kill, a watchdog kill — where everything the rename published
survives in the page cache, and an fsync per artifact costs more than
every other checkpoint operation combined (~1.4 ms each on the bench
filesystem, ~36 ms per run). Against the rarer power-loss crash the
contract degrades gracefully rather than breaking: every load
re-validates (manifest JSON parse, shard header + shape check,
incumbent parse) and a torn artifact just means that stage is redone.
Write failures (including the injected ``artifact.write`` fault) are
absorbed into the degradation report: the run keeps its results and
simply loses that checkpoint.

With ``background=True`` (the CLI's mode) file writes and stage
commits all run on one dedicated writer thread, draining an ordered
queue — the pipeline pays only for a cheap main-thread snapshot per
save, which together with the fsync-free write path is how an armed
checkpoint stays within a few percent of an uncheckpointed run (the
``ckpt`` bench gate). Ordering
through a single queue preserves the commit protocol: a stage is
committed only after its payload is durable. A crash with writes still
queued simply leaves that stage uncommitted — the resume redoes it.
``flush()`` blocks until the queue is drained; ``close()`` flushes and
stops the thread (the CLI closes before it writes the run report, so
absorbed losses land in the degradation account).

The ``LSD_CHECKPOINT_CRASH`` environment hook SIGKILLs the process
immediately after the named stage's checkpoint is committed — the CI
``crash-resume`` job uses it to prove the kill-then-resume contract at
every stage boundary deterministically.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import re
import signal
import threading
from pathlib import Path

import numpy as np

from ..observability.artifacts import atomic_write_bytes, atomic_write_text
from ..resilience.faults import FaultInjected

CHECKPOINT_VERSION = 1
CHECKPOINT_KIND = "lsd-checkpoint"
MANIFEST_NAME = "MANIFEST.json"

STAGE_EXTRACT = "extract"
STAGE_PREDICT = "predict"
STAGE_CONSTRAIN = "constrain"
STAGES = (STAGE_EXTRACT, STAGE_PREDICT, STAGE_CONSTRAIN)

#: Expansion interval between incumbent snapshots during the search.
SNAPSHOT_EVERY = 4096

#: Environment hook: SIGKILL the process right after the named stage's
#: checkpoint commit. Purely a test/CI device.
CRASH_ENV = "LSD_CHECKPOINT_CRASH"

#: Module-level mutable state on the match path that the checkpoint
#: API deliberately does *not* capture, with the reason it is safe to
#: lose. The ``checkpoint-unregistered-state`` lsd-lint flow rule
#: flags any match-path write to module state missing from this
#: registry — growing the pipeline cannot silently add state a resumed
#: run would need but not have.
REGISTERED_MUTABLE_STATE = {
    "repro.core.featurize._text_cache":
        "derived cache; rebuilt on demand after resume",
    "repro.core.featurize.stats":
        "telemetry counters; never pipeline output",
    "repro.core.parallel.SHARD_SCALE":
        "pressure-tier shard grain; output-invariant by the row-wise "
        "learner contract",
}


def run_key(fingerprint: str, *, search: str = "bnb",
            feedback: tuple | list = (),
            settings: dict | None = None) -> str:
    """The checkpoint cache key for one logical run.

    Hashes the dataset fingerprint with every knob that can change
    pipeline *output* (search strategy, feedback constraints, handler
    and extraction settings). Worker count and backend are excluded:
    output is byte-identical across them, so a run may resume under a
    different parallelism than it started with.
    """
    digest = hashlib.sha256()
    digest.update(fingerprint.encode())
    digest.update(b"\x00")
    digest.update(search.encode())
    for item in sorted(str(f) for f in feedback):
        digest.update(b"\x01")
        digest.update(item.encode())
    for key, value in sorted((settings or {}).items()):
        digest.update(b"\x02")
        digest.update(f"{key}={value}".encode())
    return digest.hexdigest()[:16]


def _safe_name(name: str) -> str:
    """A filesystem-safe spelling of a learner name."""
    return re.sub(r"[^A-Za-z0-9_.-]", "_", name)


class Checkpointer:
    """Stage snapshots for one run, under ``directory/key/``.

    ``plan`` arms the ``artifact.write`` fault site on every
    checkpoint write; ``report`` (a
    :class:`~repro.resilience.DegradationReport`) receives absorbed
    write failures. Both default to inert.

    Thread safety: :meth:`save_incumbent` is called from search worker
    threads and serialises on an internal lock; the stage saves happen
    on the orchestrating thread only.

    ``background=True`` moves serialization, fsync and stage commits
    onto a dedicated writer thread (ordered queue, one writer). The
    save methods then return ``True`` meaning *scheduled*; durability
    is reached in queue order and :meth:`flush`/:meth:`close` wait for
    it. Loads always happen on the caller's thread — a resume reads
    before any write of the new attempt is queued.
    """

    def __init__(self, directory: str | Path, key: str, *,
                 plan=None, report=None,
                 background: bool = False) -> None:
        self.dir = Path(directory) / key
        self.key = key
        self.plan = plan
        self.report = report
        self._lock = threading.Lock()
        self._last_incumbent = None
        self.manifest: dict = self._fresh_manifest(attempt=1)
        self.resumed_from: str | None = None
        self._queue: queue.SimpleQueue | None = None
        self._writer: threading.Thread | None = None
        if background:
            self._queue = queue.SimpleQueue()
            self._writer = threading.Thread(
                target=self._drain, name="lsd-checkpoint-writer",
                daemon=True)
            self._writer.start()

    # ------------------------------------------------------------------
    # writer thread
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        assert self._queue is not None
        while True:
            job = self._queue.get()
            if job is None:
                return
            try:
                job()
            except Exception as exc:  # lsd: ignore[blind-except]
                # A job that slips past the guarded-write absorption
                # must not kill the writer; record and keep draining.
                self._lost("writer", exc)

    def _submit(self, job) -> bool:
        """Run ``job`` now (sync mode, returning its success) or queue
        it in order behind every earlier save (background mode)."""
        if self._queue is None:
            # Closed-over save closures defined in this module; every
            # one writes through the guarded atomic artifact layer and
            # touches no pipeline state.
            return bool(job())  # lsd: ignore[flow-unresolved-hot-call]
        self._queue.put(job)
        return True

    def flush(self, timeout: float | None = None) -> bool:
        """Block until every queued write has drained (no-op in sync
        mode). Returns False only on timeout."""
        if self._queue is None or self._writer is None \
                or not self._writer.is_alive():
            return True
        drained = threading.Event()
        self._queue.put(drained.set)
        return drained.wait(timeout)

    def close(self) -> None:
        """Flush and stop the writer thread. Idempotent."""
        if self._queue is not None and self._writer is not None \
                and self._writer.is_alive():
            self._queue.put(None)
            self._writer.join()
        self._writer = None

    # ------------------------------------------------------------------
    # manifest / identity
    # ------------------------------------------------------------------
    def _fresh_manifest(self, attempt: int) -> dict:
        return {
            "schema_version": CHECKPOINT_VERSION,
            "kind": CHECKPOINT_KIND,
            "run_key": self.key,
            "attempt": attempt,
            "run_id": f"{self.key}-a{attempt}",
            "stages": [],
            "scores": {},
        }

    @property
    def run_id(self) -> str:
        return self.manifest["run_id"]

    def open(self, resume: bool) -> None:
        """Initialise this attempt's manifest.

        With ``resume=True`` and a compatible manifest on disk, prior
        stage state is adopted and ``resumed_from`` records the prior
        attempt's run id. Otherwise (fresh run, version mismatch, or
        key mismatch) the attempt starts with no completed stages —
        but still bumps the attempt counter so run ids never repeat
        within a checkpoint directory.
        """
        prior = self._read_manifest()
        attempt = (prior["attempt"] + 1) if prior else 1
        if resume and prior is not None:
            self.manifest = prior
            self.manifest["attempt"] = attempt
            self.resumed_from = prior["run_id"]
            self.manifest["resumed_from"] = self.resumed_from
            self.manifest["run_id"] = f"{self.key}-a{attempt}"
        else:
            self.manifest = self._fresh_manifest(attempt)
        self.dir.mkdir(parents=True, exist_ok=True)
        self._submit(self._write_manifest)

    def _read_manifest(self) -> dict | None:
        path = self.dir / MANIFEST_NAME
        try:
            manifest = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if manifest.get("schema_version") != CHECKPOINT_VERSION \
                or manifest.get("kind") != CHECKPOINT_KIND \
                or manifest.get("run_key") != self.key:
            return None
        return manifest

    def _write_manifest(self) -> bool:
        return self._write_text(MANIFEST_NAME,
                                json.dumps(self.manifest, indent=2,
                                           sort_keys=True) + "\n")

    def has(self, stage: str) -> bool:
        return stage in self.manifest["stages"]

    def _commit_stage(self, stage: str) -> None:
        if stage not in self.manifest["stages"]:
            self.manifest["stages"].append(stage)
        self._write_manifest()
        maybe_crash(stage)

    # ------------------------------------------------------------------
    # guarded writes
    # ------------------------------------------------------------------
    def _write_text(self, name: str, text: str) -> bool:
        try:
            atomic_write_text(self.dir / name, text, plan=self.plan,
                              durable=False)
        except (FaultInjected, OSError) as exc:
            self._lost(name, exc)
            return False
        return True

    def _write_bytes(self, name: str, data: bytes) -> bool:
        try:
            atomic_write_bytes(self.dir / name, data, plan=self.plan,
                               durable=False)
        except (FaultInjected, OSError) as exc:
            self._lost(name, exc)
            return False
        return True

    def _lost(self, name: str, exc: Exception) -> None:
        """A checkpoint write failed; the run continues, the stage is
        simply not marked durable (a resume will redo it)."""
        if self.report is not None:
            self.report.artifact_failed(f"checkpoint:{name}", str(exc))

    # ------------------------------------------------------------------
    # stage: extract
    # ------------------------------------------------------------------
    def save_columns(self, columns: dict) -> bool:
        """Commit the extract stage via its provenance marker.

        Records per-tag instance counts, not the column payload: the
        columns re-derive deterministically from the run's durable
        inputs faster than any serialized form loads (module
        docstring), so a resumed run re-extracts. No-op (``False``)
        when the stage is already committed from a prior attempt.
        """
        if self.has(STAGE_EXTRACT):
            return False
        counts = {tag: len(column)
                  for tag, column in sorted(columns.items())}
        text = json.dumps({"instances": counts}, sort_keys=True) + "\n"

        def job() -> bool:
            if self._write_text("columns.json", text):
                self._commit_stage(STAGE_EXTRACT)
                return True
            return False

        return self._submit(job)

    # ------------------------------------------------------------------
    # stage: predict
    # ------------------------------------------------------------------
    def save_learner_scores(self, name: str,
                            scores: np.ndarray) -> bool:
        """Persist one learner's flat score matrix as its gather
        completes, so a crash later in the predict stage resumes with
        this learner done.

        The shard is self-describing — one JSON header line, then the
        raw C-order bytes — which keeps the save off every slow path:
        the caller pays one memcpy (``tobytes`` snapshots the matrix
        before later passes rescale it), the write job is almost
        entirely GIL-releasing syscalls, and the manifest's ``scores``
        entry is bookkeeping that rides along until the next stage
        commit instead of forcing a manifest rewrite per learner.
        """
        header = json.dumps({"learner": name,
                             "shape": list(scores.shape),
                             "dtype": scores.dtype.str},
                            sort_keys=True).encode()
        payload = header + b"\n" + scores.tobytes()
        filename = f"scores_{_safe_name(name)}.bin"

        def job() -> bool:
            if self._write_bytes(filename, payload):
                self.manifest["scores"][name] = filename
                return True
            return False

        return self._submit(job)

    def commit_predict(self) -> None:
        """All learners persisted: mark the predict stage complete."""
        self._submit(lambda: self._commit_stage(STAGE_PREDICT))

    def load_scores(self, n_rows: int) -> dict[str, np.ndarray]:
        """Every persisted per-learner matrix whose shape still fits
        the current batch — recovered by directory scan of the
        self-describing shards, so learners saved before a crash count
        even when neither the predict commit nor any manifest update
        reached disk (that is the point of per-learner saves). A torn
        or foreign file fails header parsing or the shape check and
        that learner is simply re-predicted. Loads copy out of the
        file buffer: structure passes rescale score rows in place."""
        loaded: dict[str, np.ndarray] = {}
        for path in sorted(self.dir.glob("scores_*.bin")):
            try:
                head, _, body = path.read_bytes().partition(b"\n")
                meta = json.loads(head)
                scores = np.frombuffer(
                    body, dtype=np.dtype(meta["dtype"])
                ).reshape([int(n) for n in meta["shape"]]).copy()
            except (OSError, ValueError, KeyError, TypeError):
                continue
            if scores.ndim == 2 and scores.shape[0] == n_rows:
                loaded[str(meta["learner"])] = scores
        return loaded

    # ------------------------------------------------------------------
    # search incumbent
    # ------------------------------------------------------------------
    def save_incumbent(self, cost: float, path: tuple,
                       assignment: dict | None) -> None:
        """Snapshot the search's best-so-far leaf (worker-thread safe,
        deduplicated, never fatal). JSON floats round-trip exactly
        (repr grammar), so a warm start re-offers the identical cost."""
        if assignment is None:
            return
        state = (cost, tuple(path))
        with self._lock:
            if state == self._last_incumbent:
                return
            self._last_incumbent = state
            # Serialize and enqueue under the lock (the assignment
            # dict is live search state, and submit order must match
            # incumbent order); the fsync'd write rides the queue.
            text = json.dumps({
                "cost": cost, "path": list(path),
                "assignment": assignment}, sort_keys=True) + "\n"
            self._submit(
                lambda: self._write_text("incumbent.json", text))

    def load_incumbent(self) -> tuple | None:
        try:
            raw = json.loads((self.dir / "incumbent.json").read_text())
            return (float(raw["cost"]), tuple(raw["path"]),
                    dict(raw["assignment"]))
        except (OSError, ValueError, KeyError, TypeError):
            return None

    # ------------------------------------------------------------------
    # stage: constrain
    # ------------------------------------------------------------------
    def save_mapping(self, mapping: dict[str, str]) -> bool:
        text = json.dumps(dict(sorted(mapping.items())),
                          sort_keys=True) + "\n"

        def job() -> bool:
            if self._write_text("mapping.json", text):
                self._commit_stage(STAGE_CONSTRAIN)
                return True
            return False

        return self._submit(job)

    def load_mapping(self) -> dict[str, str] | None:
        if not self.has(STAGE_CONSTRAIN):
            return None
        try:
            return dict(json.loads(
                (self.dir / "mapping.json").read_text()))
        except (OSError, ValueError):
            return None


def maybe_crash(stage: str) -> None:
    """SIGKILL ourselves if the crash hook names this stage.

    SIGKILL — not an exception, not ``sys.exit`` — because the contract
    under test is recovery from a death no handler saw coming.
    """
    if os.environ.get(CRASH_ENV) == stage:
        os.kill(os.getpid(), signal.SIGKILL)
