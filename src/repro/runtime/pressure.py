"""Memory-pressure guardrails: degrade the run before the OOM killer.

A :class:`PressureMonitor` polls the process RSS (through the same
injectable reader :mod:`repro.observability.resources` uses) against a
``--rss-limit`` budget and responds in escalating tiers at the
:class:`PressureThresholds` watermarks:

1. **shed** (80%) — drop the shared featurize text cache: purely
   derived state, rebuilt on demand, often hundreds of MB on large
   sources.
2. **reshard** (90%) — halve the prediction shard grain
   (:data:`repro.core.parallel.SHARD_SCALE`), so per-task peak memory
   (materialised score blocks, shipped batches) shrinks. Learner
   scoring is row-wise by contract, so concatenation boundaries are
   output-invisible — only the trace shape changes, which is why the
   scale is registered in
   :data:`~repro.runtime.checkpoint.REGISTERED_MUTABLE_STATE`.
3. **checkpoint-and-degrade** (97%) — trip the policy deadline: the
   constraint search exits on its anytime best-so-far path (its
   incumbent is already snapshotted on disk by the checkpointer), the
   run finishes degraded-but-complete, and a later ``--resume`` picks
   up from the persisted stages. An optional ``on_degrade`` hook runs
   first (the CLI uses it to force a final checkpoint flush).

Each action is recorded in the degradation report and the
``runtime.pressure.*`` metrics. Tiers fire on upward crossings; a
ratio falling back under the shed watermark re-arms them, so a
sawtoothing RSS keeps shedding instead of acting once and never again.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..core import featurize
from ..core.parallel import SHARD_SCALE
from ..observability.metrics import (M_PRESSURE_ACTIONS,
                                     M_PRESSURE_LEVEL)
from ..observability.resources import read_proc_self


@dataclass(frozen=True)
class PressureThresholds:
    """Watermarks as fractions of the RSS limit."""

    shed: float = 0.80
    reshard: float = 0.90
    degrade: float = 0.97


#: Tier number -> action name recorded in the degradation report.
TIER_ACTIONS = {1: "shed_feature_caches", 2: "halve_shard_grain",
                3: "checkpoint_and_degrade"}


class PressureMonitor:
    """Tiered RSS-watermark responder (daemon thread or manual ticks).

    ``reader`` returns a :class:`~repro.observability.resources.
    ProcSample`; injectable so tests drive exact RSS values. ``policy``
    supplies the degradation report and the trippable deadline;
    ``registry`` the metrics registry. All optional, all inert when
    absent. :meth:`sample_once` is the unit-test entry point and
    returns the tier the sample landed in.
    """

    def __init__(self, limit_bytes: int, *, policy=None, registry=None,
                 reader=None, interval: float = 0.5,
                 thresholds: PressureThresholds | None = None,
                 on_degrade=None) -> None:
        if limit_bytes <= 0:
            raise ValueError("rss limit must be positive")
        self.limit_bytes = int(limit_bytes)
        self.thresholds = thresholds or PressureThresholds()
        self.interval = interval
        self._policy = policy
        self._registry = registry
        self._reader = reader if reader is not None else read_proc_self
        self._on_degrade = on_degrade
        self._tier = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: Actions taken, in order (testing/diagnostics).
        self.actions: list[str] = []

    # ------------------------------------------------------------------
    # one tick
    # ------------------------------------------------------------------
    def sample_once(self, rss_bytes: int | None = None) -> int:
        """Classify one RSS sample and run any newly crossed tiers."""
        if rss_bytes is None:
            rss_bytes = self._reader().rss_bytes
        ratio = rss_bytes / self.limit_bytes
        t = self.thresholds
        tier = (3 if ratio >= t.degrade else
                2 if ratio >= t.reshard else
                1 if ratio >= t.shed else 0)
        if self._registry is not None:
            self._registry.gauge(M_PRESSURE_LEVEL).set(float(tier))
        while self._tier < tier:
            self._tier += 1
            self._escalate(self._tier)
        if tier == 0:
            self._tier = 0  # re-arm: pressure receded below the shed
            # watermark, so a later climb sheds again.
        return tier

    def _escalate(self, level: int) -> None:
        action = TIER_ACTIONS[level]
        if level == 1:
            featurize.clear_text_cache()
        elif level == 2:
            SHARD_SCALE.halve()
        else:
            if self._on_degrade is not None:
                self._on_degrade()
            if self._policy is not None:
                self._policy.trip_deadline()
        self.actions.append(action)
        if self._policy is not None:
            self._policy.report.pressure(level, action)
        if self._registry is not None:
            self._registry.counter(M_PRESSURE_ACTIONS).inc()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PressureMonitor":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="lsd-pressure", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sample_once()
            except Exception:  # lsd: ignore[blind-except]
                # Monitoring must never take the run down; a failed
                # sample (procfs race, teardown) skips one tick.
                time.sleep(0)  # lsd: ignore[wallclock]

    def __enter__(self) -> "PressureMonitor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
