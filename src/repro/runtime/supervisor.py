"""Watchdog supervision: kill hung workers, surface pipeline stalls.

A :class:`Supervisor` is one daemon thread with two signals:

* **dispatch ages** — the process pool records a monotonic stamp per
  in-flight task (:meth:`~repro.core.procpool.WorkerPool.
  dispatch_ages`); a worker whose task outlives the deadline is
  SIGKILLed parent-side. Its death wakes the map engine through the
  process sentinel, which re-dispatches the lost shard to a surviving
  worker (bounded by the engine's death budget, then the serial
  fallback) — so a wedged worker costs one shard's latency, not the
  run.
* **heartbeat events** — the progress-event stream (stage and
  shard-complete events) feeds :meth:`note_event`; when the whole
  pipeline goes silent past the deadline the supervisor records a
  stall and trips the policy deadline, forcing the constraint search
  onto its anytime best-so-far exit instead of hanging forever. This
  is the only lever that works on the serial and thread backends,
  where there is no separate process to kill.

Every escalation lands in the run's
:class:`~repro.resilience.policy.DegradationReport` — a supervised run
that needed intervention is visible, never silent. Wall-clock reads
here are a robustness device (like :class:`~repro.resilience.policy.
Deadline`), never pipeline output.
"""

from __future__ import annotations

import threading
import time

from ..observability.metrics import M_WATCHDOG_KILLS, M_WATCHDOG_STALLS


class Supervisor:
    """Monitor thread enforcing a liveness deadline on a run.

    ``pool_provider`` returns the live
    :class:`~repro.core.procpool.WorkerPool` (or ``None``) on each
    poll — pools are built lazily and rebuilt across runs, so the
    supervisor must never hold one directly. ``policy`` supplies the
    degradation report and the trippable deadline; ``registry`` the
    metrics registry (both optional and inert by default).
    """

    def __init__(self, deadline: float, *, poll: float | None = None,
                 pool_provider=None, policy=None,
                 registry=None) -> None:
        if deadline <= 0:
            raise ValueError("watchdog deadline must be positive")
        self.deadline = float(deadline)
        self.poll = poll if poll is not None \
            else max(0.05, min(1.0, self.deadline / 4))
        self._pool_provider = pool_provider
        self._policy = policy
        self._registry = registry
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._last_beat: float | None = None
        self._stalled = False
        #: Worker ids this supervisor killed (testing/diagnostics).
        self.kills: list[int] = []

    # ------------------------------------------------------------------
    # heartbeat intake
    # ------------------------------------------------------------------
    def note_event(self, kind: str, payload: dict) -> None:
        """Progress-event listener hook (see ``EventStream.listener``):
        any emitted event counts as a heartbeat."""
        with self._lock:
            self._last_beat = time.monotonic()  # lsd: ignore[wallclock]
            self._stalled = False

    # ------------------------------------------------------------------
    # the check (one poll tick; also the unit-test entry point)
    # ------------------------------------------------------------------
    def check_once(self, now: float | None = None) -> list[int]:
        """Run one supervision pass; returns worker ids killed."""
        if now is None:
            now = time.monotonic()  # lsd: ignore[wallclock]
        killed: list[int] = []
        pool = self._pool_provider() if self._pool_provider else None
        if pool is not None and not pool.broken:
            for worker_id, age in sorted(pool.dispatch_ages().items()):
                if age <= self.deadline:
                    continue
                pool.kill_worker(worker_id)
                killed.append(worker_id)
                self.kills.append(worker_id)
                self._record_kill(worker_id, age)
        with self._lock:
            beat, stalled = self._last_beat, self._stalled
        if beat is not None and not stalled \
                and now - beat > self.deadline:
            with self._lock:
                self._stalled = True
            self._record_stall(now - beat)
        return killed

    def _record_kill(self, worker_id: int, age: float) -> None:
        policy = self._policy
        if policy is not None:
            policy.report.watchdog_event(
                "worker_killed", f"worker {worker_id} silent for "
                f"{age:.1f}s (deadline {self.deadline:g}s)")
        if self._registry is not None:
            self._registry.counter(M_WATCHDOG_KILLS).inc()

    def _record_stall(self, silent_for: float) -> None:
        """The whole pipeline went quiet: record it and force the
        search onto its anytime exit so the run completes degraded
        instead of hanging."""
        policy = self._policy
        if policy is not None:
            policy.report.watchdog_event(
                "stall", f"no progress event for {silent_for:.1f}s "
                f"(deadline {self.deadline:g}s)")
            policy.trip_deadline()
        if self._registry is not None:
            self._registry.counter(M_WATCHDOG_STALLS).inc()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Supervisor":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="lsd-supervisor", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.poll):
            self.check_once()

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
