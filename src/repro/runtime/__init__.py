"""Durable-run machinery: checkpoints, supervision, memory guardrails.

The matching pipeline's resilience layer (:mod:`repro.resilience`)
absorbs faults *inside* a surviving process; this package covers the
failure modes where the process itself does not survive — SIGKILL,
hung workers, memory exhaustion:

* :mod:`repro.runtime.checkpoint` — crash-safe stage snapshots with a
  byte-identical resume contract;
* :mod:`repro.runtime.supervisor` — a watchdog thread that kills and
  recovers hung process-pool workers and detects pipeline stalls;
* :mod:`repro.runtime.pressure` — tiered RSS-watermark responses that
  degrade the run instead of letting the OOM killer end it.

Everything here is strictly additive: with no checkpoint directory, no
watchdog deadline and no RSS limit configured, none of these modules
is imported on the hot path and pipeline output is byte-identical to a
build without the package.
"""

from .checkpoint import (CHECKPOINT_VERSION, Checkpointer,
                         REGISTERED_MUTABLE_STATE, STAGE_CONSTRAIN,
                         STAGE_EXTRACT, STAGE_PREDICT, run_key)
from .pressure import PressureMonitor, PressureThresholds
from .supervisor import Supervisor

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpointer",
    "PressureMonitor",
    "PressureThresholds",
    "REGISTERED_MUTABLE_STATE",
    "STAGE_CONSTRAIN",
    "STAGE_EXTRACT",
    "STAGE_PREDICT",
    "Supervisor",
    "run_key",
]
