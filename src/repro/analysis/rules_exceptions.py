"""Exception-hygiene rule: no bare or blind ``except``.

A handler that swallows ``Exception`` hides every future bug behind the
one failure it meant to tolerate (the pre-fix ``persistence.load_system``
turned *any* error — including programming errors in ``__setstate__``
hooks — into "not a readable model"). Catch the concrete exception set
the operation is documented to raise; a blanket handler is acceptable
only when it visibly re-raises.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .astutil import contains_raise, dotted
from .engine import Rule, SourceFile, register
from .findings import Finding

_BLIND = {"Exception", "BaseException"}


def _blind_names(node: ast.expr | None) -> list[str]:
    """The blind exception names mentioned by an except clause."""
    if node is None:
        return []
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for expr in exprs:
        name = dotted(expr)
        if name and name.rsplit(".", 1)[-1] in _BLIND:
            names.append(name)
    return names


@register
class BlindExceptRule(Rule):
    """Handlers must name the errors they expect (or re-raise)."""

    id = "blind-except"
    severity = "error"
    description = ("bare 'except:' or 'except Exception' that does not "
                   "re-raise; catch the concrete error set instead")

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    source, node,
                    "bare 'except:' swallows every error including "
                    "KeyboardInterrupt; name the expected exceptions")
                continue
            blind = _blind_names(node.type)
            if blind and not any(contains_raise(stmt)
                                 for stmt in node.body):
                yield self.finding(
                    source, node,
                    f"'except {', '.join(blind)}' without re-raise "
                    f"hides unrelated bugs; catch the concrete "
                    f"exception set")
