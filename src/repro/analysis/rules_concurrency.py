"""Concurrency rule: shared-state writes inside fanned-out callables.

:class:`~repro.core.parallel.ParallelExecutor` promises byte-identical
results at any worker count; the one way user code breaks that promise
is by mutating state shared across tasks from inside the mapped
callable. This rule finds callables passed to ``map`` / ``starmap`` /
``map_profiled`` (including one call-hop through module-local helper
functions, the dominant pattern in this codebase) and flags writes to
names the callable does not own: assignments through ``global`` /
``nonlocal``, stores into subscripts/attributes rooted at closure or
module names, and calls of mutating methods on such names.

The documented benign-race caches (``featurize._text_cache``, the
per-instance ``feature_cache``, the approximate ``stats`` counters — see
the thread-safety note in :mod:`repro.core.featurize`) are allowlisted:
they are last-write-wins idempotent by design and exercised by the
dynamic sanitizer instead (:mod:`repro.analysis.sanitizer`).

The process backend gets the mirror-image rule: a worker-side task
handler (:func:`repro.core.procpool.task_handler`) runs in a *forked
process*, so a write to module-level or closure state is not a race —
it is a silent no-op from the parent's point of view. The copy-on-write
page the worker dirties never travels back, the parent keeps its stale
value, and (worse) which worker dirtied it varies run to run. The
``process-unsafe-state`` rule flags the same write shapes inside
``@task_handler(...)`` functions and their one-hop helpers.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .astutil import chain_parts, root_name
from .engine import Rule, SourceFile, register
from .findings import Finding

#: ParallelExecutor entry points whose first argument is fanned out.
EXECUTOR_METHODS = ("map", "starmap", "map_profiled")

#: Method names that mutate their receiver.
_MUTATORS = {
    "append", "appendleft", "extend", "insert", "add", "update",
    "setdefault", "clear", "pop", "popitem", "remove", "discard",
    "sort", "reverse", "write", "writelines", "inc",
}

#: Shared state documented as a benign race (idempotent last-write-wins
#: caches); matched against any component of the written chain.
BENIGN_SHARED = frozenset({"_text_cache", "feature_cache", "stats"})


def _bound_names(target: ast.AST | None) -> Iterator[str]:
    """Names a binding target actually binds. Subscript/attribute
    stores (``shared[k] = v``, ``obj.field = v``) bind nothing — they
    mutate an existing object, which is exactly what the rule exists to
    catch — so they must not mark their root name as local."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _bound_names(element)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


def _local_names(fn: ast.AST,
                 nodes: Iterable[ast.AST] | None = None) -> set[str]:
    """Names bound inside ``fn`` (params, assignments, loop/with
    targets, comprehension variables, nested defs) — writes to anything
    else touch caller-owned state. ``nodes`` narrows the scan (the flow
    lattice passes the own-body walk so nested defs, which are their
    own graph nodes, are not double-counted)."""
    names: set[str] = set()
    if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef,
                       ast.Lambda)):
        args = fn.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            names.add(arg.arg)
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
    declared: set[str] = set()
    for node in (ast.walk(fn) if nodes is None else nodes):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared.update(node.names)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)) and node is not fn:
            names.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                               ast.NamedExpr, ast.For, ast.comprehension)
                       ):
            targets = getattr(node, "targets", None) or \
                [getattr(node, "target", None)]
            for target in targets:
                names.update(_bound_names(target))
        elif isinstance(node, ast.withitem) and node.optional_vars:
            names.update(_bound_names(node.optional_vars))
    return names - declared


def _shared_writes(fn: ast.AST,
                   nodes: Iterable[ast.AST] | None = None,
                   benign: frozenset = BENIGN_SHARED
                   ) -> Iterator[tuple[ast.AST, str]]:
    """(node, description) for every write to non-local state in fn.

    ``nodes`` narrows both the locals computation and the write scan to
    a subset of the subtree (the flow lattice passes the own-body walk;
    it must be re-iterable or passed twice via :func:`list`).
    ``benign`` is the allowlist of chain components to skip — the
    race-tolerant caches by default; the checkpoint-coverage flow rule
    passes an empty set because a benign *race* can still be state a
    resumed run silently loses."""
    nodes = None if nodes is None else list(nodes)
    local = _local_names(fn, nodes)

    def is_shared(target: ast.AST) -> str | None:
        """The offending name if ``target`` stores outside fn."""
        root = root_name(target)
        if root is None or root in local:
            return None
        if benign.intersection(chain_parts(target)):
            return None
        return ".".join(chain_parts(target)) or root

    for node in (ast.walk(fn) if nodes is None else nodes):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            scope = "global" if isinstance(node, ast.Global) else \
                "nonlocal"
            for name in node.names:
                if name not in benign:
                    yield node, (f"declares {scope} {name!r} (writes "
                                 f"escape the task)")
        elif isinstance(node, (ast.Assign, ast.AnnAssign,
                               ast.AugAssign)):
            targets = getattr(node, "targets", None) or [node.target]
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    name = is_shared(target)
                    if name is not None:
                        yield node, f"stores into shared {name!r}"
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MUTATORS:
            name = is_shared(node.func)
            if name is not None:
                yield node, (f"calls mutating method "
                             f"{name}.{node.func.attr}()")


def _collect_functions(tree: ast.Module) -> dict[str, ast.AST]:
    """Every function/method in the module, by (unqualified) name —
    the one-hop resolution table for mapped callables."""
    functions: dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.setdefault(node.name, node)
    return functions


def _resolve_targets(fn_arg: ast.AST,
                     functions: dict[str, ast.AST]) -> list[ast.AST]:
    """The function bodies to scan for a mapped callable: the lambda or
    named function itself, plus (one hop) any module-local functions it
    calls — fan-out sites here overwhelmingly wrap a worker helper in a
    closure (``lambda lrn, prof: predict_with(lrn, flat, prof)``)."""
    targets: list[ast.AST] = []
    if isinstance(fn_arg, ast.Lambda):
        targets.append(fn_arg)
    elif isinstance(fn_arg, ast.Name) and fn_arg.id in functions:
        targets.append(functions[fn_arg.id])
    elif isinstance(fn_arg, ast.Attribute) and \
            fn_arg.attr in functions:
        targets.append(functions[fn_arg.attr])
    hops: list[ast.AST] = []
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Call):
                callee = None
                if isinstance(node.func, ast.Name):
                    callee = functions.get(node.func.id)
                elif isinstance(node.func, ast.Attribute):
                    callee = functions.get(node.func.attr)
                if callee is not None and callee not in targets and \
                        callee not in hops:
                    hops.append(callee)
    return targets + hops


@register
class ExecutorSharedWriteRule(Rule):
    """Callables handed to a parallel ``map`` must not write shared
    state — that is how byte-identical-at-any-worker-count dies."""

    id = "executor-shared-write"
    severity = "error"
    description = ("mutation of module-level or closure-captured state "
                   "inside a callable passed to ParallelExecutor.map/"
                   "starmap/map_profiled")

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        functions = _collect_functions(source.tree)
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in EXECUTOR_METHODS
                    and node.args):
                continue
            for target in _resolve_targets(node.args[0], functions):
                for write, description in _shared_writes(target):
                    yield self.finding(source,
                        write, f"task mapped at line {node.lineno} "
                        f"{description}; shared writes under a "
                        f"parallel map break determinism (allowlist: "
                        f"{', '.join(sorted(BENIGN_SHARED))})")


def _is_task_handler_decorator(decorator: ast.AST) -> bool:
    """``@task_handler("kind")`` in any spelling — bare name, module
    attribute (``procpool.task_handler``), with or without arguments."""
    if isinstance(decorator, ast.Call):
        decorator = decorator.func
    if isinstance(decorator, ast.Name):
        return decorator.id == "task_handler"
    if isinstance(decorator, ast.Attribute):
        return decorator.attr == "task_handler"
    return False


def _handler_hops(handler: ast.AST,
                  functions: dict[str, ast.AST]) -> list[ast.AST]:
    """The handler plus (one hop) module-local functions its *body*
    calls — the same resolution depth :func:`_resolve_targets` gives
    mapped callables. Only the body: the decorator expression itself
    (``@task_handler("predict")``) runs at import time in every
    process, so its registry write is not worker-side state."""
    targets: list[ast.AST] = [handler]
    body_calls = (node for statement in getattr(handler, "body", ())
                  for node in ast.walk(statement)
                  if isinstance(node, ast.Call))
    for node in body_calls:
        callee = None
        if isinstance(node.func, ast.Name):
            callee = functions.get(node.func.id)
        elif isinstance(node.func, ast.Attribute):
            callee = functions.get(node.func.attr)
        if callee is not None and callee not in targets:
            targets.append(callee)
    return targets


@register
class ProcessUnsafeStateRule(Rule):
    """Worker-process task handlers must not write module or closure
    state — post-fork writes land in the worker's copy-on-write pages
    and silently never reach the parent."""

    id = "process-unsafe-state"
    severity = "error"
    description = ("mutation of module-level or closure-captured state "
                   "inside a @task_handler worker function; the write "
                   "stays in the forked worker and never reaches the "
                   "parent process")

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        functions = _collect_functions(source.tree)
        for node in ast.walk(source.tree):
            if not (isinstance(node, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))
                    and any(_is_task_handler_decorator(dec)
                            for dec in node.decorator_list)):
                continue
            for target in _handler_hops(node, functions):
                for write, description in _shared_writes(target):
                    yield self.finding(source,
                        write, f"task handler {node.name!r} "
                        f"{description}; a worker process mutates its "
                        f"own fork — the parent never sees the write "
                        f"(allowlist: "
                        f"{', '.join(sorted(BENIGN_SHARED))})")
