"""Concurrency rule: shared-state writes inside fanned-out callables.

:class:`~repro.core.parallel.ParallelExecutor` promises byte-identical
results at any worker count; the one way user code breaks that promise
is by mutating state shared across tasks from inside the mapped
callable. This rule finds callables passed to ``map`` / ``starmap`` /
``map_profiled`` (including one call-hop through module-local helper
functions, the dominant pattern in this codebase) and flags writes to
names the callable does not own: assignments through ``global`` /
``nonlocal``, stores into subscripts/attributes rooted at closure or
module names, and calls of mutating methods on such names.

The documented benign-race caches (``featurize._text_cache``, the
per-instance ``feature_cache``, the approximate ``stats`` counters — see
the thread-safety note in :mod:`repro.core.featurize`) are allowlisted:
they are last-write-wins idempotent by design and exercised by the
dynamic sanitizer instead (:mod:`repro.analysis.sanitizer`).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .astutil import chain_parts, root_name
from .engine import Rule, SourceFile, register
from .findings import Finding

#: ParallelExecutor entry points whose first argument is fanned out.
EXECUTOR_METHODS = ("map", "starmap", "map_profiled")

#: Method names that mutate their receiver.
_MUTATORS = {
    "append", "appendleft", "extend", "insert", "add", "update",
    "setdefault", "clear", "pop", "popitem", "remove", "discard",
    "sort", "reverse", "write", "writelines", "inc",
}

#: Shared state documented as a benign race (idempotent last-write-wins
#: caches); matched against any component of the written chain.
BENIGN_SHARED = frozenset({"_text_cache", "feature_cache", "stats"})


def _bound_names(target: ast.AST | None) -> Iterator[str]:
    """Names a binding target actually binds. Subscript/attribute
    stores (``shared[k] = v``, ``obj.field = v``) bind nothing — they
    mutate an existing object, which is exactly what the rule exists to
    catch — so they must not mark their root name as local."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _bound_names(element)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


def _local_names(fn: ast.AST) -> set[str]:
    """Names bound inside ``fn`` (params, assignments, loop/with
    targets, comprehension variables, nested defs) — writes to anything
    else touch caller-owned state."""
    names: set[str] = set()
    if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef,
                       ast.Lambda)):
        args = fn.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            names.add(arg.arg)
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
    declared: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared.update(node.names)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)) and node is not fn:
            names.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                               ast.NamedExpr, ast.For, ast.comprehension)
                       ):
            targets = getattr(node, "targets", None) or \
                [getattr(node, "target", None)]
            for target in targets:
                names.update(_bound_names(target))
        elif isinstance(node, ast.withitem) and node.optional_vars:
            names.update(_bound_names(node.optional_vars))
    return names - declared


def _shared_writes(fn: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    """(node, description) for every write to non-local state in fn."""
    local = _local_names(fn)

    def is_shared(target: ast.AST) -> str | None:
        """The offending name if ``target`` stores outside fn."""
        root = root_name(target)
        if root is None or root in local:
            return None
        if BENIGN_SHARED.intersection(chain_parts(target)):
            return None
        return ".".join(chain_parts(target)) or root

    for node in ast.walk(fn):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            scope = "global" if isinstance(node, ast.Global) else \
                "nonlocal"
            for name in node.names:
                if name not in BENIGN_SHARED:
                    yield node, (f"declares {scope} {name!r} (writes "
                                 f"escape the task)")
        elif isinstance(node, (ast.Assign, ast.AnnAssign,
                               ast.AugAssign)):
            targets = getattr(node, "targets", None) or [node.target]
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    name = is_shared(target)
                    if name is not None:
                        yield node, f"stores into shared {name!r}"
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MUTATORS:
            name = is_shared(node.func)
            if name is not None:
                yield node, (f"calls mutating method "
                             f"{name}.{node.func.attr}()")


def _collect_functions(tree: ast.Module) -> dict[str, ast.AST]:
    """Every function/method in the module, by (unqualified) name —
    the one-hop resolution table for mapped callables."""
    functions: dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.setdefault(node.name, node)
    return functions


def _resolve_targets(fn_arg: ast.AST,
                     functions: dict[str, ast.AST]) -> list[ast.AST]:
    """The function bodies to scan for a mapped callable: the lambda or
    named function itself, plus (one hop) any module-local functions it
    calls — fan-out sites here overwhelmingly wrap a worker helper in a
    closure (``lambda lrn, prof: predict_with(lrn, flat, prof)``)."""
    targets: list[ast.AST] = []
    if isinstance(fn_arg, ast.Lambda):
        targets.append(fn_arg)
    elif isinstance(fn_arg, ast.Name) and fn_arg.id in functions:
        targets.append(functions[fn_arg.id])
    elif isinstance(fn_arg, ast.Attribute) and \
            fn_arg.attr in functions:
        targets.append(functions[fn_arg.attr])
    hops: list[ast.AST] = []
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Call):
                callee = None
                if isinstance(node.func, ast.Name):
                    callee = functions.get(node.func.id)
                elif isinstance(node.func, ast.Attribute):
                    callee = functions.get(node.func.attr)
                if callee is not None and callee not in targets and \
                        callee not in hops:
                    hops.append(callee)
    return targets + hops


@register
class ExecutorSharedWriteRule(Rule):
    """Callables handed to a parallel ``map`` must not write shared
    state — that is how byte-identical-at-any-worker-count dies."""

    id = "executor-shared-write"
    severity = "error"
    description = ("mutation of module-level or closure-captured state "
                   "inside a callable passed to ParallelExecutor.map/"
                   "starmap/map_profiled")

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        functions = _collect_functions(source.tree)
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in EXECUTOR_METHODS
                    and node.args):
                continue
            for target in _resolve_targets(node.args[0], functions):
                for write, description in _shared_writes(target):
                    yield self.finding(source,
                        write, f"task mapped at line {node.lineno} "
                        f"{description}; shared writes under a "
                        f"parallel map break determinism (allowlist: "
                        f"{', '.join(sorted(BENIGN_SHARED))})")
