"""The three built-in taint lattices.

Each lattice is a declarative bundle: *entry points* (where execution
enters the guarded region), a *source scanner* (what taints a single
function body), and rendering hooks. The reachability engine does the
propagation; a finding is an entry point that reaches a tainted
statement, carrying the shortest call chain as evidence.

* :data:`DETERMINISM` — wall-clock reads, unseeded RNGs, OS entropy,
  and order-sensitive set iteration on any path reachable from
  ``LSDSystem.match``, a ``@task_handler`` worker, or the constraint
  search. The per-file rules flag these at the call site wherever they
  appear; the lattice proves the *path* — a wallclock read two calls
  deep inside a helper is invisible to a per-file rule but not to
  reachability.
* :data:`WORKER_PURITY` — writes to module-level or closure-captured
  state anywhere transitively reachable from worker execution roots
  (``@task_handler`` functions and every callable handed to a
  ``ParallelExecutor`` map). This upgrades ``executor-shared-write``
  and ``process-unsafe-state`` from one-hop heuristics to full
  transitive reachability; the documented benign caches
  (:data:`~repro.analysis.rules_concurrency.BENIGN_SHARED`) stay
  allowlisted at any depth.
* :data:`FAULT_FLOW` — every armed fault site
  (``policy.fire(SITE_*)`` / ``plan.corrupt(...)``) must either be
  handled by a ``FaultInjected`` except clause somewhere on a caller
  path, or be a *documented propagation* (the arming function's
  docstring names ``FaultInjected``). Sites whose injected exception
  can silently escape the resilience machinery are findings.

Suppressions compose: a taint source silenced with
``# lsd: ignore[<base-rule>]`` (or the flow rule's own id) at the
source line does not seed the lattice — the same line-level contract
the per-file rules honour.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator

from ..astutil import dotted, names_imported_from
from ..engine import SourceFile
from ..rules_concurrency import _shared_writes
from ..rules_determinism import (iter_entropy_calls, iter_set_order,
                                 iter_unseeded_random,
                                 iter_wallclock_calls)
from .callgraph import CallGraph, FunctionInfo, iter_own_nodes

#: The fixed interprocedural entry points of the determinism contract.
DETERMINISM_ENTRY_POINTS = (
    "repro.core.system.LSDSystem.match",
    "repro.constraints.handler.ConstraintHandler.find_mapping",
)

#: Methods of FaultPlan / ResiliencePolicy that arm a fault site.
_ARMING_METHODS = ("fire", "corrupt")

#: Exception type names that count as handling an injected fault: the
#: concrete type, or the blanket handlers that necessarily catch it
#: (quarantine boundaries like train_base_learners catch ``Exception``
#: deliberately — an injected fault is absorbed there like any other
#: learner failure).
_FAULT_EXCEPTION = "FaultInjected"
_FAULT_CATCHALLS = frozenset(
    {_FAULT_EXCEPTION, "Exception", "BaseException"})


@dataclass(frozen=True)
class TaintHit:
    """One tainted statement inside one function."""

    function: str   # qualname of the containing function
    path: str
    line: int
    detail: str     # human message for the finding
    base_rule: str  # the per-file rule whose suppression also silences it


@dataclass(frozen=True)
class TaintLattice:
    """One interprocedural analysis: entries + per-function sources."""

    name: str
    description: str
    #: graph -> entry-point qualnames to run reachability from.
    entries: Callable[[CallGraph], set[str]]
    #: (graph, info, source) -> taint hits inside one function body.
    scan: Callable[[CallGraph, FunctionInfo, SourceFile],
                   Iterator[TaintHit]]


def _suppressed(source: SourceFile, line: int, *rules: str) -> bool:
    listed = source.suppressions.get(line)
    if listed is None:
        return False
    return not listed or bool(listed.intersection(rules))


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------

def _determinism_entries(graph: CallGraph) -> set[str]:
    entries = {name for name in DETERMINISM_ENTRY_POINTS
               if name in graph.functions}
    entries.update(graph.worker_roots)
    return entries


def _determinism_scan(graph: CallGraph, info: FunctionInfo,
                      source: SourceFile) -> Iterator[TaintHit]:
    if source.in_package("observability", "benchmarks"):
        # The observability layer exists to read clocks; its output is
        # telemetry, never pipeline output (same carve-out as the
        # per-file wallclock rule).
        return
    assert source.tree is not None
    nodes = list(iter_own_nodes(info.node)) if info.node is not None \
        else []
    from_random = names_imported_from(source.tree, "random")
    scans = (
        ("wallclock", iter_wallclock_calls(nodes)),
        ("wallclock", iter_entropy_calls(nodes)),
        ("unseeded-random", iter_unseeded_random(nodes, from_random)),
        ("set-iteration", iter_set_order(nodes)),
    )
    for base_rule, hits in scans:
        for node, message in hits:
            line = getattr(node, "lineno", info.lineno)
            if _suppressed(source, line, base_rule):
                continue
            yield TaintHit(info.qualname, source.display, line,
                           message, base_rule)


DETERMINISM = TaintLattice(
    name="determinism",
    description=("nondeterministic primitives reachable from "
                 "LSDSystem.match, task handlers, or the constraint "
                 "search"),
    entries=_determinism_entries,
    scan=_determinism_scan,
)


# ---------------------------------------------------------------------------
# worker purity / shared writes
# ---------------------------------------------------------------------------

def _worker_entries(graph: CallGraph) -> set[str]:
    return set(graph.worker_roots)


def _purity_scan(graph: CallGraph, info: FunctionInfo,
                 source: SourceFile) -> Iterator[TaintHit]:
    if info.node is None:
        return
    nodes = list(iter_own_nodes(info.node))
    for node, description in _shared_writes(info.node, nodes):
        line = getattr(node, "lineno", info.lineno)
        if _suppressed(source, line, "executor-shared-write",
                       "process-unsafe-state"):
            continue
        yield TaintHit(info.qualname, source.display, line,
                       description, "executor-shared-write")


WORKER_PURITY = TaintLattice(
    name="worker-purity",
    description=("module/closure state written anywhere transitively "
                 "reachable from a worker execution root"),
    entries=_worker_entries,
    scan=_purity_scan,
)


# ---------------------------------------------------------------------------
# fault-escape flow
# ---------------------------------------------------------------------------

def iter_arming_sites(info: FunctionInfo
                      ) -> Iterator[tuple[ast.AST, str]]:
    """``(call, site spelling)`` for fault-site arming calls in the
    function's own body: ``<recv>.fire(SITE_X | "literal", ...)`` and
    ``.corrupt(...)`` alike."""
    if info.node is None:
        return
    for node in iter_own_nodes(info.node):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ARMING_METHODS
                and node.args):
            continue
        arg = node.args[0]
        site = None
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            site = arg.value
        else:
            name = dotted(arg)
            if name is not None:
                terminal = name.rsplit(".", 1)[-1]
                if terminal.startswith("SITE_"):
                    site = terminal
        if site is not None:
            yield node, site


def handles_fault(info: FunctionInfo) -> bool:
    """Whether the function contains an except clause that catches an
    injected fault: ``FaultInjected`` by name (directly or in a tuple),
    or an ``Exception``/``BaseException``/bare catch-all."""
    if info.node is None:
        return False
    for node in iter_own_nodes(info.node):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:  # bare except
            return True
        exprs = node.type.elts if isinstance(node.type, ast.Tuple) \
            else [node.type]
        for expr in exprs:
            name = dotted(expr)
            if name and name.rsplit(".", 1)[-1] in _FAULT_CATCHALLS:
                return True
    return False


def documents_propagation(info: FunctionInfo) -> bool:
    """Whether the arming function's docstring names the injected
    exception — the explicit opt-out for sites that *model a crash*
    and are supposed to propagate (e.g. ``artifact.write``)."""
    if info.node is None:
        return False
    doc = ast.get_docstring(info.node) or ""
    return _FAULT_EXCEPTION in doc


def _fault_scan(graph: CallGraph, info: FunctionInfo,
                source: SourceFile) -> Iterator[TaintHit]:
    for node, site in iter_arming_sites(info):
        line = getattr(node, "lineno", info.lineno)
        if _suppressed(source, line, "fault-site-catalogue"):
            continue
        yield TaintHit(info.qualname, source.display, line,
                       f"arms fault site {site}", "fault-site-catalogue")


FAULT_FLOW = TaintLattice(
    name="fault-flow",
    description=("armed fault sites whose injected exception no "
                 "caller path handles"),
    entries=_worker_entries,  # unused; the rule walks callers instead
    scan=_fault_scan,
)


def all_lattices() -> tuple[TaintLattice, ...]:
    return (DETERMINISM, WORKER_PURITY, FAULT_FLOW)
