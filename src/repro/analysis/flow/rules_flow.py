"""The ``flow-*`` rules: interprocedural findings with call-chain
evidence.

These rules only run when the engine is asked for flow analysis
(``lsd-lint --flow``, or an explicit ``--select flow-...``): they need
the shared :class:`~repro.analysis.flow.callgraph.CallGraph` artifact
the engine builds once per run. Every finding carries the shortest
call chain from an entry point to the offending statement in its
``chain`` field — rendered indented under the finding by the CLI and
preserved verbatim in the JSON artifact.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..astutil import chain_parts
from ..engine import Rule, SourceFile, register
from ..findings import Finding
from ..rules_concurrency import _shared_writes
from .callgraph import CallGraph, iter_own_nodes
from .lattice import (DETERMINISM, WORKER_PURITY, documents_propagation,
                      handles_fault, iter_arming_sites)
from .reachability import (callers_of, chain_to, reachable_from,
                           render_chain)

import ast


class FlowRule(Rule):
    """Base class for rules that consume the shared call graph."""

    requires_flow = True

    def chain_finding(self, source: SourceFile, line: int,
                      message: str, chain: Sequence[str]) -> Finding:
        return Finding(source.display, line, self.id, message,
                       self.severity, chain=tuple(chain))


@register
class NondeterministicPathRule(FlowRule):
    """A nondeterministic primitive on any path reachable from the
    matching pipeline's entry points breaks byte-identical output —
    no matter how many helper calls deep it hides."""

    id = "flow-nondeterministic-path"
    severity = "error"
    description = ("wallclock/unseeded-RNG/OS-entropy/set-order "
                   "primitive reachable from LSDSystem.match, a task "
                   "handler, or the constraint search")

    def check_flow(self, graph: CallGraph,
                   sources: Sequence[SourceFile]) -> Iterable[Finding]:
        entries = DETERMINISM.entries(graph)
        forest = reachable_from(graph, entries)
        for qualname in sorted(forest):
            info = graph.functions[qualname]
            source = graph.source_of(info)
            if source is None:
                continue
            chain = chain_to(forest, qualname)
            for hit in DETERMINISM.scan(graph, info, source):
                yield self.chain_finding(
                    source, hit.line,
                    f"{hit.detail} — on a pipeline path from "
                    f"{_short(chain[0])}", chain)


@register
class WorkerSharedWriteRule(FlowRule):
    """Worker-executed code must not write shared state, however many
    helpers deep the write happens — this is ``executor-shared-write``
    / ``process-unsafe-state`` at full transitive reachability."""

    id = "flow-worker-shared-write"
    severity = "error"
    description = ("module/closure state written in code transitively "
                   "reachable from a worker execution root (task "
                   "handler or mapped callable)")

    def check_flow(self, graph: CallGraph,
                   sources: Sequence[SourceFile]) -> Iterable[Finding]:
        forest = reachable_from(graph, WORKER_PURITY.entries(graph))
        for qualname in sorted(forest):
            info = graph.functions[qualname]
            source = graph.source_of(info)
            if source is None:
                continue
            chain = chain_to(forest, qualname)
            for hit in WORKER_PURITY.scan(graph, info, source):
                yield self.chain_finding(
                    source, hit.line,
                    f"{hit.detail} on a worker path from "
                    f"{_short(chain[0])}; the write races (threads) or "
                    f"silently stays in the fork (processes)", chain)


@register
class FaultUnhandledRule(FlowRule):
    """Every armed fault site needs a ``FaultInjected`` handler on
    some caller path (or an explicit docstring opt-out naming the
    exception) — otherwise an injected fault escapes the resilience
    machinery as a raw crash the degradation report never sees."""

    id = "flow-fault-unhandled"
    severity = "error"
    description = ("fault site armed on a path with no FaultInjected "
                   "handler in any transitive caller and no documented "
                   "propagation")

    def check_flow(self, graph: CallGraph,
                   sources: Sequence[SourceFile]) -> Iterable[Finding]:
        handlers = {qualname for qualname, info in
                    graph.functions.items() if handles_fault(info)}
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            source = graph.source_of(info)
            if source is None:
                continue
            sites = list(iter_arming_sites(info))
            if not sites:
                continue
            if handles_fault(info) or documents_propagation(info):
                continue
            reverse = callers_of(graph, [qualname])
            if handlers.intersection(reverse):
                continue
            chain = _caller_chain(graph, reverse, qualname)
            for node, site in sites:
                line = getattr(node, "lineno", info.lineno)
                if source.suppressions.get(line) is not None and \
                        _line_suppressed(source, line, self.id):
                    continue
                yield self.chain_finding(
                    source, line,
                    f"fault site {site} armed in {_short(qualname)} "
                    f"but no caller path handles FaultInjected; an "
                    f"injected fault escapes as a raw crash", chain)


@register
class UnresolvedHotCallRule(FlowRule):
    """An unresolved call on the hot matching path is a hole in every
    other flow proof — surface it instead of silently assuming it is
    benign."""

    id = "flow-unresolved-hot-call"
    severity = "warning"
    description = ("call site the resolver cannot bind inside a "
                   "function reachable from the matching pipeline's "
                   "entry points")

    def check_flow(self, graph: CallGraph,
                   sources: Sequence[SourceFile]) -> Iterable[Finding]:
        forest = reachable_from(graph, DETERMINISM.entries(graph))
        for unresolved in sorted(
                graph.unresolved,
                key=lambda u: (u.caller, u.line, u.text)):
            if unresolved.caller not in forest:
                continue
            info = graph.functions[unresolved.caller]
            source = graph.source_of(info)
            if source is None:
                continue
            chain = chain_to(forest, unresolved.caller)
            yield self.chain_finding(
                source, unresolved.line,
                f"cannot resolve call to {unresolved.text!r} "
                f"({unresolved.reason}) on a pipeline path from "
                f"{_short(chain[0])}; flow proofs do not cover it",
                chain)


@register
class ObserverGapRule(FlowRule):
    """A span opened on a worker path without an explicit ``parent=``
    lands on the worker's own (empty) span stack: it can never merge
    back into the run's trace tree, so the collector shows a bogus
    root — or nothing — depending on worker count."""

    id = "flow-observer-gap"
    severity = "error"
    description = ("trace span opened on a worker path without an "
                   "explicit parent= — no merge point back into the "
                   "run's trace tree exists")

    def check_flow(self, graph: CallGraph,
                   sources: Sequence[SourceFile]) -> Iterable[Finding]:
        forest = reachable_from(graph, WORKER_PURITY.entries(graph))
        for qualname in sorted(forest):
            info = graph.functions[qualname]
            source = graph.source_of(info)
            if source is None or info.node is None:
                continue
            if source.in_package("observability"):
                continue  # the collector's own plumbing
            chain = chain_to(forest, qualname)
            for node in iter_own_nodes(info.node):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "span"):
                    continue
                if any(kw.arg == "parent" for kw in node.keywords):
                    continue
                yield self.chain_finding(
                    source, node.lineno,
                    f"span opened on a worker path from "
                    f"{_short(chain[0])} without parent=; it cannot "
                    f"merge into the run trace", chain)


@register
class CheckpointUnregisteredStateRule(FlowRule):
    """Crash-safe resume assumes the pipeline's mutable module-level
    state is *accounted for*: every such name must appear in
    ``repro.runtime.checkpoint.REGISTERED_MUTABLE_STATE`` with a
    documented resume story (persisted by a checkpoint stage, or
    rebuilt deterministically). A write to unregistered module state
    on a matching-pipeline path is state a resumed run would silently
    lose — the race-tolerant cache allowlist deliberately does not
    apply here, because a write can be a benign *race* and still be a
    resume hazard."""

    id = "checkpoint-unregistered-state"
    severity = "error"
    description = ("module-level state written on a matching-pipeline "
                   "path but missing from the checkpoint registry "
                   "(repro.runtime.checkpoint."
                   "REGISTERED_MUTABLE_STATE)")

    def check_flow(self, graph: CallGraph,
                   sources: Sequence[SourceFile]) -> Iterable[Finding]:
        from ...runtime.checkpoint import REGISTERED_MUTABLE_STATE

        registered = {name.rsplit(".", 1)[-1]
                      for name in REGISTERED_MUTABLE_STATE}
        module_state: dict[int, set[str]] = {}
        forest = reachable_from(graph, DETERMINISM.entries(graph))
        for qualname in sorted(forest):
            info = graph.functions[qualname]
            source = graph.source_of(info)
            if source is None or info.node is None:
                continue
            if source.in_package("observability", "analysis"):
                # Telemetry registries mutate by design and are never
                # resumed from; the linter is not pipeline code.
                continue
            key = id(source)
            if key not in module_state:
                module_state[key] = _module_bindings(source)
            chain = chain_to(forest, qualname)
            nodes = list(iter_own_nodes(info.node))
            for node, description in _shared_writes(
                    info.node, nodes, benign=frozenset()):
                roots = _write_roots(node)
                if roots is None:
                    # A nonlocal/closure write mutates an enclosing
                    # frame that dies with the run — resume rebuilds
                    # it; only module state outlives stages.
                    continue
                if not isinstance(node, ast.Global):
                    roots = roots & module_state[key]
                if not roots or roots & registered:
                    continue
                line = getattr(node, "lineno", info.lineno)
                if _line_suppressed(source, line, self.id):
                    continue
                yield self.chain_finding(
                    source, line,
                    f"{description} on a pipeline path from "
                    f"{_short(chain[0])} but the name is not in "
                    f"REGISTERED_MUTABLE_STATE; a resumed run would "
                    f"silently lose this state", chain)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _write_roots(node: ast.AST) -> set[str] | None:
    """The root name(s) a shared write mutates, or ``None`` for a
    closure (``nonlocal``) write the checkpoint rule ignores."""
    if isinstance(node, ast.Global):
        return set(node.names)
    if isinstance(node, ast.Nonlocal):
        return None
    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        roots: set[str] = set()
        targets = getattr(node, "targets", None) or [node.target]
        for target in targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                parts = chain_parts(target)
                if parts:
                    roots.add(parts[0])
        return roots
    if isinstance(node, ast.Call):
        parts = chain_parts(node.func)
        return {parts[0]} if parts else set()
    return set()


def _module_bindings(source: SourceFile) -> set[str]:
    """Names bound at the module's top level — assignments and import
    aliases. Only a write whose root is one of these (or an explicit
    ``global``) touches state that outlives the run's stack and so
    falls under the checkpoint registry's contract."""
    names: set[str] = set()
    if source.tree is None:
        return names
    for node in source.tree.body:
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = getattr(node, "targets", None) or [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname
                          or alias.name.split(".", 1)[0])
    return names

def _short(qualname: str) -> str:
    return qualname[len("repro."):] if qualname.startswith("repro.") \
        else qualname


def _line_suppressed(source: SourceFile, line: int, rule: str) -> bool:
    listed = source.suppressions.get(line)
    if listed is None:
        return False
    return not listed or rule in listed


def _caller_chain(graph: CallGraph,
                  reverse: dict[str, tuple[str | None, int]],
                  target: str) -> list[str]:
    """An entry-to-site witness chain for a fault finding: from some
    caller nobody else calls, down to the arming function."""
    roots = [qualname for qualname in sorted(reverse)
             if not graph.edges_to(qualname)]
    start = roots[0] if roots else target
    chain = [start]
    node = start
    while node != target:
        nxt = reverse[node][0]
        if nxt is None or nxt in chain:
            break
        chain.append(nxt)
        node = nxt
    return chain


def summarize_chains(findings: Iterable[Finding]) -> str:
    """Debug helper: findings one per line with rendered chains."""
    lines = []
    for finding in findings:
        lines.append(finding.render())
        if finding.chain:
            lines.append(f"    via {render_chain(finding.chain)}")
    return "\n".join(lines)
