"""Interprocedural dataflow analysis for ``lsd-lint``.

The per-file rules of :mod:`repro.analysis` see one statement at a
time; this package sees the whole program. It builds a project-wide
call graph over every ``src/repro`` module (:mod:`.callgraph`), runs
reachability/taint propagation over it (:mod:`.reachability`) for the
three built-in lattices (:mod:`.lattice` — determinism, worker
purity/shared-write, fault-escape), and registers the ``flow-*`` rules
(:mod:`.rules_flow`) whose findings carry the full call chain from an
entry point to the offending statement as evidence.

The graph is deliberately honest about its own limits: every call site
the resolver cannot bind is recorded as an *unresolved* edge and
reported in the JSON artifact, so the soundness gap is a number you
can watch, not a silent assumption.
"""

from .callgraph import CallGraph, build_graph
from .lattice import (DETERMINISM, FAULT_FLOW, WORKER_PURITY, TaintHit,
                      TaintLattice, all_lattices)
from .reachability import chain_to, reachable_from

__all__ = [
    "CallGraph", "build_graph",
    "TaintLattice", "TaintHit", "all_lattices",
    "DETERMINISM", "WORKER_PURITY", "FAULT_FLOW",
    "reachable_from", "chain_to",
]
