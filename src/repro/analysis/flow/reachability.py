"""Reachability over the call graph, with chain reconstruction.

All three lattices reduce to the same question: *which functions can a
given set of entry points reach, and by what path?* The BFS here
answers it once per root set; the forest it returns reconstructs the
shortest call chain from an entry point to any reached node, which is
exactly the evidence a ``flow-*`` finding carries.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from .callgraph import CallGraph

#: Edge kinds that propagate execution forward. ``ref`` is included —
#: a function holding a reference to another can invoke it, and taint
#: must not hide behind first-class functions.
EXEC_KINDS = frozenset({"direct", "method", "dispatch", "init",
                        "partial", "fanout", "ref"})


def reachable_from(graph: CallGraph, roots: Iterable[str],
                   kinds: frozenset[str] = EXEC_KINDS,
                   ) -> dict[str, tuple[str | None, int]]:
    """BFS forest ``node -> (parent, call line)`` over forward edges.

    Roots map to ``(None, 0)``. Breadth-first order makes every
    reconstructed chain a *shortest* witness, so findings stay stable
    as unrelated code grows longer paths to the same sink.
    """
    forest: dict[str, tuple[str | None, int]] = {}
    queue: deque[str] = deque()
    for root in sorted(set(roots)):
        if root in graph.functions and root not in forest:
            forest[root] = (None, 0)
            queue.append(root)
    while queue:
        current = queue.popleft()
        for edge in graph.edges_from(current):
            if edge.kind not in kinds:
                continue
            if edge.callee in forest:
                continue
            forest[edge.callee] = (current, edge.line)
            queue.append(edge.callee)
    return forest


def chain_to(forest: dict[str, tuple[str | None, int]],
             target: str) -> list[str]:
    """The call chain root → … → ``target`` (empty if unreached)."""
    if target not in forest:
        return []
    chain: list[str] = []
    node: str | None = target
    while node is not None:
        chain.append(node)
        node = forest[node][0]
        if len(chain) > 10_000:  # cycle guard (forest is acyclic)
            break  # pragma: no cover - defensive
    chain.reverse()
    return chain


def callers_of(graph: CallGraph, targets: Iterable[str],
               kinds: frozenset[str] = EXEC_KINDS,
               ) -> dict[str, tuple[str | None, int]]:
    """Reverse BFS forest: every function that can *reach* a target.

    ``node -> (the callee it reaches a target through, call line)``;
    targets map to ``(None, 0)``. Used by the fault-escape lattice to
    walk from an arming site up to whoever could have handled it.
    """
    forest: dict[str, tuple[str | None, int]] = {}
    queue: deque[str] = deque()
    for target in sorted(set(targets)):
        if target in graph.functions and target not in forest:
            forest[target] = (None, 0)
            queue.append(target)
    while queue:
        current = queue.popleft()
        for edge in graph.edges_to(current):
            if edge.kind not in kinds:
                continue
            if edge.caller in forest:
                continue
            forest[edge.caller] = (current, edge.line)
            queue.append(edge.caller)
    return forest


def render_chain(chain: Sequence[str], strip: str = "repro.") -> str:
    """Human form of a call chain for finding messages: the project
    prefix dropped, links joined with `` -> ``."""
    parts = [name[len(strip):] if name.startswith(strip) else name
             for name in chain]
    return " -> ".join(parts)
