"""The project call graph: every function, every call site, one pass.

Nodes are function definitions (module functions, methods, nested
defs) plus one ``<module>`` pseudo-node per file for import-time code.
Edges are classified by how they were resolved:

* ``direct`` — the callee is a uniquely named module-level function,
  nested def, imported project function, or ``Class.method`` spelled
  out at the call site;
* ``method`` — ``self.m()`` / ``cls.m()`` bound through the enclosing
  class and its project MRO;
* ``dispatch`` — a virtual call: either overrides of a ``self.m()``
  target in known subclasses (the ``BaseLearner`` / ``Rule``
  hierarchies and everything else alike), or a method call on a value
  of unknown type whose name *some* project class defines — the graph
  over-approximates to every definition of that name;
* ``init`` — a class constructed, edged to its ``__init__``;
* ``partial`` — ``functools.partial(f, ...)`` unwrapped one step;
* ``fanout`` — the callable handed to a ``ParallelExecutor``
  ``map``/``starmap``/``map_profiled`` call (these targets are also
  recorded as :attr:`CallGraph.worker_roots`, alongside every
  ``@task_handler`` function);
* ``ref`` — a project function referenced by name without being
  called (passed as a callback); treated as a possible call so taint
  cannot hide behind first-class functions.

Calls that cannot be bound at all (computed callees, unknown names,
attributes of values the resolver cannot type *when* some project
class defines a method of that name is also unavailable) become
:class:`UnresolvedCall` records. Calls whose target is provably
outside the project — stdlib/numpy modules, builtins, and method
names no project class defines (a closed-world argument: such a call
cannot re-enter project code without ``getattr`` tricks) — count as
*external*, resolved but edge-free.

Known soundness gaps, by design (documented in DESIGN.md §9):
``getattr``-constructed calls, exec/eval, monkeypatching, and
callables stored in containers are invisible; dispatch edges
over-approximate; decorator wrappers are not modelled beyond name
identity.
"""

from __future__ import annotations

import ast
import builtins
import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..astutil import chain_parts, dotted
from ..engine import SourceFile

#: Name every project module starts with; files outside it are ignored.
PROJECT_ROOT = "repro"

#: ParallelExecutor entry points whose first argument runs on workers.
FANOUT_METHODS = ("map", "starmap", "map_profiled")

_BUILTIN_NAMES = frozenset(dir(builtins))

#: How many re-export hops ``from .x import y`` chains are followed.
_IMPORT_DEPTH = 6


@dataclass
class FunctionInfo:
    """One function definition node in the graph."""

    qualname: str            # repro.core.matching._predict_tags.predict_with
    module: str              # repro.core.matching
    name: str                # predict_with
    path: str                # display path of the defining file
    lineno: int
    end_lineno: int
    cls: str | None = None   # qualname of the immediately enclosing class
    decorators: tuple[str, ...] = ()
    node: ast.AST | None = None

    @property
    def is_task_handler(self) -> bool:
        return any(dec == "task_handler"
                   or dec.endswith(".task_handler")
                   for dec in self.decorators)


@dataclass(frozen=True)
class CallEdge:
    """One resolved call (or callable reference) between two nodes."""

    caller: str
    callee: str
    line: int
    kind: str  # direct|method|dispatch|init|partial|fanout|ref


@dataclass(frozen=True)
class UnresolvedCall:
    """A call site the resolver could not bind — a visible soundness gap."""

    caller: str
    line: int
    text: str    # the callee expression, as written
    reason: str


@dataclass
class _ClassInfo:
    qualname: str
    module: str
    bases: tuple[str, ...] = ()      # raw dotted spellings
    methods: dict[str, str] = field(default_factory=dict)
    base_quals: tuple[str, ...] = ()  # resolved project-class qualnames


class CallGraph:
    """The assembled graph plus its resolution bookkeeping."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, _ClassInfo] = {}
        self.edges: list[CallEdge] = []
        self.unresolved: list[UnresolvedCall] = []
        #: Call sites bound to targets outside the project.
        self.external_calls: int = 0
        #: Call sites bound to one or more project nodes.
        self.resolved_calls: int = 0
        #: Functions that run on worker threads/processes: every
        #: ``@task_handler`` def plus every resolved fan-out callable.
        self.worker_roots: set[str] = set()
        #: display path -> SourceFile, for rules that re-scan bodies.
        self.sources: dict[str, SourceFile] = {}
        self._out: dict[str, list[CallEdge]] = {}
        self._in: dict[str, list[CallEdge]] = {}

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def add_edge(self, edge: CallEdge) -> None:
        self.edges.append(edge)
        self._out.setdefault(edge.caller, []).append(edge)
        self._in.setdefault(edge.callee, []).append(edge)

    def edges_from(self, qualname: str) -> list[CallEdge]:
        return self._out.get(qualname, [])

    def edges_to(self, qualname: str) -> list[CallEdge]:
        return self._in.get(qualname, [])

    def source_of(self, info: FunctionInfo) -> SourceFile | None:
        return self.sources.get(info.path)

    def subclasses_of(self, class_qual: str) -> list[str]:
        """All transitive project subclasses of ``class_qual``."""
        direct: dict[str, list[str]] = {}
        for cls in self.classes.values():
            for base in cls.base_quals:
                direct.setdefault(base, []).append(cls.qualname)
        out: list[str] = []
        frontier = [class_qual]
        while frontier:
            current = frontier.pop()
            for sub in direct.get(current, ()):
                if sub not in out:
                    out.append(sub)
                    frontier.append(sub)
        return sorted(out)

    # ------------------------------------------------------------------
    # stats and serialization
    # ------------------------------------------------------------------
    @property
    def total_call_sites(self) -> int:
        return (self.resolved_calls + self.external_calls
                + len(self.unresolved))

    @property
    def resolution_ratio(self) -> float:
        """Share of call sites bound to a project target or proven
        external — the number the ≥90% acceptance gate watches."""
        total = self.total_call_sites
        if total == 0:
            return 1.0
        return 1.0 - len(self.unresolved) / total

    def stats(self) -> dict:
        kinds: dict[str, int] = {}
        for edge in self.edges:
            kinds[edge.kind] = kinds.get(edge.kind, 0) + 1
        return {
            "functions": len(self.functions),
            "classes": len(self.classes),
            "edges": len(self.edges),
            "edge_kinds": dict(sorted(kinds.items())),
            "call_sites": self.total_call_sites,
            "resolved": self.resolved_calls,
            "external": self.external_calls,
            "unresolved": len(self.unresolved),
            "resolution_ratio": round(self.resolution_ratio, 4),
            "worker_roots": len(self.worker_roots),
        }

    def to_json(self) -> str:
        payload = {
            "stats": self.stats(),
            "functions": [
                {"qualname": info.qualname, "path": info.path,
                 "line": info.lineno, "class": info.cls,
                 "task_handler": info.is_task_handler}
                for _, info in sorted(self.functions.items())],
            "edges": [
                {"caller": e.caller, "callee": e.callee,
                 "line": e.line, "kind": e.kind}
                for e in sorted(self.edges, key=lambda e: (
                    e.caller, e.line, e.callee, e.kind))],
            "unresolved": [
                {"caller": u.caller, "line": u.line, "text": u.text,
                 "reason": u.reason}
                for u in sorted(self.unresolved, key=lambda u: (
                    u.caller, u.line, u.text))],
            "worker_roots": sorted(self.worker_roots),
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def to_dot(self) -> str:
        """GraphViz form (resolved edges only; refs dashed)."""
        lines = ["digraph callgraph {", "  rankdir=LR;",
                 '  node [shape=box, fontsize=9];']
        for qualname in sorted(self.functions):
            label = qualname
            if qualname.startswith(PROJECT_ROOT + "."):
                label = qualname[len(PROJECT_ROOT) + 1:]
            shape = (', style=filled, fillcolor="#ffe0b2"'
                     if qualname in self.worker_roots else "")
            lines.append(f'  "{qualname}" [label="{label}"{shape}];')
        for edge in sorted(set(self.edges), key=lambda e: (
                e.caller, e.callee, e.kind)):
            style = ' [style=dashed]' if edge.kind == "ref" else ""
            lines.append(f'  "{edge.caller}" -> "{edge.callee}"{style};')
        lines.append("}")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CallGraph {len(self.functions)} functions, "
                f"{len(self.edges)} edges, "
                f"{len(self.unresolved)} unresolved>")


# ---------------------------------------------------------------------------
# module naming
# ---------------------------------------------------------------------------

def module_name(display: str) -> str | None:
    """``repro.core.matching`` for ``src/repro/core/matching.py``;
    ``None`` for files outside the project package."""
    parts = display.replace("\\", "/").split("/")
    if PROJECT_ROOT not in parts:
        return None
    parts = parts[parts.index(PROJECT_ROOT):]
    if not parts[-1].endswith(".py"):
        return None
    last = parts[-1][:-3]
    parts = parts[:-1] if last == "__init__" else parts[:-1] + [last]
    return ".".join(parts)


def _is_package(display: str) -> bool:
    return display.endswith("__init__.py")


# ---------------------------------------------------------------------------
# pass 1: definitions and imports
# ---------------------------------------------------------------------------

@dataclass
class _ModuleInfo:
    name: str
    display: str
    is_package: bool
    #: top-level name -> ("func"|"class", qualname) or ("import", target)
    scope: dict[str, tuple[str, str]] = field(default_factory=dict)


def _decorator_names(node: ast.AST) -> tuple[str, ...]:
    names = []
    for dec in getattr(node, "decorator_list", ()):
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted(target)
        if name:
            names.append(name)
    return tuple(names)


def _collect_module(graph: CallGraph, mod: _ModuleInfo,
                    source: SourceFile) -> None:
    """Register every def/class/import of one module."""
    assert source.tree is not None
    graph.sources[source.display] = source

    def visit(body: Iterable[ast.stmt], prefix: str,
              cls: str | None, top_level: bool) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{node.name}"
                graph.functions[qualname] = FunctionInfo(
                    qualname=qualname, module=mod.name, name=node.name,
                    path=source.display, lineno=node.lineno,
                    end_lineno=node.end_lineno or node.lineno, cls=cls,
                    decorators=_decorator_names(node), node=node)
                if top_level:
                    mod.scope[node.name] = ("func", qualname)
                if cls is not None and cls in graph.classes:
                    graph.classes[cls].methods[node.name] = qualname
                visit(node.body, qualname, None, False)
            elif isinstance(node, ast.ClassDef):
                qualname = f"{prefix}.{node.name}"
                bases = tuple(name for name in
                              (dotted(base) for base in node.bases)
                              if name)
                graph.classes[qualname] = _ClassInfo(
                    qualname=qualname, module=mod.name, bases=bases)
                if top_level:
                    mod.scope[node.name] = ("class", qualname)
                visit(node.body, qualname, qualname, False)
            elif isinstance(node, ast.Import) and top_level:
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    mod.scope[local] = ("import", target)
            elif isinstance(node, ast.ImportFrom) and top_level:
                base = _import_base(mod, node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    target = f"{base}.{alias.name}" if base else \
                        alias.name
                    mod.scope[local] = ("import", target)
            elif isinstance(node, (ast.If, ast.Try)) and top_level:
                # TYPE_CHECKING / fallback-import blocks still bind
                # top-level names.
                for sub in ast.iter_child_nodes(node):
                    if isinstance(sub, (ast.Import, ast.ImportFrom,
                                        ast.FunctionDef,
                                        ast.AsyncFunctionDef,
                                        ast.ClassDef)):
                        visit([sub], prefix, cls, top_level)

    visit(source.tree.body, mod.name, None, True)


def _import_base(mod: _ModuleInfo, node: ast.ImportFrom) -> str:
    """The absolute module a ``from ... import`` names."""
    if not node.level:
        return node.module or ""
    parts = mod.name.split(".")
    # A package's relative level 1 is itself; a module's is its parent.
    keep = len(parts) - node.level + (1 if mod.is_package else 0)
    base = ".".join(parts[:max(keep, 0)])
    if node.module:
        base = f"{base}.{node.module}" if base else node.module
    return base


# ---------------------------------------------------------------------------
# pass 2: global name resolution
# ---------------------------------------------------------------------------

class _Resolver:
    """Binds dotted spellings to project functions/classes."""

    def __init__(self, graph: CallGraph,
                 modules: dict[str, _ModuleInfo]) -> None:
        self.graph = graph
        self.modules = modules
        #: method name -> every project method qualname defining it.
        self.method_index: dict[str, list[str]] = {}
        for cls in graph.classes.values():
            for name, qualname in cls.methods.items():
                self.method_index.setdefault(name, []).append(qualname)
        for candidates in self.method_index.values():
            candidates.sort()

    # -- dotted-path resolution -------------------------------------
    def resolve_path(self, target: str,
                     depth: int = _IMPORT_DEPTH) -> tuple[str, str] | None:
        """``("func"|"class"|"module"|"external", qualname)`` for an
        absolute dotted path, following re-export chains."""
        if depth <= 0:
            return None
        if not target.startswith(PROJECT_ROOT):
            return ("external", target)
        if target in self.graph.functions:
            return ("func", target)
        if target in self.graph.classes:
            return ("class", target)
        if target in self.modules:
            # A submodule can be shadowed by a same-named re-export in
            # the package __init__ (``from .tokenize import tokenize``
            # makes ``from ..text import tokenize`` bind the function,
            # not the module) — prefer the package-scope binding.
            head, _, attr = target.rpartition(".")
            parent = self.modules.get(head)
            if parent is not None and attr in parent.scope:
                entry_kind, entry_target = parent.scope[attr]
                if entry_kind == "import" and entry_target != target:
                    resolved = self.resolve_path(entry_target, depth - 1)
                    if resolved is not None and \
                            resolved[0] in ("func", "class"):
                        return resolved
                elif entry_kind in ("func", "class"):
                    return (entry_kind, entry_target)
            return ("module", target)
        head, _, attr = target.rpartition(".")
        if not head:
            return None
        # Class attribute: Class.method.
        resolved_head = self.resolve_path(head, depth - 1)
        if resolved_head is None:
            return None
        kind, qualname = resolved_head
        if kind == "class":
            method = self.mro_method(qualname, attr)
            return ("func", method) if method else None
        if kind == "module":
            entry = self.modules[qualname].scope.get(attr)
            if entry is None:
                return None
            entry_kind, entry_target = entry
            if entry_kind == "import":
                return self.resolve_path(entry_target, depth - 1)
            return (entry_kind, entry_target)
        if kind == "external":
            return ("external", target)
        return None

    # -- class machinery --------------------------------------------
    def link_bases(self) -> None:
        """Resolve each class's base spellings to project classes."""
        for cls in self.graph.classes.values():
            mod = self.modules.get(cls.module)
            quals = []
            for base in cls.bases:
                resolved = self._resolve_in_module(mod, base)
                if resolved and resolved[0] == "class":
                    quals.append(resolved[1])
            cls.base_quals = tuple(quals)

    def _resolve_in_module(self, mod: _ModuleInfo | None,
                           name: str) -> tuple[str, str] | None:
        """Resolve a dotted spelling in a module's top-level scope."""
        if mod is None:
            return None
        head, _, rest = name.partition(".")
        entry = mod.scope.get(head)
        if entry is None:
            if head in _BUILTIN_NAMES:
                return ("external", name)
            return None
        kind, target = entry
        if kind == "import":
            full = f"{target}.{rest}" if rest else target
            return self.resolve_path(full)
        full = f"{target}.{rest}" if rest else target
        return self.resolve_path(full) if rest else (kind, target)

    def mro_method(self, class_qual: str, method: str,
                   depth: int = 8) -> str | None:
        """The defining qualname of ``method`` on the project MRO."""
        if depth <= 0 or class_qual not in self.graph.classes:
            return None
        cls = self.graph.classes[class_qual]
        if method in cls.methods:
            return cls.methods[method]
        for base in cls.base_quals:
            found = self.mro_method(base, method, depth - 1)
            if found:
                return found
        return None

    def dispatch_targets(self, class_qual: str,
                         method: str) -> list[str]:
        """The MRO resolution plus every subclass override — the
        virtual-dispatch over-approximation."""
        targets = []
        base = self.mro_method(class_qual, method)
        if base:
            targets.append(base)
        for sub in self.graph.subclasses_of(class_qual):
            override = self.graph.classes[sub].methods.get(method)
            if override and override not in targets:
                targets.append(override)
        return targets


# ---------------------------------------------------------------------------
# pass 3: call-site resolution
# ---------------------------------------------------------------------------

def _own_statements(fn: ast.AST) -> Iterator[ast.AST]:
    """Every node in a function's own body, *excluding* nested
    function/class definitions (they are their own graph nodes) but
    *including* lambda bodies and comprehensions."""
    stack = list(getattr(fn, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # The def node itself is visible (it binds a name) but its
            # body belongs to its own graph node.
            continue
        stack.extend(ast.iter_child_nodes(node))


def iter_own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Public alias of the own-body walker used by the lattices."""
    return _own_statements(fn)


def _local_aliases(fn: ast.AST,
                   env: dict[str, str]) -> dict[str, str]:
    """One-step callable aliases bound inside ``fn``:
    ``g = f`` and ``g = functools.partial(f, ...)`` where ``f`` is a
    visible project function."""
    aliases: dict[str, str] = {}
    for node in _own_statements(fn):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            continue
        value = node.value
        if isinstance(value, ast.Call) and _is_partial(value.func):
            value = value.args[0] if value.args else None
        if isinstance(value, ast.Name) and value.id in env:
            aliases[node.targets[0].id] = env[value.id]
    return aliases


def _is_partial(func: ast.AST) -> bool:
    name = dotted(func)
    return name in ("partial", "functools.partial")


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


class _CallScanner:
    """Resolves every call site of one function body."""

    def __init__(self, resolver: _Resolver, mod: _ModuleInfo,
                 caller: str, fn: ast.AST, cls: str | None,
                 env: dict[str, str]) -> None:
        self.resolver = resolver
        self.graph = resolver.graph
        self.mod = mod
        self.caller = caller
        self.fn = fn
        self.cls = cls
        self.env = dict(env)
        self.env.update(_local_aliases(fn, self.env))
        self.params = self._param_names(fn)

    @staticmethod
    def _is_super_call(value: ast.AST) -> bool:
        return (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "super")

    @staticmethod
    def _param_names(fn: ast.AST) -> set[str]:
        args = getattr(fn, "args", None)
        if args is None:
            return set()
        names = {a.arg for a in (*args.posonlyargs, *args.args,
                                 *args.kwonlyargs)}
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
        return names

    # ------------------------------------------------------------------
    def scan(self) -> None:
        seen_refs: set[tuple[str, int]] = set()
        for node in _own_statements(self.fn):
            if isinstance(node, ast.Call):
                self._resolve_call(node)
            elif isinstance(node, (ast.Name, ast.Attribute)):
                self._maybe_ref(node, seen_refs)

    # -- callable references -----------------------------------------
    def _maybe_ref(self, node: ast.AST, seen: set) -> None:
        """A project function referenced outside call position becomes
        a ``ref`` edge — callbacks cannot hide taint."""
        parent_call = getattr(node, "_lsd_call_func", False)
        if parent_call:
            return
        if isinstance(node, ast.Name):
            target = self.env.get(node.id)
            if target and target in self.graph.functions:
                key = (target, node.lineno)
                if key not in seen:
                    seen.add(key)
                    self.graph.add_edge(CallEdge(
                        self.caller, target, node.lineno, "ref"))
        elif isinstance(node, ast.Attribute):
            name = dotted(node)
            if name is None:
                return
            resolved = self.resolver._resolve_in_module(self.mod, name)
            if resolved and resolved[0] == "func":
                key = (resolved[1], node.lineno)
                if key not in seen:
                    seen.add(key)
                    self.graph.add_edge(CallEdge(
                        self.caller, resolved[1], node.lineno, "ref"))

    # -- call sites ---------------------------------------------------
    def _resolve_call(self, node: ast.Call) -> None:
        func = node.func
        # Mark the func expression (and its chain) so the ref pass does
        # not double-count call positions.
        for sub in ast.walk(func):
            sub._lsd_call_func = True  # type: ignore[attr-defined]

        if _is_partial(func):
            self.graph.resolved_calls += 1
            if node.args:
                self._edge_for_callable(node.args[0], node.lineno,
                                        "partial")
            return
        if isinstance(func, ast.Attribute) and \
                func.attr in FANOUT_METHODS and node.args:
            # Fan-out: resolve the method call itself as usual below,
            # and the mapped callable as a worker root.
            for target in self._callable_targets(node.args[0]):
                self.graph.worker_roots.add(target)
                self.graph.add_edge(CallEdge(
                    self.caller, target, node.lineno, "fanout"))

        if isinstance(func, ast.Name):
            self._resolve_name_call(node, func)
        elif isinstance(func, ast.Attribute):
            self._resolve_attr_call(node, func)
        elif isinstance(func, ast.Lambda):
            self.graph.resolved_calls += 1  # body scanned in place
        else:
            self._unresolved(node, "computed callee")

    def _resolve_name_call(self, node: ast.Call,
                           func: ast.Name) -> None:
        name = func.id
        target = self.env.get(name)
        if target is not None:
            resolved = self.resolver.resolve_path(target)
            if resolved is None:
                self._unresolved(node, "unresolvable import")
                return
            kind, qualname = resolved
            if kind == "func":
                self._add(node, qualname, "direct")
            elif kind == "class":
                self._class_init(node, qualname)
            elif kind == "external":
                self.graph.external_calls += 1
            else:  # calling a module — nonsense, count unresolved
                self._unresolved(node, "module called")
            return
        if name in self.params:
            self._unresolved(node, "callable parameter")
            return
        if name in _BUILTIN_NAMES:
            self.graph.external_calls += 1
            return
        self._unresolved(node, "unknown name")

    def _resolve_attr_call(self, node: ast.Call,
                           func: ast.Attribute) -> None:
        parts = chain_parts(func)
        method = func.attr
        if parts and parts[0] in ("self", "cls") and self.cls and \
                len(parts) == 2:
            targets = self.resolver.dispatch_targets(self.cls, method)
            if targets:
                kind = "method" if len(targets) == 1 else "dispatch"
                self._add_many(node, targets, kind)
            else:
                # Inherited from an external base (ABC helpers etc.).
                self.graph.external_calls += 1
            return
        if self._is_super_call(func.value):
            # super().m() binds up the *enclosing* class's MRO — never
            # closed-world dispatch (which would wire every __init__ in
            # the project together).
            targets = []
            if self.cls and self.cls in self.graph.classes:
                for base in self.graph.classes[self.cls].base_quals:
                    found = self.resolver.mro_method(base, method)
                    if found and found not in targets:
                        targets.append(found)
            if targets:
                self._add_many(node, targets, "method")
            else:  # object.__init__ / an external base's method
                self.graph.external_calls += 1
            return
        name = dotted(func)
        if name is not None:
            resolved = self.resolver._resolve_in_module(self.mod, name)
            if resolved is not None:
                kind, qualname = resolved
                if kind == "func":
                    self._add(node, qualname, "direct")
                elif kind == "class":
                    self._class_init(node, qualname)
                elif kind == "external":
                    self.graph.external_calls += 1
                else:
                    self._unresolved(node, "module called")
                return
        # Receiver of unknown type: closed-world method-name dispatch.
        # Dunders are exempt — ``x.__init__()`` spellings are not how
        # project constructors run, and indexing them would wire every
        # class in the project together.
        candidates = [] if _is_dunder(method) else \
            self.resolver.method_index.get(method, [])
        if candidates:
            self._add_many(node, candidates, "dispatch")
        else:
            # No project class defines the method — the call cannot
            # enter project code (getattr tricks aside).
            self.graph.external_calls += 1

    def _class_init(self, node: ast.Call, class_qual: str) -> None:
        init = self.resolver.mro_method(class_qual, "__init__")
        self.graph.resolved_calls += 1
        if init is not None:
            self.graph.add_edge(CallEdge(
                self.caller, init, node.lineno, "init"))

    # -- argument callables ------------------------------------------
    def _callable_targets(self, arg: ast.AST) -> list[str]:
        """Project functions a callable argument can invoke: a named
        function, ``partial(f, ...)``, or — one step — every function
        a lambda body directly calls."""
        if isinstance(arg, ast.Call) and _is_partial(arg.func):
            arg = arg.args[0] if arg.args else arg
        if isinstance(arg, ast.Lambda):
            targets = []
            for sub in ast.walk(arg.body):
                if isinstance(sub, ast.Call):
                    targets.extend(self._callable_targets(sub.func))
            return targets
        if isinstance(arg, ast.Name):
            target = self.env.get(arg.id)
            if target:
                resolved = self.resolver.resolve_path(target)
                if resolved and resolved[0] == "func":
                    return [resolved[1]]
            return []
        if isinstance(arg, ast.Attribute):
            name = dotted(arg)
            if name:
                resolved = self.resolver._resolve_in_module(
                    self.mod, name)
                if resolved and resolved[0] == "func":
                    return [resolved[1]]
            parts = chain_parts(arg)
            if parts and parts[0] in ("self", "cls") and self.cls:
                return self.resolver.dispatch_targets(
                    self.cls, arg.attr)
        return []

    def _edge_for_callable(self, arg: ast.AST, line: int,
                           kind: str) -> None:
        for target in self._callable_targets(arg):
            self.graph.add_edge(CallEdge(self.caller, target, line,
                                         kind))

    # -- bookkeeping --------------------------------------------------
    def _add(self, node: ast.Call, qualname: str, kind: str) -> None:
        self.graph.resolved_calls += 1
        self.graph.add_edge(CallEdge(self.caller, qualname,
                                     node.lineno, kind))
        # Higher-order arguments: a callable handed to a project
        # function is (over-approximately) invoked *by* it, so the
        # receiving function gets the edge. This is what lets a
        # FaultInjected handler around ``write()`` in a helper count
        # as covering the faults its callback raises.
        for arg in (*node.args, *(kw.value for kw in node.keywords)):
            for target in self._callable_targets(arg):
                self.graph.add_edge(CallEdge(qualname, target,
                                             node.lineno, "ref"))

    def _add_many(self, node: ast.Call, qualnames: Sequence[str],
                  kind: str) -> None:
        self.graph.resolved_calls += 1
        for qualname in qualnames:
            self.graph.add_edge(CallEdge(self.caller, qualname,
                                         node.lineno, kind))

    def _unresolved(self, node: ast.Call, reason: str) -> None:
        try:
            text = ast.unparse(node.func)
        except (ValueError, RecursionError):  # pragma: no cover
            text = "<unprintable>"
        self.graph.unresolved.append(UnresolvedCall(
            self.caller, node.lineno, text[:80], reason))


# ---------------------------------------------------------------------------
# the builder
# ---------------------------------------------------------------------------

def build_graph(sources: Sequence[SourceFile]) -> CallGraph:
    """Assemble the project call graph from parsed sources.

    Only files under the ``repro`` package participate; tests and
    benchmarks see the graph through entry points, never as nodes.
    """
    graph = CallGraph()
    modules: dict[str, _ModuleInfo] = {}
    project: list[tuple[_ModuleInfo, SourceFile]] = []
    for source in sources:
        if source.tree is None:
            continue
        name = module_name(source.display)
        if name is None:
            continue
        mod = _ModuleInfo(name=name, display=source.display,
                          is_package=_is_package(source.display))
        modules[name] = mod
        project.append((mod, source))

    for mod, source in project:
        _collect_module(graph, mod, source)

    resolver = _Resolver(graph, modules)
    resolver.link_bases()

    for mod, source in project:
        assert source.tree is not None
        _scan_scopes(resolver, mod, source)

    for info in graph.functions.values():
        if info.is_task_handler:
            graph.worker_roots.add(info.qualname)
    return graph


def _scan_scopes(resolver: _Resolver, mod: _ModuleInfo,
                 source: SourceFile) -> None:
    """Walk one module's scopes, building each function's visible-name
    environment, then scanning its call sites."""
    graph = resolver.graph

    base_env: dict[str, str] = {}
    for name, (kind, target) in mod.scope.items():
        base_env[name] = target if kind == "import" else target

    module_node = f"{mod.name}.<module>"
    graph.functions.setdefault(module_node, FunctionInfo(
        qualname=module_node, module=mod.name, name="<module>",
        path=source.display, lineno=1,
        end_lineno=len(source.lines) or 1,
        node=source.tree))

    def recurse(body: Iterable[ast.stmt], prefix: str,
                cls: str | None, env: dict[str, str]) -> None:
        local_env = dict(env)
        # Sibling defs are visible to each other regardless of order.
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                local_env[node.name] = f"{prefix}.{node.name}"
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{node.name}"
                child_env = dict(local_env)
                # The function's own nested defs are callable from its
                # body (closures like fan_out/quarantine).
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef,
                                        ast.ClassDef)):
                        child_env[sub.name] = f"{qualname}.{sub.name}"
                scanner = _CallScanner(
                    resolver, mod, qualname, node,
                    cls, child_env)
                scanner.scan()
                recurse(node.body, qualname, None, scanner.env)
            elif isinstance(node, ast.ClassDef):
                recurse(node.body, f"{prefix}.{node.name}",
                        f"{prefix}.{node.name}", local_env)

    # Module-level code (registration calls, table building).
    module_fn = ast.Module(body=list(source.tree.body),
                           type_ignores=[])
    shim = ast.FunctionDef(
        name="<module>", args=ast.arguments(
            posonlyargs=[], args=[], kwonlyargs=[], kw_defaults=[],
            defaults=[]),
        body=[stmt for stmt in module_fn.body],
        decorator_list=[], returns=None)
    _CallScanner(resolver, mod, module_node, shim, None,
                 base_env).scan()
    recurse(source.tree.body, mod.name, None, base_env)
