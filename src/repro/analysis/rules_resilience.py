"""Resilience-hygiene rules.

**fault-site-catalogue** — the named fault sites of
``repro.resilience.sites`` and the code must agree, both ways, exactly
like the metric catalogue:

* every ``SITE_*`` constant declared in the sites module must be a key
  of ``SITE_CATALOGUE`` (the operator-facing site vocabulary that fault
  plans validate against);
* every catalogued site must actually be armed somewhere — referenced
  via its ``SITE_*`` constant outside the sites module itself. A site
  that exists only in the catalogue is a fault boundary the chaos suite
  believes it can hit but the pipeline never visits;
* a ``fire``/``corrupt``/``targets_site`` call with a string-literal
  site must name a catalogued site — anything else would raise at run
  time (``FaultSpec`` validates) or silently never match.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from .engine import Rule, SourceFile, register
from .findings import Finding

#: The file (path suffix) declaring the site catalogue.
_SITES_MODULE = "resilience/sites.py"

#: FaultPlan / ResiliencePolicy methods whose first argument is a site.
_SITE_METHODS = ("fire", "corrupt", "targets_site")


def _parse_sites(source: SourceFile
                 ) -> tuple[dict[str, str], dict[str, int], set[str], int]:
    """``(SITE_* name -> site string, site -> declaration line,
    catalogued sites, SITE_CATALOGUE line)`` from the sites module."""
    assert source.tree is not None
    constants: dict[str, str] = {}
    decl_lines: dict[str, int] = {}
    for node in source.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                node.targets[0].id.startswith("SITE_") and \
                node.targets[0].id != "SITE_CATALOGUE" and \
                isinstance(node.value, ast.Constant) and \
                isinstance(node.value.value, str):
            constants[node.targets[0].id] = node.value.value
            decl_lines[node.value.value] = node.lineno

    catalogued: set[str] = set()
    catalogue_line = 0
    for node in source.tree.body:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = getattr(node, "targets", None) or [node.target]
        if not any(isinstance(t, ast.Name) and t.id == "SITE_CATALOGUE"
                   for t in targets):
            continue
        catalogue_line = node.lineno
        value = node.value
        if not isinstance(value, ast.Dict):
            break
        for key in value.keys:
            if isinstance(key, ast.Name) and key.id in constants:
                catalogued.add(constants[key.id])
                decl_lines[constants[key.id]] = key.lineno
            elif isinstance(key, ast.Constant) and \
                    isinstance(key.value, str):
                catalogued.add(key.value)
                decl_lines[key.value] = key.lineno
    return constants, decl_lines, catalogued, catalogue_line


def _referenced_sites(source: SourceFile,
                      constants: dict[str, str]) -> set[str]:
    """Sites whose ``SITE_*`` constant is referenced in the file."""
    assert source.tree is not None
    referenced: set[str] = set()
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Name) and node.id in constants:
            referenced.add(constants[node.id])
        elif isinstance(node, ast.Attribute) and node.attr in constants:
            referenced.add(constants[node.attr])
    return referenced


def _literal_site_calls(source: SourceFile
                        ) -> Iterable[tuple[ast.Call, str]]:
    """``(call, site string)`` for every ``.fire("...")``-style call
    whose site argument is a string literal."""
    assert source.tree is not None
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _SITE_METHODS and node.args and \
                isinstance(node.args[0], ast.Constant) and \
                isinstance(node.args[0].value, str):
            yield node, node.args[0].value


@register
class FaultSiteCatalogueRule(Rule):
    """The fault-site vocabulary and the code must agree, both ways."""

    id = "fault-site-catalogue"
    severity = "error"
    description = ("fault site missing from SITE_CATALOGUE, catalogued "
                   "site never armed in code, or a literal site name "
                   "that no catalogue entry matches")

    def check_project(self,
                      sources: Sequence[SourceFile]) -> Iterable[Finding]:
        sites_module = next(
            (source for source in sources
             if source.display.endswith(_SITES_MODULE)), None)
        if sites_module is None:
            return  # site catalogue not part of this run's file set
        constants, decl_lines, catalogued, catalogue_line = \
            _parse_sites(sites_module)

        for name, site in sorted(constants.items()):
            if site not in catalogued:
                yield self.finding(
                    sites_module, decl_lines.get(site, catalogue_line),
                    f"fault site {name} = {site!r} is declared but "
                    f"missing from SITE_CATALOGUE")

        used: set[str] = set()
        for source in sources:
            if source is sites_module:
                continue
            used.update(_referenced_sites(source, constants))
            # Chaos tests may address sites by literal string; that
            # counts as usage, but an unknown literal is only an error
            # in pipeline code (tests exercise the validation paths).
            in_tests = source.in_package("tests", "benchmarks")
            for call, site in _literal_site_calls(source):
                used.add(site)
                if site not in catalogued and not in_tests:
                    yield self.finding(
                        source, call,
                        f"fault site {site!r} is not declared in "
                        f"SITE_CATALOGUE; FaultSpec would reject it")
        for site in sorted(catalogued.difference(used)):
            yield self.finding(
                sites_module, decl_lines.get(site, catalogue_line),
                f"fault site {site!r} is catalogued but never armed "
                f"in the analyzed files")
