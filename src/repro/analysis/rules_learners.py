"""Learner-contract rule.

The stacking meta-learner's weights (Doan et al., SIGMOD 2001, §3.4)
are meaningful only if every base learner honours the
:class:`~repro.learners.base.BaseLearner` contract: implement the
``fit`` / ``predict_scores`` / ``clone`` surface, carry a stable
``name``, and leave the training corpus untouched (cross-validation
refits learners on shared instance lists — a learner that mutates them
poisons every later fold). This project rule rebuilds the class
hierarchy across the analyzed files and checks each concrete descendant
of ``BaseLearner``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .astutil import dotted, root_name
from .engine import Rule, SourceFile, register
from .findings import Finding

#: The abstract surface every concrete learner must provide.
REQUIRED_METHODS = ("fit", "predict_scores", "clone")

#: Mutating method calls that would rewrite a training sequence.
_SEQUENCE_MUTATORS = {"append", "extend", "insert", "remove", "pop",
                      "clear", "sort", "reverse"}


@dataclass
class _ClassInfo:
    source: SourceFile
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    class_attrs: set[str] = field(default_factory=set)
    is_abstract: bool = False


def _decorator_names(node: ast.FunctionDef) -> set[str]:
    names = set()
    for decorator in node.decorator_list:
        name = dotted(decorator)
        if name:
            names.add(name.rsplit(".", 1)[-1])
    return names


def _collect_classes(sources: Sequence[SourceFile]
                     ) -> dict[str, _ClassInfo]:
    classes: dict[str, _ClassInfo] = {}
    for source in sources:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = _ClassInfo(source, node)
            for base in node.bases:
                name = dotted(base)
                if name:
                    info.bases.append(name.rsplit(".", 1)[-1])
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    info.methods[stmt.name] = stmt
                    if "abstractmethod" in _decorator_names(stmt):
                        info.is_abstract = True
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            info.class_attrs.add(target.id)
                elif isinstance(stmt, ast.AnnAssign) and \
                        isinstance(stmt.target, ast.Name):
                    info.class_attrs.add(stmt.target.id)
            # Last definition wins on duplicate names (rare; fixtures).
            classes[node.name] = info
    return classes


def _descendants(classes: dict[str, _ClassInfo],
                 root: str) -> list[str]:
    """Transitive subclasses of ``root`` among the analyzed classes,
    in deterministic (name) order."""
    children: dict[str, list[str]] = {}
    for name, info in classes.items():
        for base in info.bases:
            children.setdefault(base, []).append(name)
    found: list[str] = []
    frontier = [root]
    while frontier:
        parent = frontier.pop()
        for child in sorted(children.get(parent, ())):
            if child not in found:
                found.append(child)
                frontier.append(child)
    return sorted(found)


def _chain(classes: dict[str, _ClassInfo], name: str,
           stop: str) -> list[_ClassInfo]:
    """``name`` and its ancestors (within the analyzed set) up to but
    excluding ``stop``."""
    chain: list[_ClassInfo] = []
    frontier = [name]
    seen: set[str] = set()
    while frontier:
        current = frontier.pop()
        if current in seen or current == stop:
            continue
        seen.add(current)
        info = classes.get(current)
        if info is None:
            continue
        chain.append(info)
        frontier.extend(info.bases)
    return chain


def _corpus_mutations(fit: ast.FunctionDef
                      ) -> Iterable[tuple[ast.AST, str]]:
    """Writes through ``fit``'s instances/labels parameters."""
    args = fit.args
    params = [arg.arg for arg in (*args.posonlyargs, *args.args)
              if arg.arg != "self"]
    corpus = set(params[:2])  # (instances, labels) by contract
    for node in ast.walk(fit):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _SEQUENCE_MUTATORS and \
                isinstance(node.func.value, ast.Name) and \
                node.func.value.id in corpus:
            yield node, (f"fit() mutates training corpus "
                         f"{node.func.value.id!r} via "
                         f".{node.func.attr}()")
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = getattr(node, "targets", None) or [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and \
                        root_name(target) in corpus:
                    yield node, (f"fit() assigns into training corpus "
                                 f"{root_name(target)!r}")


@register
class LearnerContractRule(Rule):
    """Concrete ``BaseLearner`` subclasses must implement the full
    contract and leave their training corpus unmutated."""

    id = "learner-contract"
    severity = "error"
    description = ("BaseLearner subclasses missing fit/predict_scores/"
                   "clone or a stable name, or mutating their training "
                   "corpus in fit()")

    def check_project(self,
                      sources: Sequence[SourceFile]) -> Iterable[Finding]:
        classes = _collect_classes(sources)
        if "BaseLearner" not in classes:
            return
        for name in _descendants(classes, "BaseLearner"):
            info = classes[name]
            chain = _chain(classes, name, stop="BaseLearner")
            if any(link.is_abstract for link in chain):
                continue  # abstract intermediates defer the contract
            inherited_methods = {method for link in chain
                                 for method in link.methods}
            for method in REQUIRED_METHODS:
                if method not in inherited_methods:
                    yield self.finding(
                        info.source, info.node,
                        f"learner {name!r} does not override "
                        f"BaseLearner.{method}()")
            attrs = {attr for link in chain
                     for attr in link.class_attrs}
            sets_name_in_init = any(
                "name" in link.class_attrs or
                ("__init__" in link.methods and any(
                    isinstance(child, ast.Attribute) and
                    child.attr == "name" and
                    isinstance(child.ctx, ast.Store)
                    for child in ast.walk(link.methods["__init__"])))
                for link in chain)
            if "name" not in attrs and not sets_name_in_init:
                yield self.finding(
                    info.source, info.node,
                    f"learner {name!r} never sets its stable 'name' "
                    f"identifier")
            if "fit" in info.methods:
                for node, message in _corpus_mutations(
                        info.methods["fit"]):
                    yield self.finding(
                        info.source, node, f"learner {name!r} {message}")
