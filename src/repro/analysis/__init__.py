"""Project-specific static analysis and dynamic sanitizers.

The static half is an AST-based lint framework (:mod:`.engine`) with a
rule set encoding this codebase's real invariants — determinism
(:mod:`.rules_determinism`), parallel-map hygiene
(:mod:`.rules_concurrency`), the base-learner contract
(:mod:`.rules_learners`), observability hygiene
(:mod:`.rules_observability`) and exception hygiene
(:mod:`.rules_exceptions`) — plus inline ``# lsd: ignore[rule]``
suppressions and a checked-in baseline (:mod:`.findings`).

The dynamic half (:mod:`.sanitizer`) shakes the documented benign-race
caches from many threads and diffs matching output across ``--workers``
counts.

Run it as ``python -m repro.analysis`` or via the ``lsd-lint`` console
script; see :mod:`.cli` for flags.
"""

from .engine import (AnalysisResult, Rule, SourceFile, all_rules,
                     analyze_paths, analyze_sources, get_rules,
                     iter_python_files, load_source, register, rule_ids)
from .findings import (Baseline, Finding, findings_to_json,
                       sort_findings)
from .sanitizer import (SanitizerReport, diff_determinism, run_all,
                        shake_caches)

__all__ = [
    "AnalysisResult", "Baseline", "Finding", "Rule", "SanitizerReport",
    "SourceFile", "all_rules", "analyze_paths", "analyze_sources",
    "diff_determinism", "findings_to_json", "get_rules",
    "iter_python_files", "load_source", "register", "rule_ids",
    "run_all", "shake_caches", "sort_findings",
]
