"""``lsd-lint``: the command-line front end of :mod:`repro.analysis`.

Lint mode (the default) runs the per-file rule set over the given
paths::

    lsd-lint src tests benchmarks
    lsd-lint --write-baseline src        # accept current findings
    lsd-lint --json findings.json src    # CI artifact
    lsd-lint --select blind-except src   # one rule only
    lsd-lint --select 'metric-*' src     # glob over rule ids
    lsd-lint --list-rules

Flow mode runs the interprocedural rules instead (``flow-*`` plus the
checkpoint-coverage rule ``checkpoint-unregistered-state``) — it
builds the project call graph once, runs the determinism / worker-
purity / fault-escape lattices over it, and gates against its own
baseline (``analysis-flow-baseline.txt``)::

    lsd-lint --flow src
    lsd-lint --flow --dump-callgraph callgraph.json src
    lsd-lint --flow --dump-callgraph callgraph.dot src

Sanitize mode runs the dynamic harnesses instead::

    lsd-lint --sanitize                  # cache shaker + determinism
    lsd-lint --sanitize --iterations 50 --workers 4

Exit codes: 0 clean, 1 findings (or sanitizer divergence), 2 usage
errors. The baseline defaults to ``analysis-baseline.txt``
(``analysis-flow-baseline.txt`` under ``--flow``) when that file
exists in the working directory.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import (all_rules, analyze_sources, get_rules,
                     iter_python_files, load_source)
from .findings import Baseline, findings_to_json

#: The conventional checked-in baseline filename.
DEFAULT_BASELINE = "analysis-baseline.txt"

#: The separate baseline the interprocedural gate runs against.
DEFAULT_FLOW_BASELINE = "analysis-flow-baseline.txt"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lsd-lint",
        description=("Project-specific static checks and concurrency/"
                     "determinism sanitizers for the LSD codebase."))
    parser.add_argument(
        "paths", nargs="*", default=[],
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=f"baseline file of accepted findings (default: "
             f"{DEFAULT_BASELINE} if present)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (report all findings)")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into the baseline file")
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write findings as a JSON artifact")
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule ids or glob patterns to run "
             "(e.g. 'flow-*,metric-*'; default: all per-file rules)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule set and exit")
    parser.add_argument(
        "--flow", action="store_true",
        help="run the interprocedural flow-* rules (call-graph "
             "reachability) instead of the per-file rule set")
    parser.add_argument(
        "--dump-callgraph", metavar="FILE", default=None,
        help="write the project call graph (.dot suffix for GraphViz, "
             "anything else for JSON with resolution stats)")
    parser.add_argument(
        "--sanitize", action="store_true",
        help="run the dynamic sanitizers instead of the lint rules")
    parser.add_argument(
        "--iterations", type=int, default=50, metavar="N",
        help="cache-shaker iterations in --sanitize mode (default 50)")
    parser.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="parallel worker count diffed against serial in "
             "--sanitize mode (default 4)")
    parser.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="determinism-differ match repetitions (default 3)")
    return parser


def _list_rules() -> int:
    for rule in all_rules():
        kind = "flow" if rule.requires_flow else "file"
        print(f"{rule.id:28} {rule.severity:8} {kind:5} "
              f"{rule.description}")
    return 0


def _sanitize(args: argparse.Namespace) -> int:
    from .sanitizer import run_all

    reports = run_all(shake_iterations=args.iterations,
                      workers=args.workers, repeats=args.repeats)
    for report in reports:
        print(report.render())
    return 0 if all(report.ok for report in reports) else 1


def _resolve_baseline(args: argparse.Namespace) -> tuple[Baseline, Path]:
    default = DEFAULT_FLOW_BASELINE if args.flow else DEFAULT_BASELINE
    path = Path(args.baseline) if args.baseline else Path(default)
    if args.no_baseline:
        return Baseline(), path
    if path.exists():
        return Baseline.load(path), path
    if args.baseline:
        raise SystemExit(f"lsd-lint: baseline {path} does not exist")
    return Baseline(), path


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()
    if args.sanitize:
        return _sanitize(args)

    paths = args.paths or ["src"]
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(f"lsd-lint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    select = args.select.split(",") if args.select else None
    try:
        if args.flow:
            rules = get_rules(select or ["flow-*",
                                         "checkpoint-*"])
        else:
            rules = get_rules(select)
    except ValueError as exc:
        print(f"lsd-lint: {exc}", file=sys.stderr)
        return 2
    baseline, baseline_path = _resolve_baseline(args)

    sources = [load_source(path)
               for path in iter_python_files(paths)]
    graph = None
    if args.dump_callgraph or any(rule.requires_flow
                                  for rule in rules):
        from .flow.callgraph import build_graph
        graph = build_graph([source for source in sources
                             if source.tree is not None])
    result = analyze_sources(sources, rules=rules, baseline=baseline,
                             graph=graph)

    if args.dump_callgraph:
        out = Path(args.dump_callgraph)
        assert graph is not None
        out.write_text(graph.to_dot() if out.suffix == ".dot"
                       else graph.to_json())
        stats = graph.stats()
        print(f"lsd-lint: call graph -> {out} "
              f"({stats['functions']} functions, "
              f"{stats['edges']} edges, resolution "
              f"{stats['resolution_ratio']:.1%})")

    if args.write_baseline:
        accepted = Baseline.from_findings(
            result.findings + result.accepted)
        accepted.write(baseline_path)
        print(f"lsd-lint: wrote {len(accepted)} accepted finding(s) "
              f"to {baseline_path}")
        return 0

    for finding in result.findings:
        print(finding.render())
        if finding.chain:
            print(f"    via {' -> '.join(finding.chain)}")
    print(result.summary_line())
    if args.json:
        extra = {"callgraph": graph.stats()} if graph is not None \
            else None
        Path(args.json).write_text(
            findings_to_json(result.findings,
                             baselined=len(result.accepted),
                             extra=extra))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
