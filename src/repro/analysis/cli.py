"""``lsd-lint``: the command-line front end of :mod:`repro.analysis`.

Lint mode (the default) runs the project rule set over the given paths::

    lsd-lint src tests benchmarks
    lsd-lint --write-baseline src        # accept current findings
    lsd-lint --json findings.json src    # CI artifact
    lsd-lint --select blind-except src   # one rule only
    lsd-lint --list-rules

Sanitize mode runs the dynamic harnesses instead::

    lsd-lint --sanitize                  # cache shaker + determinism
    lsd-lint --sanitize --iterations 50 --workers 4

Exit codes: 0 clean, 1 findings (or sanitizer divergence), 2 usage
errors. The baseline defaults to ``analysis-baseline.txt`` when that
file exists in the working directory.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import all_rules, analyze_paths, get_rules
from .findings import Baseline, findings_to_json

#: The conventional checked-in baseline filename.
DEFAULT_BASELINE = "analysis-baseline.txt"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lsd-lint",
        description=("Project-specific static checks and concurrency/"
                     "determinism sanitizers for the LSD codebase."))
    parser.add_argument(
        "paths", nargs="*", default=[],
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=f"baseline file of accepted findings (default: "
             f"{DEFAULT_BASELINE} if present)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (report all findings)")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into the baseline file")
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write findings as a JSON artifact")
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule set and exit")
    parser.add_argument(
        "--sanitize", action="store_true",
        help="run the dynamic sanitizers instead of the lint rules")
    parser.add_argument(
        "--iterations", type=int, default=50, metavar="N",
        help="cache-shaker iterations in --sanitize mode (default 50)")
    parser.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="parallel worker count diffed against serial in "
             "--sanitize mode (default 4)")
    parser.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="determinism-differ match repetitions (default 3)")
    return parser


def _list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.id:24} {rule.severity:8} {rule.description}")
    return 0


def _sanitize(args: argparse.Namespace) -> int:
    from .sanitizer import run_all

    reports = run_all(shake_iterations=args.iterations,
                      workers=args.workers, repeats=args.repeats)
    for report in reports:
        print(report.render())
    return 0 if all(report.ok for report in reports) else 1


def _resolve_baseline(args: argparse.Namespace) -> tuple[Baseline, Path]:
    path = Path(args.baseline) if args.baseline else \
        Path(DEFAULT_BASELINE)
    if args.no_baseline:
        return Baseline(), path
    if path.exists():
        return Baseline.load(path), path
    if args.baseline:
        raise SystemExit(f"lsd-lint: baseline {path} does not exist")
    return Baseline(), path


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()
    if args.sanitize:
        return _sanitize(args)

    paths = args.paths or ["src"]
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(f"lsd-lint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    try:
        rules = get_rules(args.select.split(",")
                          if args.select else None)
    except ValueError as exc:
        print(f"lsd-lint: {exc}", file=sys.stderr)
        return 2
    baseline, baseline_path = _resolve_baseline(args)
    result = analyze_paths(paths, rules=rules, baseline=baseline)

    if args.write_baseline:
        accepted = Baseline.from_findings(
            result.findings + result.accepted)
        accepted.write(baseline_path)
        print(f"lsd-lint: wrote {len(accepted)} accepted finding(s) "
              f"to {baseline_path}")
        return 0

    for finding in result.findings:
        print(finding.render())
    print(result.summary_line())
    if args.json:
        Path(args.json).write_text(
            findings_to_json(result.findings,
                             baselined=len(result.accepted)))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
