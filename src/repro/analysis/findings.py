"""Findings, severities, and the checked-in baseline file.

A :class:`Finding` is one rule violation at one source location. The
:class:`Baseline` is the repo's list of *accepted* findings: the lint
gate fails only on findings **not** in the baseline, so the checker can
land with real debt recorded instead of blocking on a flag day. Baseline
entries are keyed by ``(path, rule, message)`` — deliberately *not* by
line number, so unrelated edits that shift a finding up or down the file
do not invalidate the baseline.

The file format is plain text, one entry per line::

    # comment lines and blanks are ignored
    src/repro/foo.py | rule-id | the finding message

Duplicate lines accumulate: two identical entries accept two identical
findings (a multiset, matching how findings themselves can repeat).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

#: Rule severities, in increasing order of concern. Severity is
#: informational — the gate fails on *any* non-baselined finding — but
#: it drives display ordering and lets downstream tooling triage.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str        # posix-style, as passed to the runner
    line: int        # 1-based; 0 = whole-file finding
    rule: str
    message: str
    severity: str = "error"
    #: Interprocedural evidence: the call chain (entry-point qualname
    #: first) a flow rule walked to reach the flagged statement. Empty
    #: for per-file findings. Not part of :attr:`key` — refactors that
    #: reroute intermediate hops must not invalidate the baseline.
    chain: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def key(self) -> tuple[str, str, str]:
        """The line-number-free identity used for baseline matching."""
        return (self.path, self.rule, self.message)

    def render(self) -> str:
        """``path:line: severity rule-id: message`` (the CLI line)."""
        return (f"{self.path}:{self.line}: {self.severity} "
                f"[{self.rule}] {self.message}")

    def as_dict(self) -> dict:
        data = {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
        }
        if self.chain:
            data["chain"] = list(self.chain)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(data["path"], data["line"], data["rule"],
                   data["message"], data.get("severity", "error"),
                   tuple(data.get("chain", ())))


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Stable display order: path, then line, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule,
                                           f.message))


def findings_to_json(findings: list[Finding], *,
                     baselined: int = 0,
                     extra: dict | None = None) -> str:
    """The JSON artifact uploaded by CI: findings plus a summary.

    ``extra`` merges additional top-level sections into the payload —
    the flow runner passes ``{"callgraph": graph.stats()}`` so the
    resolution ratio travels with the findings it qualifies."""
    payload = {
        "findings": [f.as_dict() for f in sort_findings(findings)],
        "summary": {
            "total": len(findings),
            "baselined": baselined,
            "by_rule": dict(Counter(f.rule for f in findings)),
            "by_severity": dict(Counter(f.severity for f in findings)),
        },
    }
    if extra:
        payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


_SEPARATOR = " | "

_HEADER = """\
# lsd-lint baseline: accepted findings, one per line as
#   path | rule-id | message
# Regenerate with `lsd-lint --write-baseline <paths>`. New findings not
# listed here fail the lint gate; fix them or re-baseline deliberately.
"""


class Baseline:
    """The accepted-findings multiset backing the lint gate."""

    def __init__(self, entries: Counter | None = None) -> None:
        #: (path, rule, message) -> accepted count.
        self.entries: Counter = Counter(entries or ())

    def __len__(self) -> int:
        return sum(self.entries.values())

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        baseline = cls()
        for lineno, raw in enumerate(
                Path(path).read_text().splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(_SEPARATOR, 2)
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{lineno}: malformed baseline entry "
                    f"(expected 'path | rule | message'): {line!r}")
            baseline.entries[tuple(part.strip() for part in parts)] += 1
        return baseline

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            baseline.entries[finding.key] += 1
        return baseline

    def dump(self) -> str:
        lines = [_HEADER]
        for key in sorted(self.entries):
            lines.extend([_SEPARATOR.join(key)] * self.entries[key])
        return "\n".join(lines) + ("\n" if self.entries else "")

    def write(self, path: str | Path) -> None:
        Path(path).write_text(self.dump())

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def split(self, findings: list[Finding]
              ) -> tuple[list[Finding], list[Finding]]:
        """``(new, accepted)`` — each baseline entry absorbs at most its
        accepted count of identical findings; the rest are new."""
        remaining = Counter(self.entries)
        new: list[Finding] = []
        accepted: list[Finding] = []
        for finding in sort_findings(findings):
            if remaining[finding.key] > 0:
                remaining[finding.key] -= 1
                accepted.append(finding)
            else:
                new.append(finding)
        return new, accepted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Baseline {len(self)} accepted findings>"
