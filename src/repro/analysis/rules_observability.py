"""Observability-hygiene rules.

Three invariants keep the observability layer honest:

* **metric-catalogue** — every metric name emitted through a registry
  (``obs.metrics.counter(...)`` / ``gauge`` / ``histogram``) appears in
  ``repro.observability.metrics.CATALOGUE`` with the matching
  instrument kind, and every catalogued metric is actually emitted
  somewhere. The catalogue is the documented vocabulary reports and
  dashboards consume; silent drift in either direction makes it lie.
* **span-unclosed** — ``trace.span(...)`` is only useful as a context
  manager: entered and exited on every path, including exceptions. A
  span opened without ``with`` never lands in the collector (or lands
  with a bogus duration), so the rule flags any ``.span(...)`` call
  that is not a ``with`` item.
* **event-catalogue** — the progress-event vocabulary
  (``repro.observability.events.EVENT_CATALOGUE``) and the
  ``events.emit(...)`` call sites must agree both ways, same contract
  as the metric catalogue. Only ``.emit`` calls whose receiver is an
  event stream (terminal name ``events``/``_events``/``stream``) are
  in scope — ``TraceCollector.emit`` takes span dictionaries, not
  event kinds.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from .astutil import call_arg_string
from .engine import Rule, SourceFile, register
from .findings import Finding

#: Registry methods that name a metric as their first argument.
_REGISTRY_METHODS = {"counter": "counter", "gauge": "gauge",
                     "histogram": "histogram"}

#: The file (path suffix) declaring the catalogue.
_METRICS_MODULE = "observability/metrics.py"


def _parse_catalogue(source: SourceFile
                     ) -> tuple[dict[str, str], dict[str, int], int]:
    """``(name -> kind, name -> declaration line, CATALOGUE line)``
    from the metrics module's AST."""
    assert source.tree is not None
    constants: dict[str, str] = {}
    const_lines: dict[str, int] = {}
    for node in source.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                node.targets[0].id.startswith("M_") and \
                isinstance(node.value, ast.Constant) and \
                isinstance(node.value.value, str):
            constants[node.targets[0].id] = node.value.value
            const_lines[node.targets[0].id] = node.lineno

    catalogue: dict[str, str] = {}
    lines: dict[str, int] = {}
    catalogue_line = 0
    for node in source.tree.body:
        if not (isinstance(node, (ast.Assign, ast.AnnAssign))):
            continue
        targets = getattr(node, "targets", None) or [node.target]
        if not any(isinstance(t, ast.Name) and t.id == "CATALOGUE"
                   for t in targets):
            continue
        catalogue_line = node.lineno
        value = node.value
        if not isinstance(value, ast.Dict):
            break
        for key, entry in zip(value.keys, value.values):
            if isinstance(key, ast.Name) and key.id in constants:
                name = constants[key.id]
            elif isinstance(key, ast.Constant) and \
                    isinstance(key.value, str):
                name = key.value
            else:
                continue
            kind = ""
            if isinstance(entry, ast.Tuple) and entry.elts and \
                    isinstance(entry.elts[0], ast.Constant):
                kind = str(entry.elts[0].value)
            catalogue[name] = kind
            lines[name] = key.lineno
    # Findings for undeclared metrics point at the constant if there is
    # one, else at the CATALOGUE declaration.
    lines.update({value: const_lines[key]
                  for key, value in constants.items()
                  if value not in lines})
    return catalogue, lines, catalogue_line


def _emitted_metrics(source: SourceFile, constants: dict[str, str]
                     ) -> Iterable[tuple[ast.Call, str, str]]:
    """``(call, metric name, registry kind)`` for every resolvable
    registry emission in the file."""
    assert source.tree is not None
    for node in ast.walk(source.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _REGISTRY_METHODS
                and node.args):
            continue
        arg = node.args[0]
        name = call_arg_string(node)
        if name is None:
            ident = None
            if isinstance(arg, ast.Name):
                ident = arg.id
            elif isinstance(arg, ast.Attribute):
                ident = arg.attr
            if ident is None or ident not in constants:
                continue  # dynamic name — not statically checkable
            name = constants[ident]
        yield node, name, _REGISTRY_METHODS[node.func.attr]


@register
class MetricCatalogueRule(Rule):
    """The metric vocabulary and the code must agree, both ways."""

    id = "metric-catalogue"
    severity = "error"
    description = ("metric emitted but missing from metrics.CATALOGUE, "
                   "kind mismatch, or catalogued metric never emitted")

    def check_project(self,
                      sources: Sequence[SourceFile]) -> Iterable[Finding]:
        metrics_module = next(
            (source for source in sources
             if source.display.endswith(_METRICS_MODULE)), None)
        if metrics_module is None:
            return  # catalogue not part of this run's file set
        catalogue, decl_lines, catalogue_line = _parse_catalogue(
            metrics_module)
        constants = {
            name: value for name, value in _module_constants(
                metrics_module).items()}
        used: set[str] = set()
        for source in sources:
            in_metrics_module = source is metrics_module
            imported = _imported_metric_constants(source, constants)
            if not in_metrics_module:
                # Any reference to an M_* constant counts as usage for
                # the never-emitted direction — emissions through
                # lookup tables (e.g. the constraint handler's
                # stat->metric dict) are beyond static resolution.
                used.update(_referenced_constants(source, imported))
            # Scratch registries in tests/benchmarks may emit throwaway
            # names; the catalogue contract binds pipeline code only.
            exercises_registry = source.in_package("tests",
                                                   "benchmarks")
            for call, name, kind in _emitted_metrics(
                    source, imported if not in_metrics_module
                    else constants):
                used.add(name)
                if exercises_registry:
                    continue
                if name not in catalogue:
                    yield self.finding(
                        source, call,
                        f"metric {name!r} is emitted but not declared "
                        f"in metrics.CATALOGUE")
                elif catalogue[name] and catalogue[name] != kind:
                    yield self.finding(
                        source, call,
                        f"metric {name!r} is catalogued as a "
                        f"{catalogue[name]} but emitted via "
                        f".{kind}()")
        for name in sorted(set(catalogue).difference(used)):
            yield self.finding(
                metrics_module,
                decl_lines.get(name, catalogue_line),
                f"metric {name!r} is declared in CATALOGUE but never "
                f"emitted in the analyzed files")


def _module_constants(source: SourceFile) -> dict[str, str]:
    assert source.tree is not None
    constants: dict[str, str] = {}
    for node in source.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                node.targets[0].id.startswith("M_") and \
                isinstance(node.value, ast.Constant) and \
                isinstance(node.value.value, str):
            constants[node.targets[0].id] = node.value.value
    return constants


def _referenced_constants(source: SourceFile,
                          visible: dict[str, str]) -> set[str]:
    """Metric names whose ``M_*`` constant is referenced (loaded) in
    the file."""
    assert source.tree is not None
    referenced: set[str] = set()
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Name) and node.id in visible:
            referenced.add(visible[node.id])
        elif isinstance(node, ast.Attribute) and node.attr in visible:
            referenced.add(visible[node.attr])
    return referenced


def _imported_metric_constants(source: SourceFile,
                               constants: dict[str, str]
                               ) -> dict[str, str]:
    """``M_*`` names visible in ``source`` (imported under any alias)."""
    assert source.tree is not None
    visible: dict[str, str] = {}
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in constants:
                    visible[alias.asname or alias.name] = \
                        constants[alias.name]
    # An attribute access like ``metrics.M_FOO`` resolves by attr name.
    visible.update(constants)
    return visible


#: The file (path suffix) declaring the event catalogue.
_EVENTS_MODULE = "observability/events.py"

#: Receiver terminal names that mark an ``.emit`` call as an event
#: emission (vs. TraceCollector.emit, which takes span dicts).
_EVENT_RECEIVERS = {"events", "_events", "stream"}


def _event_constants(source: SourceFile) -> dict[str, str]:
    """``EV_*`` constant name -> event kind string, from module body."""
    assert source.tree is not None
    constants: dict[str, str] = {}
    for node in source.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                node.targets[0].id.startswith("EV_") and \
                isinstance(node.value, ast.Constant) and \
                isinstance(node.value.value, str):
            constants[node.targets[0].id] = node.value.value
    return constants


def _parse_event_catalogue(source: SourceFile
                           ) -> tuple[set[str], dict[str, int], int]:
    """``(kinds, kind -> declaration line, EVENT_CATALOGUE line)``."""
    assert source.tree is not None
    constants = _event_constants(source)
    const_lines = {
        node.targets[0].id: node.lineno for node in source.tree.body
        if isinstance(node, ast.Assign) and len(node.targets) == 1
        and isinstance(node.targets[0], ast.Name)
        and node.targets[0].id in constants}
    kinds: set[str] = set()
    lines: dict[str, int] = {}
    catalogue_line = 0
    for node in source.tree.body:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = getattr(node, "targets", None) or [node.target]
        if not any(isinstance(t, ast.Name) and t.id == "EVENT_CATALOGUE"
                   for t in targets):
            continue
        catalogue_line = node.lineno
        if not isinstance(node.value, ast.Dict):
            break
        for key in node.value.keys:
            if isinstance(key, ast.Name) and key.id in constants:
                name = constants[key.id]
            elif isinstance(key, ast.Constant) and \
                    isinstance(key.value, str):
                name = key.value
            else:
                continue
            kinds.add(name)
            lines[name] = key.lineno
    lines.update({value: const_lines[key]
                  for key, value in constants.items()
                  if value not in lines})
    return kinds, lines, catalogue_line


def _imported_event_constants(source: SourceFile,
                              constants: dict[str, str]
                              ) -> dict[str, str]:
    assert source.tree is not None
    visible: dict[str, str] = {}
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in constants:
                    visible[alias.asname or alias.name] = \
                        constants[alias.name]
    visible.update(constants)
    return visible


def _receiver_terminal(func: ast.Attribute) -> str | None:
    """Terminal name of an ``.emit`` receiver: ``obs.events.emit`` ->
    ``events``, ``stream.emit`` -> ``stream``."""
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def _emitted_events(source: SourceFile, constants: dict[str, str]
                    ) -> Iterable[tuple[ast.Call, str]]:
    """``(call, event kind)`` for every resolvable event emission."""
    assert source.tree is not None
    for node in ast.walk(source.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
                and node.args
                and _receiver_terminal(node.func) in _EVENT_RECEIVERS):
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            yield node, arg.value
            continue
        ident = None
        if isinstance(arg, ast.Name):
            ident = arg.id
        elif isinstance(arg, ast.Attribute):
            ident = arg.attr
        if ident is None or ident not in constants:
            continue  # dynamic kind — not statically checkable
        yield node, constants[ident]


@register
class EventCatalogueRule(Rule):
    """The progress-event vocabulary and the code must agree, both
    ways."""

    id = "event-catalogue"
    severity = "error"
    description = ("event kind emitted but missing from "
                   "events.EVENT_CATALOGUE, or catalogued event never "
                   "emitted")

    def check_project(self,
                      sources: Sequence[SourceFile]) -> Iterable[Finding]:
        events_module = next(
            (source for source in sources
             if source.display.endswith(_EVENTS_MODULE)), None)
        if events_module is None:
            return  # catalogue not part of this run's file set
        kinds, decl_lines, catalogue_line = _parse_event_catalogue(
            events_module)
        constants = _event_constants(events_module)
        used: set[str] = set()
        for source in sources:
            in_events_module = source is events_module
            visible = (constants if in_events_module
                       else _imported_event_constants(source, constants))
            exercises_stream = source.in_package("tests", "benchmarks")
            for call, kind in _emitted_events(source, visible):
                used.add(kind)
                if exercises_stream:
                    continue
                if kind not in kinds:
                    yield self.finding(
                        source, call,
                        f"event kind {kind!r} is emitted but not "
                        f"declared in events.EVENT_CATALOGUE")
        for kind in sorted(kinds.difference(used)):
            yield self.finding(
                events_module,
                decl_lines.get(kind, catalogue_line),
                f"event kind {kind!r} is declared in EVENT_CATALOGUE "
                f"but never emitted in the analyzed files")


@register
class SpanUnclosedRule(Rule):
    """``.span(...)`` must be a ``with`` item, or exits leak."""

    id = "span-unclosed"
    severity = "error"
    description = ("trace.span(...) opened outside a with statement — "
                   "the span would never close on error paths")

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        with_items: set[int] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_items.add(id(item.context_expr))
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "span" and \
                    id(node) not in with_items:
                yield self.finding(
                    source, node,
                    "span opened outside a 'with' statement; use "
                    "'with trace.span(...):' so it closes on all paths")
