"""Small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast


def dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def root_name(node: ast.AST) -> str | None:
    """The base Name of an Attribute/Subscript chain (``a`` for
    ``a.b[0].c``), else None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def chain_parts(node: ast.AST) -> list[str]:
    """All dotted-name components of an Attribute/Subscript chain
    (``["a", "b", "c"]`` for ``a.b[0].c``) — used to match allowlisted
    names wherever they appear in the chain."""
    parts: list[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


def call_arg_string(node: ast.Call, index: int = 0) -> str | None:
    """The ``index``-th positional argument if it is a string literal."""
    if len(node.args) > index:
        arg = node.args[index]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None


def names_imported_from(tree: ast.Module, module: str) -> dict[str, str]:
    """``local name -> original name`` for ``from <module> import ...``."""
    imported: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                imported[alias.asname or alias.name] = alias.name
    return imported


def contains_raise(node: ast.AST) -> bool:
    """Whether any ``raise`` statement appears under ``node``."""
    return any(isinstance(child, ast.Raise) for child in ast.walk(node))
