"""``python -m repro.analysis`` — same entry point as ``lsd-lint``."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
