"""Determinism rules.

The repo's headline guarantee — byte-identical matching output at any
``--workers`` count, and reproducible experiments at a fixed seed —
only holds while no code path consults an unseeded RNG, the wall clock,
or the iteration order of a set. These rules flag each of those at the
call site.

The detection logic is exposed as node-level scanners
(:func:`iter_wallclock_calls`, :func:`iter_unseeded_random`,
:func:`iter_set_order`) so the interprocedural determinism lattice
(:mod:`repro.analysis.flow.lattice`) can run the identical checks over
a single function body instead of a whole file.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .astutil import dotted, names_imported_from
from .engine import Rule, SourceFile, register
from .findings import Finding

#: ``random`` module functions drawing from the *global* (unseeded) RNG.
_GLOBAL_RANDOM_FUNCS = {
    "random", "randint", "randrange", "randbytes", "getrandbits",
    "choice", "choices", "shuffle", "sample", "uniform", "triangular",
    "betavariate", "expovariate", "gammavariate", "gauss",
    "lognormvariate", "normalvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate",
}

#: Wall-clock reads; each maps to the dotted call spelling.
_WALLCLOCK_CALLS = {
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
}

#: Other nondeterministic entropy reads the flow lattice also treats
#: as determinism-taint sources.
_ENTROPY_CALLS = {"os.urandom", "urandom", "uuid.uuid1", "uuid.uuid4"}


# ---------------------------------------------------------------------------
# node-level scanners (shared with the flow lattices)
# ---------------------------------------------------------------------------

def iter_wallclock_calls(nodes: Iterable[ast.AST]
                         ) -> Iterator[tuple[ast.AST, str]]:
    """``(call, message)`` for every wall-clock read among ``nodes``."""
    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        name = dotted(node.func)
        if name in _WALLCLOCK_CALLS:
            yield node, (f"{name}() reads the wall clock outside "
                         f"repro.observability; route timing through "
                         f"the observability layer")


def iter_entropy_calls(nodes: Iterable[ast.AST]
                       ) -> Iterator[tuple[ast.AST, str]]:
    """``(call, message)`` for OS-entropy reads (``os.urandom``,
    ``uuid.uuid1/4``) — determinism-taint sources for the flow lattice
    only; the per-file wallclock rule does not flag them."""
    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        name = dotted(node.func)
        if name in _ENTROPY_CALLS:
            yield node, f"{name}() draws OS entropy into the run"


def iter_unseeded_random(nodes: Iterable[ast.AST],
                         from_random: dict[str, str]
                         ) -> Iterator[tuple[ast.AST, str]]:
    """``(call, message)`` for every unseeded-RNG use among ``nodes``.

    ``from_random`` is the module's ``from random import ...`` alias
    map (:func:`~repro.analysis.astutil.names_imported_from`).
    """
    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        name = dotted(node.func)
        if name is None:
            continue
        seeded = bool(node.args or node.keywords)
        if name.startswith("random."):
            func = name.split(".", 1)[1]
            if func in _GLOBAL_RANDOM_FUNCS:
                yield node, (f"{name}() uses the global unseeded RNG; "
                             f"use random.Random(seed)")
            elif func == "Random" and not seeded:
                yield node, ("random.Random() without a seed is "
                             "nondeterministic; pass an explicit seed")
        elif from_random.get(name) == "Random" and not seeded:
            yield node, (f"{name}() without a seed is nondeterministic;"
                         f" pass an explicit seed")
        elif from_random.get(name) in _GLOBAL_RANDOM_FUNCS:
            yield node, (f"{name}() draws from the global unseeded "
                         f"RNG; use random.Random(seed)")
        elif name in ("np.random.default_rng",
                      "numpy.random.default_rng"):
            if not seeded:
                yield node, (f"{name}() without a seed is "
                             f"nondeterministic; pass an explicit seed")
        elif name.startswith(("np.random.", "numpy.random.")):
            yield node, (f"{name}() uses numpy's legacy global RNG; "
                         f"use np.random.default_rng(seed)")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


#: Wrapping calls that preserve the set's (arbitrary) iteration order.
_ORDER_SENSITIVE_WRAPPERS = {"list", "tuple", "enumerate", "iter",
                             "join"}

#: Order-insensitive consumers — reducing a set with these is fine.
_ORDER_FREE_WRAPPERS = {"sorted", "len", "sum", "min", "max", "any",
                        "all", "set", "frozenset"}


def iter_set_order(nodes: Iterable[ast.AST]
                   ) -> Iterator[tuple[ast.AST, str]]:
    """``(node, message)`` for every order-sensitive set iteration."""
    for node in nodes:
        if isinstance(node, ast.For) and _is_set_expr(node.iter):
            yield node.iter, ("for-loop over a set has arbitrary "
                              "order; iterate sorted(...) instead")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                               ast.DictComp)):
            for comp in node.generators:
                if _is_set_expr(comp.iter):
                    yield comp.iter, ("comprehension over a set "
                                      "produces arbitrary order; "
                                      "iterate sorted(...) instead")
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, (ast.Name, ast.Attribute)):
            func = node.func.id if isinstance(node.func, ast.Name) \
                else node.func.attr
            if func in _ORDER_SENSITIVE_WRAPPERS and node.args and \
                    _is_set_expr(node.args[0]):
                yield node, (f"{func}(set) captures the set's "
                             f"arbitrary order; use sorted(...)")


# ---------------------------------------------------------------------------
# the per-file rules
# ---------------------------------------------------------------------------

@register
class UnseededRandomRule(Rule):
    """No unseeded randomness anywhere: every RNG must take an explicit
    seed, or two runs of the same command stop agreeing."""

    id = "unseeded-random"
    severity = "error"
    description = ("calls to the global random module RNG, or RNG "
                   "constructors without an explicit seed")

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        from_random = names_imported_from(source.tree, "random")
        for node, message in iter_unseeded_random(
                ast.walk(source.tree), from_random):
            yield self.finding(source, node, message)


@register
class WallclockRule(Rule):
    """Wall-clock reads stay inside the observability layer (which
    exists to time things) and the benchmarks; anywhere else they leak
    nondeterminism into pipeline output."""

    id = "wallclock"
    severity = "warning"
    description = ("wall-clock reads (time.time/perf_counter/"
                   "datetime.now) outside observability and benchmarks")

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        if source.in_package("observability", "benchmarks"):
            return
        assert source.tree is not None
        for node, message in iter_wallclock_calls(
                ast.walk(source.tree)):
            yield self.finding(source, node, message)


@register
class SetIterationRule(Rule):
    """Iterating a set feeds its arbitrary order into whatever consumes
    the loop — wrap in ``sorted(...)`` before anything ordered sees it."""

    id = "set-iteration"
    severity = "warning"
    description = ("iteration over a set feeding ordered output; "
                   "wrap the set in sorted(...)")

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        for node, message in iter_set_order(ast.walk(source.tree)):
            yield self.finding(source, node, message)
