"""Dynamic sanitizers: cache-race shaking and a determinism differ.

The static rules (:mod:`repro.analysis.rules_concurrency`) allowlist the
featurize caches as *documented benign races* — concurrent fillers
compute identical values from immutable inputs, so last-write-wins is
claimed correct. That claim is dynamic, so it gets a dynamic check:

* :func:`shake_caches` hammers ``pipeline_tokens`` / ``content_tokens``
  from many threads under a tiny cache capacity (forcing the
  clear-on-full path on nearly every insert) and asserts that no thread
  ever observes a torn or divergent token list — every lookup must
  equal the single-threaded reference pipeline, on every iteration.

* :func:`diff_determinism` runs the full matching pipeline at
  ``--workers 1`` and ``--workers N`` over a synthetic domain and diffs
  what the repo promises is identical: the final mapping, every tag's
  score row, the trace's span-id structure, and the per-column quality
  records.

* :func:`diff_chaos_determinism` repeats the same diff under a fixed
  :class:`~repro.resilience.FaultPlan` — a learner crashing
  mid-predict, one task raising once (retried), the predict pool dying
  — and asserts the *degraded* mapping, quality records and the
  degradation report itself are still byte-identical at any worker
  count. This is the determinism contract the resilience layer adds on
  top of the healthy-path one. ``run_all`` replays the same plan once
  on ``backend="process"``, pinning that the worker-process path keeps
  it too.

All return plain-data reports (``ok`` + human-readable ``failures``)
so the CLI, tests and CI can share one harness.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np


@dataclass
class SanitizerReport:
    """Outcome of one sanitizer run."""

    name: str
    iterations: int = 0
    failures: list[str] = field(default_factory=list)
    details: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        status = "ok" if self.ok else \
            f"FAILED ({len(self.failures)} divergence(s))"
        lines = [f"sanitize[{self.name}]: {status} "
                 f"({self.iterations} iterations)"]
        lines.extend(f"  - {failure}" for failure in self.failures[:20])
        if len(self.failures) > 20:
            lines.append(f"  ... and {len(self.failures) - 20} more")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# cache-race shaker
# ---------------------------------------------------------------------------

#: Duplicate-heavy value pool mimicking real columns (cities, prices,
#: agents repeat across listings).
_SHAKE_TEXTS = tuple(
    f"{city}, fantastic {kind} near the {place} listed at ${price}000"
    for city in ("Miami", "Boston", "Seattle", "Austin", "Denver",
                 "Portland")
    for kind, place, price in (("house", "river", 120),
                               ("condo", "beach", 240),
                               ("cottage", "park", 360)))


def shake_caches(iterations: int = 50, threads: int = 8,
                 cache_capacity: int = 8) -> SanitizerReport:
    """Hammer the featurize caches from many threads; every observed
    token list must equal the uncached reference on every iteration.

    ``cache_capacity`` shrinks the text-level memo so the clear-on-full
    eviction path runs constantly — that is where a torn or dropped
    entry would surface. One thread also calls ``clear_text_cache``
    mid-flight each iteration to shake the explicit-clear path.
    """
    from ..core import featurize
    from ..core.instance import ElementInstance
    from ..xmlio import Element

    report = SanitizerReport("cache-race", iterations=iterations)
    reference = {text: featurize._pipeline(text) for text in _SHAKE_TEXTS}

    def make_instances() -> list[ElementInstance]:
        instances = []
        for index, text in enumerate(_SHAKE_TEXTS):
            element = Element(f"tag{index}")
            element.append_text(text)
            instances.append(ElementInstance(
                element, f"tag{index}", ("root",), {}))
        return instances

    original_capacity = featurize._TEXT_CACHE_MAX
    featurize._TEXT_CACHE_MAX = cache_capacity
    try:
        for iteration in range(iterations):
            featurize.clear_text_cache()
            instances = make_instances()
            start = threading.Barrier(threads)
            observed: list[list[tuple[str, list[str]]]] = \
                [[] for _ in range(threads)]
            errors: list[str] = []

            def worker(worker_id: int) -> None:
                # Per-thread deterministic order: stride through the
                # text pool so threads collide on different keys at
                # different times.
                try:
                    start.wait()
                    count = len(_SHAKE_TEXTS)
                    for step in range(count * 3):
                        index = (worker_id + step * (worker_id + 1)) \
                            % count
                        text = _SHAKE_TEXTS[index]
                        observed[worker_id].append(
                            (text, featurize.pipeline_tokens(text)))
                        instance = instances[index]
                        observed[worker_id].append(
                            (text, featurize.content_tokens(instance)))
                        if worker_id == 0 and step % 7 == 3:
                            featurize.clear_text_cache()
                except Exception as exc:  # lsd: ignore[blind-except]
                    errors.append(f"worker {worker_id} crashed: {exc!r}")

            pool = [threading.Thread(target=worker, args=(worker_id,))
                    for worker_id in range(threads)]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()

            report.failures.extend(errors)
            for worker_id, lookups in enumerate(observed):
                for text, tokens in lookups:
                    if tokens != reference[text]:
                        report.failures.append(
                            f"iteration {iteration}, worker "
                            f"{worker_id}: {text!r} -> {tokens!r} != "
                            f"reference {reference[text]!r}")
            if report.failures:
                break
    finally:
        featurize._TEXT_CACHE_MAX = original_capacity
        featurize.clear_text_cache()
    report.details["threads"] = threads
    report.details["texts"] = len(_SHAKE_TEXTS)
    report.details["cache_capacity"] = cache_capacity
    return report


# ---------------------------------------------------------------------------
# workers-1-vs-N determinism differ
# ---------------------------------------------------------------------------

def _build_trained_system(domain_name: str, n_listings: int,
                          workers: int):
    from ..core import LSDSystem
    from ..datasets import load_domain

    domain = load_domain(domain_name)
    system = LSDSystem.with_default_learners(
        domain.mediated_schema, constraints=domain.constraints,
        extra_learners=domain.recognizers(), workers=workers)
    for source in domain.sources[:2]:
        system.add_training_source(source.schema,
                                   source.listings(n_listings),
                                   source.mapping)
    system.train()
    return system, domain


def _run_match(system, domain, n_listings: int):
    from ..observability import Observer

    observer = Observer.full()
    source = domain.sources[2]
    result = system.match(source.schema, source.listings(n_listings),
                          observer=observer)
    return result, observer


def diff_determinism(workers: int = 4, repeats: int = 3,
                     domain_name: str = "real_estate_1",
                     n_listings: int = 20) -> SanitizerReport:
    """Match the same source at ``--workers 1`` and ``--workers N``
    ``repeats`` times and diff everything the repo pins as identical:
    final mapping, tag score rows, trace span-id structure, and quality
    records."""
    report = SanitizerReport("determinism", iterations=repeats)
    system, domain = _build_trained_system(domain_name, n_listings,
                                           workers=1)
    serial_result, serial_obs = _run_match(system, domain, n_listings)
    serial_spans = [(span.span_id, span.parent_id)
                    for span in serial_obs.trace.spans]
    serial_quality = [record.as_dict()
                      for record in serial_result.quality]
    serial_mapping = dict(serial_result.mapping.items())

    for repeat in range(repeats):
        system.workers = workers
        parallel_result, parallel_obs = _run_match(system, domain,
                                                   n_listings)
        system.workers = 1
        prefix = f"repeat {repeat} (workers {workers} vs 1)"

        parallel_mapping = dict(parallel_result.mapping.items())
        if parallel_mapping != serial_mapping:
            changed = sorted(
                tag for tag in set(serial_mapping)
                | set(parallel_mapping)
                if serial_mapping.get(tag) != parallel_mapping.get(tag))
            report.failures.append(
                f"{prefix}: final mapping differs on tags {changed}")

        for tag in sorted(serial_result.tag_scores):
            serial_row = serial_result.tag_scores[tag]
            parallel_row = parallel_result.tag_scores.get(tag)
            if parallel_row is None or not np.array_equal(serial_row,
                                                          parallel_row):
                report.failures.append(
                    f"{prefix}: score row for tag {tag!r} differs")

        parallel_spans = [(span.span_id, span.parent_id)
                          for span in parallel_obs.trace.spans]
        if parallel_spans != serial_spans:
            missing = sorted(set(serial_spans) - set(parallel_spans))
            extra = sorted(set(parallel_spans) - set(serial_spans))
            report.failures.append(
                f"{prefix}: trace structure differs "
                f"(missing={missing[:5]}, extra={extra[:5]})")

        parallel_quality = [record.as_dict()
                            for record in parallel_result.quality]
        if parallel_quality != serial_quality:
            report.failures.append(
                f"{prefix}: quality records differ")

    report.details["domain"] = domain_name
    report.details["n_listings"] = n_listings
    report.details["workers"] = workers
    report.details["tags"] = len(serial_mapping)
    report.details["spans"] = len(serial_spans)
    return report


# ---------------------------------------------------------------------------
# chaos determinism differ (same diff, under a fixed fault plan)
# ---------------------------------------------------------------------------

#: The fixed chaos plan the sanitizer replays per run: one learner
#: crashes mid-predict (quarantine + weight renormalization), the
#: predict pool dies (serial fallback), and the first executor task
#: fails once (recovered by the 1-retry budget). All raise-style —
#: no delays, no deadlines — so the degraded output is a pure
#: function of the plan, never of timing.
_CHAOS_PLAN = {
    "seed": 13,
    "faults": [
        {"site": "learner.predict", "key": "name_matcher",
         "action": "raise", "message": "chaos: learner crash"},
        {"site": "executor.pool", "key": "predict", "action": "raise"},
        {"site": "executor.task", "key": "0", "action": "raise",
         "count": 1},
    ],
}


def _chaos_policy():
    from ..resilience import FaultPlan, ResiliencePolicy

    # Hit counters and the degradation report are stateful: every run
    # must get a fresh plan + policy or the second run sees spent specs.
    return ResiliencePolicy(retries=1, backoff=0.0,
                            fault_plan=FaultPlan.from_dict(_CHAOS_PLAN))


def diff_chaos_determinism(workers: int = 4, repeats: int = 2,
                           domain_name: str = "real_estate_1",
                           n_listings: int = 20,
                           backend: str = "thread") -> SanitizerReport:
    """:func:`diff_determinism` under fire: match the same source at
    ``--workers 1`` and ``--workers N`` with the fixed
    :data:`_CHAOS_PLAN` armed, and diff the *degraded* mapping, tag
    score rows, quality records and the degradation report itself.

    Also asserts the plan actually bit — a chaos run whose degradation
    report is empty means a fault site silently stopped firing, which
    would turn this whole check into a vacuous pass.

    ``backend="process"`` replays the same fixed plan on the process
    execution backend: the ``executor.pool`` fault then exercises the
    pool-site serial fallback of the worker-process path, and the
    degraded output must still be byte-identical to ``--workers 1``.
    """
    name = ("chaos-determinism" if backend == "thread"
            else f"chaos-determinism[{backend}]")
    report = SanitizerReport(name, iterations=repeats)
    system, domain = _build_trained_system(domain_name, n_listings,
                                           workers=1)

    def run(worker_count: int):
        system.workers = worker_count
        system.backend = backend
        system.policy = _chaos_policy()
        try:
            result, _ = _run_match(system, domain, n_listings)
        finally:
            system.policy = None
            system.workers = 1
            system.backend = "thread"
            system.close_pool()
        return result

    serial = run(1)
    serial_mapping = dict(serial.mapping.items())
    serial_quality = [record.as_dict() for record in serial.quality]
    degradation = serial.degradation
    serial_degradation = degradation.as_dict() \
        if degradation is not None else {}

    if degradation is None or not degradation.degraded:
        report.failures.append(
            "chaos plan fired no faults — degradation report is empty")
    else:
        if "name_matcher" not in degradation.quarantined_learners:
            report.failures.append(
                "learner.predict fault did not quarantine "
                "'name_matcher'")
        if "predict" not in degradation.pool_failures:
            report.failures.append(
                "executor.pool fault did not force the serial "
                "fallback for stage 'predict'")
        if not any(entry["recovered"] for entry in degradation.retries):
            report.failures.append(
                "executor.task fault was not recovered by the retry "
                "budget")

    for repeat in range(repeats):
        parallel = run(workers)
        prefix = f"repeat {repeat} (workers {workers} vs 1)"

        parallel_mapping = dict(parallel.mapping.items())
        if parallel_mapping != serial_mapping:
            changed = sorted(
                tag for tag in set(serial_mapping)
                | set(parallel_mapping)
                if serial_mapping.get(tag) != parallel_mapping.get(tag))
            report.failures.append(
                f"{prefix}: degraded mapping differs on tags {changed}")

        for tag in sorted(serial.tag_scores):
            serial_row = serial.tag_scores[tag]
            parallel_row = parallel.tag_scores.get(tag)
            if parallel_row is None or not np.array_equal(serial_row,
                                                          parallel_row):
                report.failures.append(
                    f"{prefix}: degraded score row for tag {tag!r} "
                    f"differs")

        parallel_quality = [record.as_dict()
                            for record in parallel.quality]
        if parallel_quality != serial_quality:
            report.failures.append(
                f"{prefix}: degraded quality records differ")

        parallel_degradation = parallel.degradation.as_dict() \
            if parallel.degradation is not None else {}
        if parallel_degradation != serial_degradation:
            diverging = sorted(
                key for key in set(serial_degradation)
                | set(parallel_degradation)
                if serial_degradation.get(key)
                != parallel_degradation.get(key))
            report.failures.append(
                f"{prefix}: degradation report differs in sections "
                f"{diverging}")

    report.details["domain"] = domain_name
    report.details["n_listings"] = n_listings
    report.details["workers"] = workers
    report.details["backend"] = backend
    report.details["quarantined"] = degradation.quarantined_learners \
        if degradation is not None else []
    report.details["fired_faults"] = len(serial_degradation.get(
        "fired_faults", []))
    return report


def run_all(shake_iterations: int = 50, workers: int = 4,
            repeats: int = 3) -> list[SanitizerReport]:
    """The full sanitizer suite, as run by ``lsd-lint --sanitize``."""
    return [
        shake_caches(iterations=shake_iterations),
        diff_determinism(workers=workers, repeats=repeats),
        diff_chaos_determinism(workers=workers,
                               repeats=min(repeats, 2)),
        diff_chaos_determinism(workers=workers, repeats=1,
                               backend="process"),
    ]
