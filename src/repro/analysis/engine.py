"""The lint engine: source loading, rule registry, suppressions, runner.

Rules are small classes with a stable ``id``; each sees either one
parsed file at a time (:meth:`Rule.check_file`) or the whole analyzed
file set at once (:meth:`Rule.check_project`, for cross-file invariants
like the metric catalogue and the learner class hierarchy). The engine
parses every ``*.py`` file once into a :class:`SourceFile` (AST + raw
lines + suppression map) and fans the rule set over them.

Suppressions are inline comments on the flagged line::

    x = time.time()  # lsd: ignore[wallclock]
    y = risky()      # lsd: ignore[rule-a,rule-b]
    z = hack()       # lsd: ignore

A bare ``ignore`` suppresses every rule on that line; the bracketed form
suppresses only the listed rule ids. Findings surviving suppression are
then matched against the checked-in :class:`~.findings.Baseline`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from .findings import Baseline, Finding, sort_findings

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .flow.callgraph import CallGraph

#: Matches an inline suppression comment; group 1 is the optional
#: bracketed rule list.
_SUPPRESS_RE = re.compile(
    r"#\s*lsd:\s*ignore(?:\[([A-Za-z0-9_,\- ]+)\])?")

#: Directory names never descended into when walking a tree.
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache",
              "build", "dist"}


class SourceFile:
    """One parsed Python file plus everything rules need to inspect it."""

    def __init__(self, path: Path, display: str, text: str) -> None:
        self.path = path
        #: The path string findings carry (posix, as passed/walked).
        self.display = display
        self.text = text
        self.lines = text.splitlines()
        self.tree: ast.Module | None = None
        self.parse_error: SyntaxError | None = None
        try:
            self.tree = ast.parse(text, filename=display)
        except SyntaxError as exc:
            self.parse_error = exc
        #: line number -> set of suppressed rule ids (empty set = all).
        self.suppressions: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            listed = match.group(1)
            rules = ({rule.strip() for rule in listed.split(",")
                      if rule.strip()} if listed else set())
            self.suppressions[lineno] = rules
        if self.tree is not None and self.suppressions:
            self._expand_statement_spans()

    def _expand_statement_spans(self) -> None:
        """Resolve suppressions against each statement's full line span.

        A multi-line call flags at the line its AST node starts on, but
        the natural place to write the comment is the closing-paren
        line (or a decorator line, for a decorated def). Any
        suppression comment inside a simple statement's span — or a
        compound statement's header/decorator span, its body excluded —
        covers every line of that span."""
        spans: list[tuple[int, int]] = []
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            start = node.lineno
            end = node.end_lineno or start
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                if node.decorator_list:
                    start = min(dec.lineno
                                for dec in node.decorator_list)
                end = node.body[0].lineno - 1 if node.body else end
            elif hasattr(node, "cases"):  # match statement header
                end = node.subject.end_lineno or start
            else:
                body = getattr(node, "body", None)
                if isinstance(body, list) and body and \
                        isinstance(body[0], ast.stmt):
                    end = body[0].lineno - 1
            if end > start:
                spans.append((start, end))
        for start, end in spans:
            covered = [self.suppressions[line]
                       for line in range(start, end + 1)
                       if line in self.suppressions]
            if not covered:
                continue
            bare = any(not rules for rules in covered)
            merged: set[str] = set() if bare else set().union(*covered)
            for line in range(start, end + 1):
                existing = self.suppressions.get(line)
                if existing is None:
                    self.suppressions[line] = set(merged)
                elif bare or not existing:
                    self.suppressions[line] = set()
                else:
                    existing.update(merged)

    def in_package(self, *parts: str) -> bool:
        """Whether any path component equals one of ``parts`` — the
        hook rules use to scope themselves (e.g. the wallclock rule is
        silent inside ``observability`` and ``benchmarks``)."""
        components = set(Path(self.display).parts)
        return bool(components.intersection(parts))

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        if rules is None:
            return False
        return not rules or finding.rule in rules

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "parse-error" if self.parse_error else \
            f"{len(self.lines)} lines"
        return f"<SourceFile {self.display} ({state})>"


class Rule:
    """Base class for lint rules; subclasses set the class attributes
    and override one of the two check hooks."""

    id: str = ""
    severity: str = "error"
    description: str = ""
    #: Flow rules need the shared call graph; the engine builds it once
    #: per run iff at least one selected rule sets this, and plain
    #: ``get_rules()`` leaves such rules out of the default set.
    requires_flow: bool = False

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        """Per-file findings (the common case)."""
        return ()

    def check_project(self,
                      sources: Sequence[SourceFile]) -> Iterable[Finding]:
        """Whole-file-set findings (cross-file invariants)."""
        return ()

    def check_flow(self, graph: "CallGraph",
                   sources: Sequence[SourceFile]) -> Iterable[Finding]:
        """Interprocedural findings over the shared call graph (only
        called on rules with ``requires_flow``)."""
        return ()

    def finding(self, source: SourceFile, node: ast.AST | int,
                message: str) -> Finding:
        """Build a finding at an AST node (or explicit line number)."""
        line = node if isinstance(node, int) else \
            getattr(node, "lineno", 0)
        return Finding(source.display, line, self.id, message,
                       self.severity)


#: id -> rule class, in registration order.
_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the default rule set."""
    if not rule_class.id:
        raise ValueError(f"{rule_class.__name__} has no rule id")
    if rule_class.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id!r}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule."""
    _load_rule_modules()
    return [rule_class() for rule_class in _REGISTRY.values()]


def rule_ids() -> list[str]:
    _load_rule_modules()
    return list(_REGISTRY)


def get_rules(select: Iterable[str] | None = None, *,
              include_flow: bool = False) -> list[Rule]:
    """The rule set, optionally narrowed by ``select``.

    ``select`` entries are exact rule ids or glob patterns
    (``flow-*``, ``metric-*``); each entry must match at least one
    registered rule. Without ``select``, flow rules are excluded
    unless ``include_flow`` — the per-file gate and the flow gate run
    against separate baselines. An explicit ``select`` can always name
    flow rules.
    """
    rules = all_rules()
    if select is None:
        return [rule for rule in rules
                if include_flow or not rule.requires_flow]
    ids = [rule.id for rule in rules]
    wanted: set[str] = set()
    unknown: list[str] = []
    for pattern in select:
        pattern = pattern.strip()
        if not pattern:
            continue
        matches = [rule_id for rule_id in ids
                   if fnmatchcase(rule_id, pattern)]
        if matches:
            wanted.update(matches)
        else:
            unknown.append(pattern)
    if unknown:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown rule id(s)/pattern(s) {sorted(unknown)}; "
            f"known: {known}")
    return [rule for rule in rules if rule.id in wanted]


def _load_rule_modules() -> None:
    """Import the rule modules (registration happens on import)."""
    from . import (rules_concurrency, rules_determinism,  # noqa: F401
                   rules_exceptions, rules_learners,
                   rules_observability, rules_resilience)
    from .flow import rules_flow  # noqa: F401


# ---------------------------------------------------------------------------
# file discovery and the runner
# ---------------------------------------------------------------------------

def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """All ``*.py`` files under the given files/directories, sorted so
    runs are reproducible regardless of filesystem order."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                candidate for candidate in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(candidate.parts))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def load_source(path: Path) -> SourceFile:
    return SourceFile(path, path.as_posix(), path.read_text())


@dataclass
class AnalysisResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)   # new
    accepted: list[Finding] = field(default_factory=list)   # baselined
    files: int = 0
    rules: int = 0
    #: The shared call-graph artifact, when any flow rule ran.
    graph: "CallGraph | None" = None

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary_line(self) -> str:
        status = "clean" if self.ok else \
            f"{len(self.findings)} finding(s)"
        accepted = f", {len(self.accepted)} baselined" if self.accepted \
            else ""
        return (f"lsd-lint: {status}{accepted} "
                f"({self.files} files, {self.rules} rules)")


def analyze_sources(sources: Sequence[SourceFile],
                    rules: Sequence[Rule] | None = None,
                    baseline: Baseline | None = None,
                    graph: "CallGraph | None" = None) -> AnalysisResult:
    """Run ``rules`` over parsed sources; split against ``baseline``.

    When any rule sets ``requires_flow``, the project call graph is
    built once (or taken from ``graph`` if the caller already built
    one, e.g. for ``--dump-callgraph``) and shared by every flow rule.
    """
    rules = list(get_rules() if rules is None else rules)
    raw: list[Finding] = []
    for source in sources:
        if source.parse_error is not None:
            error = source.parse_error
            raw.append(Finding(
                source.display, error.lineno or 0, "parse-error",
                f"file does not parse: {error.msg}"))
            continue
        for rule in rules:
            raw.extend(rule.check_file(source))
    parsed = [source for source in sources if source.tree is not None]
    for rule in rules:
        raw.extend(rule.check_project(parsed))

    flow_rules = [rule for rule in rules if rule.requires_flow]
    if flow_rules:
        if graph is None:
            from .flow.callgraph import build_graph
            graph = build_graph(parsed)
        for rule in flow_rules:
            raw.extend(rule.check_flow(graph, parsed))

    by_display = {source.display: source for source in sources}
    visible = [finding for finding in raw
               if not (finding.path in by_display
                       and by_display[finding.path].is_suppressed(
                           finding))]
    new, accepted = (baseline or Baseline()).split(visible)
    return AnalysisResult(sort_findings(new), accepted,
                          files=len(sources), rules=len(rules),
                          graph=graph)


def analyze_paths(paths: Sequence[str | Path],
                  rules: Sequence[Rule] | None = None,
                  baseline: Baseline | None = None,
                  graph: "CallGraph | None" = None) -> AnalysisResult:
    """Load every Python file under ``paths`` and analyze it."""
    sources = [load_source(path) for path in iter_python_files(paths)]
    return analyze_sources(sources, rules, baseline, graph)
