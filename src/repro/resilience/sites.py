"""The catalogue of named fault-injection sites.

A *fault site* is a pipeline boundary where a :class:`FaultPlan` may
inject a failure (raise / delay / corrupt). Sites are addressed by the
``SITE_*`` constants below and documented in :data:`SITE_CATALOGUE`;
the ``fault-site-catalogue`` lint rule enforces two-directional
agreement between this catalogue and the sites actually armed in
source, exactly like the metric catalogue.

Each site pairs with a *key* that identifies the logical unit being
hit (not its arrival order), which is what keeps injected faults
deterministic under parallel execution.
"""

from __future__ import annotations

#: Per-listing ingestion; key = top-level listing (chunk) index as a
#: string. ``corrupt`` faults rewrite the chunk text before parsing.
SITE_INGEST_CHUNK = "ingest.chunk"

#: Base-learner training; key = learner name. A fired fault quarantines
#: the learner for the run.
SITE_LEARNER_FIT = "learner.fit"

#: Base-learner prediction; key = learner name. A fired fault
#: quarantines the learner and renormalizes the meta-learner weights.
SITE_LEARNER_PREDICT = "learner.predict"

#: One executor task; key = task index as a string. Fired faults are
#: retried per the policy's retry budget.
SITE_EXECUTOR_TASK = "executor.task"

#: The executor's worker pool as a whole; key = the map call's stage
#: label. A fired fault simulates the pool dying and forces the serial
#: fallback for that call.
SITE_EXECUTOR_POOL = "executor.pool"

#: Constraint-search root expansion; key = search label. Used to
#: exercise the anytime/best-so-far path.
SITE_SEARCH_ROOT = "constraints.search"

#: One worker of the process execution backend; key = the map call's
#: stage label. A fired fault hard-kills a live worker process
#: (``os._exit``) before any task of that map is dispatched, breaking
#: the pool and exercising the genuine crash-recovery path: serial
#: fallback for the map, segment cleanup, thread fallback afterwards.
#: Fires only when a process pool is actually in use — at
#: ``--workers 1`` (or ``--backend thread``) there is no process to
#: kill, so plans targeting it leave such runs untouched.
SITE_WORKER_PROCESS = "worker.process"

#: One run-artifact write (report, trace, events, ledger); key = the
#: destination file name. The fault fires *between* writing the temp
#: file and the atomic rename, so an injected crash proves a killed
#: run can never leave a truncated artifact: the target either keeps
#: its previous content or receives the complete new one.
SITE_ARTIFACT_WRITE = "artifact.write"

#: Every legal fault site, with operator-facing documentation. The
#: ``fault-site-catalogue`` lint rule keeps this in sync with usage.
SITE_CATALOGUE: dict[str, str] = {
    SITE_INGEST_CHUNK:
        "Per-listing ingestion boundary; corrupt, drop or delay one "
        "top-level listing before it is parsed (key: listing index).",
    SITE_LEARNER_FIT:
        "Base-learner training; a fault here quarantines the learner "
        "before it joins the ensemble (key: learner name).",
    SITE_LEARNER_PREDICT:
        "Base-learner prediction; a fault here quarantines the learner "
        "mid-run and renormalizes meta weights (key: learner name).",
    SITE_EXECUTOR_TASK:
        "A single parallel-executor task; fired faults consume retry "
        "budget before surfacing (key: task index).",
    SITE_EXECUTOR_POOL:
        "The executor's worker pool; a fault here simulates pool death "
        "and forces the serial fallback (key: stage label).",
    SITE_SEARCH_ROOT:
        "Constraint-search root split; used to exercise the anytime "
        "best-so-far path (key: search label).",
    SITE_WORKER_PROCESS:
        "One process-backend worker; a fault here hard-kills the "
        "worker before dispatch, forcing the serial fallback and the "
        "shared-memory cleanup path (key: stage label).",
    SITE_ARTIFACT_WRITE:
        "One run-artifact write; fires between the temp-file write and "
        "the atomic rename, modelling a crash mid-write (key: "
        "destination file name).",
}
