"""Run-level resilience policy and degradation accounting.

:class:`ResiliencePolicy` bundles the operator-facing knobs (ingestion
mode, retry budget, deadline, learner timeout, fault plan) and owns the
:class:`DegradationReport` that every layer appends to — ingestion
salvage counts, learner quarantines, executor retries and pool
failures, anytime search exits. The report feeds the ``degradation``
section of the run report, so a degraded run is always *visible*, never
silent.

The default policy (no retries, no deadline, no plan, strict mode) is
inert: every hook is a cheap no-op and pipeline output is byte-identical
to a build without this package.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from .faults import FaultPlan
from ..xmlio.recovery import INGEST_MODES, RecoveryLog


class LearnerTimeout(RuntimeError):
    """A base-learner call exceeded the policy's per-call timeout."""


def call_with_timeout(fn, args=(), timeout: float | None = None):
    """Run ``fn(*args)``, raising :class:`LearnerTimeout` after ``timeout``.

    With ``timeout=None`` the call is direct (zero overhead). Otherwise
    the call runs on a daemon thread that is *abandoned* on timeout —
    Python cannot safely kill arbitrary code, so the caller must treat
    a timeout as grounds for quarantining whatever ``fn`` belongs to.
    """
    if timeout is None:
        return fn(*args)
    outcome: dict = {}

    def runner() -> None:
        # The closure writes below are a confined single-producer
        # handoff: ``outcome`` is fresh per call and only read after
        # join() on the caller's thread.
        try:
            outcome["value"] = fn(*args)  # lsd: ignore[executor-shared-write]
        except BaseException as exc:  # lsd: ignore[blind-except]
            # Transported across the thread boundary and re-raised on
            # the caller's thread below — nothing is swallowed.
            outcome["error"] = exc  # lsd: ignore[executor-shared-write]

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise LearnerTimeout(
            f"call did not finish within {timeout:g}s")
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]


class Deadline:
    """A wall-clock budget shared across pipeline stages.

    ``Deadline(None)`` never expires and costs one attribute read per
    check. Time is read through ``time.monotonic`` — the deadline is a
    *robustness* device, so chaos determinism tests only combine it
    with raise-style faults, never with timing-sensitive assertions.

    :meth:`trip` expires the deadline immediately from another thread —
    the runtime watchdog and memory-pressure guardrails use it to force
    long-running stages (the constraint search) onto their anytime
    best-so-far exits. A tripped deadline counts as active even when it
    carries no time budget.
    """

    __slots__ = ("seconds", "_start", "_tripped")

    def __init__(self, seconds: float | None = None) -> None:
        self.seconds = seconds
        self._tripped = False
        self._start = None if seconds is None else \
            time.monotonic()  # lsd: ignore[wallclock]

    @property
    def active(self) -> bool:
        return self.seconds is not None or self._tripped

    def trip(self) -> None:
        """Expire immediately (idempotent, thread-safe: one boolean
        store, read at the consumers' amortized poll points)."""
        self._tripped = True

    def remaining(self) -> float | None:
        """Seconds left, or ``None`` for an inert deadline."""
        if self._tripped:
            return 0.0
        if self._start is None:
            return None
        elapsed = time.monotonic() - self._start  # lsd: ignore[wallclock]
        return self.seconds - elapsed

    def expired(self) -> bool:
        if self._tripped:
            return True
        if self._start is None:
            return False
        remaining = self.remaining()
        return remaining is not None and remaining <= 0


@dataclass(frozen=True)
class QuarantineEvent:
    """One base learner removed from the ensemble mid-run."""

    learner: str
    stage: str  # "fit" | "predict"
    cause: str
    error_type: str

    def as_dict(self) -> dict:
        return {"learner": self.learner, "stage": self.stage,
                "cause": self.cause, "error_type": self.error_type}


class DegradationReport:
    """Everything that went wrong — and was absorbed — during a run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.quarantines: list[QuarantineEvent] = []
        self.retries: list[dict] = []
        self.pool_failures: list[str] = []
        self.anytime = False
        self.recovery: RecoveryLog | None = None
        self.fired_faults: list[dict] = []
        #: Run artifacts (report/trace/ledger/telemetry) whose write
        #: failed and was absorbed instead of crashing the run.
        self.artifact_failures: list[dict] = []
        #: Worker deaths absorbed mid-map by re-dispatching the lost
        #: shard to a surviving worker (watchdog kills land here).
        self.worker_deaths: list[dict] = []
        #: Watchdog escalations: hung-worker kills and pipeline stalls.
        self.watchdog: list[dict] = []
        #: Memory-pressure tier actions (cache shed, shard re-grain,
        #: checkpoint-and-degrade), in the order they fired.
        self.pressure_events: list[dict] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def quarantine(self, learner: str, stage: str, cause: str,
                   error_type: str) -> None:
        with self._lock:
            self.quarantines.append(
                QuarantineEvent(learner, stage, cause, error_type))

    def retried(self, stage: str, task: int, attempts: int,
                recovered: bool) -> None:
        with self._lock:
            self.retries.append({"stage": stage, "task": task,
                                 "attempts": attempts,
                                 "recovered": recovered})

    def pool_failed(self, stage: str) -> None:
        with self._lock:
            self.pool_failures.append(stage)

    def artifact_failed(self, artifact: str, cause: str) -> None:
        """An observability artifact could not be written; the run
        keeps its results and records the loss instead of crashing."""
        with self._lock:
            self.artifact_failures.append(
                {"artifact": artifact, "cause": cause})

    def worker_died(self, stage: str, worker: int, task: int) -> None:
        """A pool worker died mid-map and its shard was re-dispatched
        to a survivor — degradation (lost latency), not data loss."""
        with self._lock:
            self.worker_deaths.append(
                {"stage": stage, "worker": worker, "task": task})

    def watchdog_event(self, kind: str, detail: str) -> None:
        """A supervisor escalation: ``worker_killed`` or ``stall``."""
        with self._lock:
            self.watchdog.append({"kind": kind, "detail": detail})

    def pressure(self, tier: int, action: str) -> None:
        """A memory-pressure tier fired (see
        :mod:`repro.runtime.pressure`)."""
        with self._lock:
            self.pressure_events.append(
                {"tier": tier, "action": action})

    def mark_anytime(self) -> None:
        self.anytime = True

    def attach_recovery(self, log: RecoveryLog) -> None:
        self.recovery = log

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def quarantined_learners(self) -> list[str]:
        """Names of quarantined learners, deduplicated, first-event order."""
        seen: list[str] = []
        for event in self.quarantines:
            if event.learner not in seen:
                seen.append(event.learner)
        return seen

    @property
    def degraded(self) -> bool:
        return bool(self.quarantines or self.retries
                    or self.pool_failures or self.anytime
                    or self.fired_faults or self.artifact_failures
                    or self.worker_deaths or self.watchdog
                    or self.pressure_events
                    or (self.recovery is not None
                        and not self.recovery.ok))

    def as_dict(self) -> dict:
        """JSON form for the run report; only non-empty parts appear."""
        out: dict = {}
        if self.quarantines:
            out["quarantined"] = [event.as_dict()
                                  for event in self.quarantines]
        if self.retries:
            # Worker threads append in scheduling order; sort so the
            # report is byte-identical at any --workers count.
            out["retries"] = sorted(
                self.retries,
                key=lambda r: (r["stage"], r["task"], r["attempts"]))
        if self.pool_failures:
            out["pool_failures"] = sorted(self.pool_failures)
        if self.anytime:
            out["anytime"] = True
        if self.recovery is not None and not self.recovery.ok:
            out["ingestion"] = self.recovery.as_dict()
        if self.fired_faults:
            out["fired_faults"] = list(self.fired_faults)
        if self.artifact_failures:
            out["artifact_failures"] = sorted(
                self.artifact_failures,
                key=lambda f: (f["artifact"], f["cause"]))
        if self.worker_deaths:
            # Deaths are timing-dependent by nature; sorting keeps the
            # report stable for a given set of absorbed deaths.
            out["worker_deaths"] = sorted(
                self.worker_deaths,
                key=lambda d: (d["stage"], d["task"], d["worker"]))
        if self.watchdog:
            out["watchdog"] = list(self.watchdog)
        if self.pressure_events:
            out["pressure"] = list(self.pressure_events)
        return out


@dataclass
class ResiliencePolicy:
    """Operator knobs for fault tolerance, plus the run's degradation log.

    The default instance is inert — strict ingestion, no retries, no
    deadline, no timeouts, no fault plan — and keeps the pipeline
    byte-identical to a policy-free build.
    """

    input_mode: str = "strict"
    retries: int = 0
    backoff: float = 0.05
    backoff_seed: int = 0
    deadline: float | None = None
    learner_timeout: float | None = None
    fault_plan: FaultPlan | None = None
    report: DegradationReport = field(default_factory=DegradationReport)
    #: The most recent :meth:`start_deadline` product — the handle the
    #: runtime watchdog and pressure monitor trip from their threads.
    _active_deadline: Deadline | None = field(
        default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.input_mode not in INGEST_MODES:
            raise ValueError(
                f"unknown input mode {self.input_mode!r}; expected one "
                f"of {', '.join(INGEST_MODES)}")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")

    def start_deadline(self) -> Deadline:
        """A fresh :class:`Deadline` for one pipeline run."""
        deadline = Deadline(self.deadline)
        self._active_deadline = deadline
        return deadline

    def trip_deadline(self) -> None:
        """Expire the current run's deadline from another thread (the
        watchdog/pressure escalation path); no-op before the first
        :meth:`start_deadline`."""
        deadline = self._active_deadline
        if deadline is not None:
            deadline.trip()

    def fire(self, site: str, key: str = "") -> None:
        """Hit a fault site if a plan is armed; no-op otherwise."""
        if self.fault_plan is not None:
            self.fault_plan.fire(site, key)

    def finalize(self) -> DegradationReport:
        """Fold fired-fault records into the report and return it."""
        if self.fault_plan is not None:
            self.report.fired_faults = self.fault_plan.records()
        return self.report
