"""Fault tolerance for the matching pipeline.

This package holds everything the pipeline needs to *degrade gracefully
instead of dying*: the catalogue of named fault sites
(:mod:`~repro.resilience.sites`), the seeded deterministic fault
injector used by the chaos tests (:mod:`~repro.resilience.faults`), the
run-level policy knobs and degradation accounting
(:mod:`~repro.resilience.policy`), and fault-aware listing ingestion
(:mod:`~repro.resilience.ingest`).

Determinism contract: a :class:`FaultPlan` keys every fault site by a
*logical* identifier (learner name, listing index, task index) rather
than by arrival order, so the same seed produces the same faults — and
the same degraded mapping — at any ``--workers`` count.
"""

from .faults import (CORRUPTION_STYLES, FaultInjected, FaultPlan,
                     FaultSpec, corrupt_text)
from .ingest import ingest_fragments
from .policy import (Deadline, DegradationReport, LearnerTimeout,
                     QuarantineEvent, ResiliencePolicy, call_with_timeout)
from .sites import (SITE_ARTIFACT_WRITE, SITE_CATALOGUE,
                    SITE_EXECUTOR_POOL, SITE_EXECUTOR_TASK,
                    SITE_INGEST_CHUNK, SITE_LEARNER_FIT,
                    SITE_LEARNER_PREDICT, SITE_SEARCH_ROOT)

__all__ = [
    "CORRUPTION_STYLES", "Deadline", "DegradationReport",
    "FaultInjected", "FaultPlan", "FaultSpec", "LearnerTimeout",
    "QuarantineEvent", "ResiliencePolicy", "SITE_ARTIFACT_WRITE",
    "SITE_CATALOGUE",
    "SITE_EXECUTOR_POOL", "SITE_EXECUTOR_TASK", "SITE_INGEST_CHUNK",
    "SITE_LEARNER_FIT", "SITE_LEARNER_PREDICT", "SITE_SEARCH_ROOT",
    "call_with_timeout", "corrupt_text", "ingest_fragments",
]
