"""Seeded, deterministic fault injection.

A :class:`FaultPlan` is a list of :class:`FaultSpec` triggers armed at
the named sites of :mod:`repro.resilience.sites`. The pipeline calls
``plan.fire(site, key)`` (or ``plan.corrupt`` for text-rewriting sites)
at each boundary; the plan counts hits per ``(site, key)`` and fires
the configured action when a spec's schedule matches.

Determinism: hits are counted per logical key, never per arrival
order, and all corruption randomness derives from
``Random(f"{seed}|{site}|{key}")`` — so the same plan produces the
same faults at any worker count, which is what lets the chaos suite
assert byte-identical *degraded* output across ``--workers`` settings.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, field

from .sites import SITE_CATALOGUE

#: The fault actions a spec may request.
ACTIONS = ("raise", "delay", "corrupt")

#: Deterministic text-corruption styles (see :func:`corrupt_text`).
CORRUPTION_STYLES = ("drop-close", "bogus-entity", "stray-markup",
                     "truncate-tail")


class FaultInjected(RuntimeError):
    """Raised by a fired ``raise``-action fault."""

    def __init__(self, site: str, key: str, message: str) -> None:
        super().__init__(message)
        self.site = site
        self.key = key


@dataclass(frozen=True)
class FaultSpec:
    """One trigger: *where* (site/key), *when* (schedule), *what* (action).

    ``key=None`` arms the spec for every key at the site, scheduled
    against the site-wide hit counter; a concrete key schedules against
    that key's own counter. The spec fires on hit ``at_hit``, then every
    ``every`` hits after that, at most ``count`` times total.
    """

    site: str
    action: str = "raise"
    key: str | None = None
    at_hit: int = 1
    every: int = 1
    count: int = 1
    #: Sleep length for ``delay`` actions, seconds.
    delay: float = 0.0
    #: Error text for ``raise`` actions; for ``corrupt`` actions, an
    #: optional style name from :data:`CORRUPTION_STYLES`.
    message: str = ""

    def __post_init__(self) -> None:
        if self.site not in SITE_CATALOGUE:
            known = ", ".join(sorted(SITE_CATALOGUE))
            raise ValueError(
                f"unknown fault site {self.site!r}; known sites: {known}")
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of "
                f"{', '.join(ACTIONS)}")
        if self.action == "corrupt" and self.message \
                and self.message not in CORRUPTION_STYLES:
            raise ValueError(
                f"unknown corruption style {self.message!r}; expected "
                f"one of {', '.join(CORRUPTION_STYLES)}")
        if self.at_hit < 1 or self.every < 1 or self.count < 1:
            raise ValueError(
                "at_hit, every and count must all be >= 1")

    def as_dict(self) -> dict:
        entry: dict = {"site": self.site, "action": self.action}
        if self.key is not None:
            entry["key"] = self.key
        if self.at_hit != 1:
            entry["at_hit"] = self.at_hit
        if self.every != 1:
            entry["every"] = self.every
        if self.count != 1:
            entry["count"] = self.count
        if self.delay:
            entry["delay"] = self.delay
        if self.message:
            entry["message"] = self.message
        return entry


@dataclass
class _FireRecord:
    """What actually fired, for the degradation report."""

    site: str
    key: str
    action: str
    hit: int
    detail: str = ""

    def as_dict(self) -> dict:
        entry = {"site": self.site, "key": self.key,
                 "action": self.action, "hit": self.hit}
        if self.detail:
            entry["detail"] = self.detail
        return entry


@dataclass
class FaultPlan:
    """A seeded set of fault specs plus thread-safe hit accounting."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)
    _site_hits: dict = field(default_factory=dict, repr=False,
                             compare=False)
    _key_hits: dict = field(default_factory=dict, repr=False,
                            compare=False)
    _fired: dict = field(default_factory=dict, repr=False, compare=False)
    _records: list = field(default_factory=list, repr=False,
                           compare=False)

    def __post_init__(self) -> None:
        self.specs = tuple(self.specs)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValueError("fault plan must be a JSON object")
        unknown = set(data) - {"seed", "faults"}
        if unknown:
            raise ValueError(
                f"unknown fault-plan keys: {', '.join(sorted(unknown))}")
        specs = []
        for index, raw in enumerate(data.get("faults", [])):
            if not isinstance(raw, dict):
                raise ValueError(f"faults[{index}] must be an object")
            try:
                specs.append(FaultSpec(**raw))
            except TypeError as exc:
                raise ValueError(f"faults[{index}]: {exc}") from exc
        return cls(specs=tuple(specs), seed=int(data.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") \
                from exc
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def targets_site(self, site: str) -> bool:
        """True if any spec is armed at ``site``."""
        return any(spec.site == site for spec in self.specs)

    def records(self) -> list[dict]:
        """Every fired fault so far.

        Sorted by (site, key, hit) rather than firing order: under
        parallel execution the firing order depends on thread
        scheduling, and the degradation report must be byte-identical
        at any worker count.
        """
        with self._lock:
            entries = [record.as_dict() for record in self._records]
        return sorted(entries,
                      key=lambda r: (r["site"], r["key"], r["hit"],
                                     r["action"]))

    def as_dict(self) -> dict:
        return {"seed": self.seed,
                "faults": [spec.as_dict() for spec in self.specs]}

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def fire(self, site: str, key: str = "") -> FaultSpec | None:
        """Count a hit at ``(site, key)``; apply the matching action.

        ``raise`` faults raise :class:`FaultInjected`; ``delay`` faults
        sleep and return ``None``; ``corrupt`` faults return the fired
        spec so the caller can rewrite its payload (use
        :meth:`corrupt` for text sites).
        """
        spec, hit = self._check(site, key)
        if spec is None:
            return None
        if spec.action == "raise":
            message = spec.message or \
                f"injected fault at {site}[{key}] (hit {hit})"
            self._note(site, key, "raise", hit, message)
            raise FaultInjected(site, key, message)
        if spec.action == "delay":
            self._note(site, key, "delay", hit, f"{spec.delay}s")
            time.sleep(spec.delay)
            return None
        return spec

    def corrupt(self, site: str, key: str,
                text: str) -> tuple[str, str | None]:
        """Like :meth:`fire`, but applies ``corrupt`` actions to ``text``.

        Returns ``(possibly rewritten text, style or None)``.
        """
        spec = self.fire(site, key)
        if spec is None or spec.action != "corrupt":
            return text, None
        rng = random.Random(f"{self.seed}|{site}|{key}")
        style = spec.message or rng.choice(CORRUPTION_STYLES)
        self._note(site, key, "corrupt",
                   self._key_hits.get((site, key), 0), style)
        return corrupt_text(text, style, rng), style

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check(self, site: str,
               key: str) -> tuple[FaultSpec | None, int]:
        with self._lock:
            site_hits = self._site_hits[site] = \
                self._site_hits.get(site, 0) + 1
            key_hits = self._key_hits[(site, key)] = \
                self._key_hits.get((site, key), 0) + 1
            for index, spec in enumerate(self.specs):
                if spec.site != site:
                    continue
                if spec.key is not None and spec.key != key:
                    continue
                hits = site_hits if spec.key is None else key_hits
                if self._fired.get(index, 0) >= spec.count:
                    continue
                if hits < spec.at_hit:
                    continue
                if (hits - spec.at_hit) % spec.every:
                    continue
                self._fired[index] = self._fired.get(index, 0) + 1
                return spec, hits
            return None, key_hits

    def _note(self, site: str, key: str, action: str, hit: int,
              detail: str) -> None:
        with self._lock:
            self._records.append(
                _FireRecord(site, key, action, hit, detail))


def corrupt_text(text: str, style: str, rng: random.Random) -> str:
    """Deterministically damage an XML chunk in a recognisable way.

    The damage is always *inside* the listing (the opening start tag
    survives) so the tolerant chunker still isolates the listing and
    the recovering parser has something to repair.
    """
    if style not in CORRUPTION_STYLES:
        raise ValueError(f"unknown corruption style {style!r}")
    head = text.find(">")
    if head < 0 or head + 1 >= len(text):
        return text  # nothing after the first tag worth damaging
    if style == "drop-close":
        cut = text.rfind("</")
        if cut > head:
            end = text.find(">", cut)
            tail = text[end + 1:] if end >= 0 else ""
            return text[:cut] + tail
        style = "truncate-tail"
    if style == "truncate-tail":
        span = len(text) - (head + 1)
        keep = head + 1 + max(1, int(span * rng.uniform(0.3, 0.8)))
        return text[:keep]
    at = rng.randrange(head + 1, len(text))
    if style == "bogus-entity":
        return text[:at] + "&bogus;" + text[at:]
    # stray-markup: a lone "<" mid-content
    return text[:at] + "< " + text[at:]
