"""Fault-aware listing ingestion.

Bridges :mod:`repro.xmlio.recovery` and the fault injector: listings
are chunked, each chunk passes through the :data:`SITE_INGEST_CHUNK`
fault site (keyed by its listing index, so corruption is independent
of read order), and the surviving text is parsed under the policy's
ingestion mode. Without an armed ingest fault this delegates straight
to :func:`repro.xmlio.recovery.read_fragments`, keeping the no-plan
path identical to plain recovery ingestion.
"""

from __future__ import annotations

from .faults import FaultInjected, FaultPlan
from .sites import SITE_INGEST_CHUNK
from ..xmlio.errors import SourceLocation
from ..xmlio.parser import parse_fragments
from ..xmlio.recovery import (Fragment, RecoveryLog, parse_chunk,
                              read_fragments, split_fragments)
from ..xmlio.tree import Element


def ingest_fragments(text: str, mode: str = "strict",
                     plan: FaultPlan | None = None,
                     keep_whitespace: bool = False) \
        -> tuple[list[Element], RecoveryLog]:
    """Parse sibling listings under ``mode``, injecting ingest faults.

    ``strict`` mode reassembles the (possibly corrupted) chunks and
    parses them strictly — an injected corruption therefore raises,
    which is exactly the brittleness the lenient modes exist to fix.
    """
    if plan is None or not plan.targets_site(SITE_INGEST_CHUNK):
        return read_fragments(text, mode, keep_whitespace)
    log = RecoveryLog()
    roots: list[Element] = []
    pieces: list[str] = []
    for index, fragment in enumerate(split_fragments(text)):
        location = SourceLocation(fragment.line, fragment.column)
        chunk_text = fragment.text
        if fragment.kind == "element":
            try:
                chunk_text, style = plan.corrupt(
                    SITE_INGEST_CHUNK, str(index), chunk_text)
            except FaultInjected as exc:
                if mode == "strict":
                    raise
                log.record("injected-fault",
                           f"listing unreadable: {exc}", location, index)
                log.dropped.append(index)
                log.record("dropped-listing",
                           "listing dropped (injected ingest fault)",
                           location, index)
                continue
            if style is not None:
                log.record("injected-fault",
                           f"listing corrupted by fault plan "
                           f"(style: {style})", location, index)
        if mode == "strict":
            pieces.append(chunk_text)
            continue
        damaged = Fragment(chunk_text, fragment.line, fragment.column,
                           fragment.kind)
        roots.extend(parse_chunk(damaged, mode, log, index,
                                 keep_whitespace=keep_whitespace))
    if mode == "strict":
        return parse_fragments("\n".join(pieces),
                               keep_whitespace=keep_whitespace), log
    if not roots:
        log.record("no-elements",
                   "no listings could be parsed from the input",
                   SourceLocation(1, 1))
    return roots, log
