"""Process-resource sampling from ``/proc/self``.

:func:`read_proc_self` reads one point-in-time snapshot of the calling
process — resident set size, cumulative CPU time, open file
descriptors, live threads — straight from procfs with no third-party
dependencies. Workers of the process execution backend call it to ship
resource snapshots back over the pool's wire protocol; the driver calls
it through :class:`ResourceSampler` to keep the ``proc.*`` gauges live
while ``--serve-metrics`` is scraping.

Everything degrades to zeros on platforms without procfs (the sampler
never makes a run fail), and both the reader and the clock are
injectable so tests drive the sampler deterministically instead of
sleeping.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

from .metrics import (M_PROC_CPU, M_PROC_FDS, M_PROC_RSS,
                      M_PROC_THREADS)

_PROC = "/proc/self"


@dataclass(frozen=True)
class ProcSample:
    """One point-in-time resource snapshot of a process."""

    rss_bytes: int = 0
    cpu_seconds: float = 0.0
    open_fds: int = 0
    threads: int = 0

    def as_dict(self) -> dict:
        return {"rss_bytes": self.rss_bytes,
                "cpu_seconds": self.cpu_seconds,
                "open_fds": self.open_fds,
                "threads": self.threads}

    @classmethod
    def from_dict(cls, data: dict) -> "ProcSample":
        return cls(rss_bytes=int(data.get("rss_bytes", 0)),
                   cpu_seconds=float(data.get("cpu_seconds", 0.0)),
                   open_fds=int(data.get("open_fds", 0)),
                   threads=int(data.get("threads", 0)))


def _read_status() -> tuple[int, int]:
    """(rss_bytes, threads) from ``/proc/self/status``."""
    rss = threads = 0
    with open(f"{_PROC}/status") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                rss = int(line.split()[1]) * 1024  # reported in kB
            elif line.startswith("Threads:"):
                threads = int(line.split()[1])
    return rss, threads


def _read_cpu_seconds() -> float:
    """utime+stime from ``/proc/self/stat`` in seconds."""
    with open(f"{_PROC}/stat") as handle:
        stat = handle.read()
    # comm may contain spaces/parens; fields resume after the last ')'.
    fields = stat[stat.rfind(")") + 2:].split()
    utime, stime = int(fields[11]), int(fields[12])
    return (utime + stime) / os.sysconf("SC_CLK_TCK")


def read_proc_self() -> ProcSample:
    """A snapshot of the calling process, zeros where procfs is
    unavailable."""
    try:
        rss, threads = _read_status()
    except OSError:
        rss = threads = 0
    try:
        cpu = _read_cpu_seconds()
    except (OSError, ValueError, IndexError):
        cpu = 0.0
    try:
        fds = len(os.listdir(f"{_PROC}/fd"))
    except OSError:
        fds = 0
    return ProcSample(rss_bytes=rss, cpu_seconds=cpu, open_fds=fds,
                      threads=threads)


def sample_into(registry, sample: ProcSample | None = None) -> None:
    """Publish one snapshot to the ``proc.*`` gauges."""
    if not registry.enabled:
        return
    if sample is None:
        sample = read_proc_self()
    registry.gauge(M_PROC_RSS).set(float(sample.rss_bytes))
    registry.gauge(M_PROC_CPU).set(sample.cpu_seconds)
    registry.gauge(M_PROC_FDS).set(float(sample.open_fds))
    registry.gauge(M_PROC_THREADS).set(float(sample.threads))


class ResourceSampler:
    """A background thread refreshing the ``proc.*`` gauges on an
    interval.

    Started by ``--serve-metrics`` so scrapes see live resource
    figures. The reader and the wait primitive are injectable: tests
    pass a canned reader and drive :meth:`sample_once` directly (or a
    zero interval with a bounded ``max_samples``), so sampler behaviour
    is deterministic without wall-clock sleeps.
    """

    def __init__(self, registry, interval: float = 1.0, reader=None,
                 max_samples: int | None = None) -> None:
        self._registry = registry
        self._interval = max(0.0, float(interval))
        self._reader = reader if reader is not None else read_proc_self
        self._max_samples = max_samples
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.samples_taken = 0

    def sample_once(self) -> ProcSample | None:
        """Take and publish one sample; also the loop body.

        A disabled registry makes the whole sampler inert — no read,
        no count — so a null observer never pays for /proc traffic.
        """
        if not self._registry.enabled:
            return None
        sample = self._reader()
        sample_into(self._registry, sample)
        self.samples_taken += 1
        return sample

    def _run(self) -> None:
        while not self._stop.is_set():
            self.sample_once()
            if (self._max_samples is not None
                    and self.samples_taken >= self._max_samples):
                return
            if self._stop.wait(self._interval):
                return

    def start(self) -> "ResourceSampler":
        if self._thread is None and self._registry.enabled:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="lsd-resource-sampler",
                daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# Re-exported for procpool's wire-protocol use without a metrics import.
__all__ = ["ProcSample", "read_proc_self", "sample_into",
           "ResourceSampler"]
