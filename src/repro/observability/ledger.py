"""The run ledger: append-only cross-run history with regression gates.

Every instrumented run (CLI matches, benchmark configs, CI smoke jobs)
appends one JSON line to ``.lsd/ledger.jsonl``: workload fingerprint,
config, backend/CPU metadata, stage timings, headline metric counters,
and accuracy when a gold mapping was available. That file is the
trajectory the single-shot ``BENCH_*.json`` artifacts never had —
``python -m repro ledger history`` shows it, ``diff`` compares the two
most recent comparable runs, and ``check`` gates the latest run against
a trailing baseline window, exiting nonzero on a configurable slowdown
or accuracy drop so CI can fail on regressions instead of humans
eyeballing numbers.

Entries are only comparable within the same ``(label, fingerprint)``
series: a different workload or configuration starts its own history
rather than polluting a baseline.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

from .artifacts import atomic_append_jsonl

LEDGER_SCHEMA_VERSION = 1
LEDGER_KIND = "lsd-ledger-entry"

#: Default ledger location, relative to the working directory.
DEFAULT_PATH = Path(".lsd") / "ledger.jsonl"

#: Default trailing-window size for ``check``.
DEFAULT_WINDOW = 3

#: Default gate: fail when total time exceeds baseline mean by 1.5x.
DEFAULT_MAX_SLOWDOWN = 1.5

#: Default gate: fail when accuracy drops more than 2 points.
DEFAULT_MAX_ACCURACY_DROP = 0.02


def host_info(backend: str | None = None,
              workers: int | None = None) -> dict:
    """Backend/CPU metadata that contextualizes timings."""
    info = {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
    if backend is not None:
        info["backend"] = backend
    if workers is not None:
        info["workers"] = workers
    return info


def build_entry(*, label: str, fingerprint: str, created: float,
                config: dict | None = None, host: dict | None = None,
                timings: dict | None = None,
                metrics: dict | None = None,
                accuracy: float | None = None,
                run_id: str | None = None,
                resumed_from: str | None = None) -> dict:
    """One ledger line. ``timings`` maps stage name to seconds and
    should include ``total``; ``metrics`` is a flat name->number dict
    (headline counters, not full summaries — the ledger is a
    trajectory, not an archive).

    ``run_id`` names the checkpointed attempt that produced the entry
    and ``resumed_from`` the prior attempt it picked up from. A
    resumed entry's timings cover only the stages that actually ran,
    so :func:`check_ledger` excludes it from timing comparisons.
    """
    entry = {
        "schema_version": LEDGER_SCHEMA_VERSION,
        "kind": LEDGER_KIND,
        "created": float(created),
        "label": label,
        "fingerprint": fingerprint,
        "config": dict(config or {}),
        "host": dict(host or host_info()),
        "timings": {name: float(value) for name, value in
                    (timings or {}).items()},
        "metrics": {name: value for name, value in
                    (metrics or {}).items()},
    }
    if accuracy is not None:
        entry["accuracy"] = float(accuracy)
    if run_id is not None:
        entry["run_id"] = run_id
    if resumed_from is not None:
        entry["resumed_from"] = resumed_from
    return entry


def append_entry(entry: dict, path: str | Path = DEFAULT_PATH,
                 plan=None) -> None:
    atomic_append_jsonl(path, json.dumps(entry, sort_keys=True),
                        plan=plan)


def read_ledger(path: str | Path = DEFAULT_PATH) -> list[dict]:
    path = Path(path)
    if not path.exists():
        return []
    entries = []
    for i, line in enumerate(path.read_text().splitlines()):
        if not line.strip():
            continue
        try:
            entries.append(json.loads(line))
        except ValueError as exc:
            raise ValueError(
                f"{path}:{i + 1}: malformed ledger line: {exc}"
            ) from exc
    return entries


def series_of(entries: list[dict], label: str,
              fingerprint: str) -> list[dict]:
    """The comparable subsequence: same workload, same label."""
    return [entry for entry in entries
            if entry.get("label") == label
            and entry.get("fingerprint") == fingerprint]


def _total_seconds(entry: dict) -> float | None:
    timings = entry.get("timings", {})
    if "total" in timings:
        return float(timings["total"])
    if timings:
        return float(sum(timings.values()))
    return None


# ---------------------------------------------------------------------------
# history / diff / check
# ---------------------------------------------------------------------------

def render_history(entries: list[dict], limit: int = 20) -> str:
    """A terminal table of the most recent ledger entries."""
    if not entries:
        return "ledger is empty"
    lines = [f"{'#':>3} {'label':<28} {'fingerprint':<16} "
             f"{'total_s':>9} {'accuracy':>8}  backend"]
    start = max(0, len(entries) - limit)
    for i, entry in enumerate(entries[start:], start=start):
        total = _total_seconds(entry)
        accuracy = entry.get("accuracy")
        host = entry.get("host", {})
        backend = host.get("backend", "-")
        workers = host.get("workers")
        if workers is not None:
            backend = f"{backend}x{workers}"
        lines.append(
            f"{i:>3} {entry.get('label', '?'):<28} "
            f"{entry.get('fingerprint', '?'):<16} "
            f"{total if total is not None else float('nan'):>9.3f} "
            f"{'' if accuracy is None else f'{accuracy:.3f}':>8}  "
            f"{backend}")
    return "\n".join(lines)


def diff_entries(old: dict, new: dict) -> dict:
    """Timing/metric/accuracy deltas between two comparable entries."""
    result: dict = {"label": new.get("label"),
                    "fingerprint": new.get("fingerprint"),
                    "timings": {}, "metrics": {}}
    old_timings = old.get("timings", {})
    new_timings = new.get("timings", {})
    for name in sorted(set(old_timings) | set(new_timings)):
        before = old_timings.get(name)
        after = new_timings.get(name)
        entry = {"before": before, "after": after}
        if before and after is not None:
            entry["ratio"] = after / before
        result["timings"][name] = entry
    old_metrics = old.get("metrics", {})
    new_metrics = new.get("metrics", {})
    for name in sorted(set(old_metrics) | set(new_metrics)):
        before = old_metrics.get(name)
        after = new_metrics.get(name)
        if before != after:
            result["metrics"][name] = {"before": before,
                                       "after": after}
    if "accuracy" in old or "accuracy" in new:
        result["accuracy"] = {"before": old.get("accuracy"),
                              "after": new.get("accuracy")}
    return result


def render_diff(diff: dict) -> str:
    lines = [f"diff for {diff.get('label')} "
             f"@ {diff.get('fingerprint')}"]
    for name, delta in diff.get("timings", {}).items():
        ratio = delta.get("ratio")
        suffix = f"  ({ratio:.2f}x)" if ratio is not None else ""
        lines.append(f"  timing {name}: {delta.get('before')} -> "
                     f"{delta.get('after')}{suffix}")
    for name, delta in diff.get("metrics", {}).items():
        lines.append(f"  metric {name}: {delta.get('before')} -> "
                     f"{delta.get('after')}")
    accuracy = diff.get("accuracy")
    if accuracy is not None:
        lines.append(f"  accuracy: {accuracy.get('before')} -> "
                     f"{accuracy.get('after')}")
    return "\n".join(lines)


def check_entry(entry: dict, baseline: list[dict],
                max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
                max_accuracy_drop: float = DEFAULT_MAX_ACCURACY_DROP
                ) -> list[str]:
    """Regression verdicts for ``entry`` against a baseline window.

    Compares the entry's total seconds against the baseline *mean*
    (robust to one noisy baseline run) and its accuracy against the
    baseline's best. Returns human-readable failures; empty = pass.
    """
    failures: list[str] = []
    totals = [seconds for seconds in
              (_total_seconds(candidate) for candidate in baseline)
              if seconds is not None and seconds > 0]
    current = _total_seconds(entry)
    if totals and current is not None:
        mean = sum(totals) / len(totals)
        ratio = current / mean
        if ratio > max_slowdown:
            failures.append(
                f"total {current:.3f}s is {ratio:.2f}x the baseline "
                f"mean {mean:.3f}s over {len(totals)} run(s) "
                f"(max allowed {max_slowdown:.2f}x)")
    accuracies = [candidate["accuracy"] for candidate in baseline
                  if isinstance(candidate.get("accuracy"),
                                (int, float))]
    if accuracies and isinstance(entry.get("accuracy"), (int, float)):
        best = max(accuracies)
        drop = best - entry["accuracy"]
        if drop > max_accuracy_drop:
            failures.append(
                f"accuracy {entry['accuracy']:.3f} dropped "
                f"{drop:.3f} below the baseline best {best:.3f} "
                f"(max allowed drop {max_accuracy_drop:.3f})")
    return failures


def check_ledger(path: str | Path = DEFAULT_PATH,
                 label: str | None = None,
                 window: int = DEFAULT_WINDOW,
                 max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
                 max_accuracy_drop: float = DEFAULT_MAX_ACCURACY_DROP
                 ) -> tuple[bool, str]:
    """Gate the most recent run(s) against their trailing baselines.

    For each checked series the newest entry is compared against up to
    ``window`` immediately preceding entries of the same ``(label,
    fingerprint)``. With ``label=None`` every series with at least one
    baseline entry is checked. Returns ``(ok, rendered verdicts)``.

    Entries carrying ``resumed_from`` are excluded from every series:
    a resumed run only timed the stages its checkpoint had not
    already completed, so its totals would poison baselines (and a
    fast partial run as the newest entry would sail past a gate it
    never really ran).
    """
    entries = read_ledger(path)
    if not entries:
        return True, "ledger is empty; nothing to check"
    series_keys: list[tuple[str, str]] = []
    for entry in entries:
        key = (entry.get("label"), entry.get("fingerprint"))
        if key not in series_keys:
            series_keys.append(key)
    if label is not None:
        series_keys = [key for key in series_keys if key[0] == label]
        if not series_keys:
            return True, f"no ledger entries labelled {label!r}"
    lines: list[str] = []
    ok = True
    for key in series_keys:
        full = series_of(entries, *key)
        series = [entry for entry in full
                  if entry.get("resumed_from") is None]
        resumed = len(full) - len(series)
        if not series:
            lines.append(f"{key[0]} @ {key[1]}: only resumed partial "
                         f"run(s), nothing comparable")
            continue
        if len(series) < 2:
            lines.append(f"{key[0]} @ {key[1]}: only "
                         f"{len(series)} comparable run(s)"
                         + (f" ({resumed} resumed excluded)"
                            if resumed else "")
                         + ", no baseline yet")
            continue
        baseline = series[-1 - window:-1]
        failures = check_entry(series[-1], baseline,
                               max_slowdown=max_slowdown,
                               max_accuracy_drop=max_accuracy_drop)
        if failures:
            ok = False
            lines.append(f"{key[0]} @ {key[1]}: REGRESSION")
            lines.extend(f"  {failure}" for failure in failures)
        else:
            lines.append(f"{key[0]} @ {key[1]}: ok "
                         f"(vs {len(baseline)} baseline run(s))")
    return ok, "\n".join(lines)
