"""OpenMetrics exposition: render, parse, and serve the metrics registry.

This is the seam ROADMAP item 1's matching service mounts: a
:class:`~repro.observability.metrics.MetricsRegistry` rendered in the
OpenMetrics / Prometheus text format (``# HELP`` / ``# TYPE`` comments
from the documented :data:`~repro.observability.metrics.CATALOGUE`,
escaped label values, cumulative histogram buckets with ``_sum`` /
``_count`` samples, a terminating ``# EOF``), plus:

* :func:`parse_openmetrics` — a dependency-free parser of the same
  format, used by the test suite and CI to validate what a scrape
  actually returned (no Prometheus install required);
* :class:`TelemetryServer` — a stdlib-only threaded HTTP endpoint
  exposing ``/metrics`` and ``/healthz``, started by ``--serve-metrics
  PORT`` on the ``match`` / ``train`` commands;
* ``python -m repro.observability.expo`` — ad-hoc exposition of a
  saved run report (its metric summary reconstructed into a registry),
  either printed once or served for scraping.

Metric names are sanitized for exposition (``match.instances`` becomes
``lsd_match_instances``); the registry's dotted names remain the
canonical vocabulary everywhere else.
"""

from __future__ import annotations

import argparse
import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from .metrics import (CATALOGUE, MetricsRegistry, refresh_derived_gauges)

#: Every exposed metric name is prefixed with this namespace.
PREFIX = "lsd"

#: The content type a compliant OpenMetrics scraper expects.
CONTENT_TYPE = ("application/openmetrics-text; version=1.0.0; "
                "charset=utf-8")

#: Sample-name suffixes that attach a sample to its metric family.
_SUFFIXES = ("_total", "_bucket", "_sum", "_count")


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def exposition_name(name: str) -> str:
    """The exposed (sanitized, prefixed) form of a registry name."""
    safe = "".join(ch if ch.isascii() and (ch.isalnum() or ch in "_:")
                   else "_" for ch in name)
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return f"{PREFIX}_{safe}"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (text.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def format_value(value) -> str:
    """One sample value, OpenMetrics style (``+Inf`` / ``NaN`` named)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"not a sample value: {value!r}")
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _render_labels(labels: dict[str, str],
                   le: str | None = None) -> str:
    pairs = [(key, labels[key]) for key in sorted(labels)]
    if le is not None:
        pairs.append(("le", le))
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape_label_value(str(value))}"'
                    for key, value in pairs)
    return "{" + body + "}"


def render_openmetrics(registry, labels: dict[str, str] | None = None
                       ) -> str:
    """The registry in OpenMetrics text format.

    ``labels`` (e.g. a run fingerprint) are attached to every sample.
    Derived gauges are refreshed first so ratios reflect the merged
    counters, not the last worker registry folded in. Families render
    in sorted exposed-name order, so identical registries render
    byte-identically.
    """
    refresh_derived_gauges(registry)
    labels = dict(labels or {})
    instruments = registry.instruments()
    lines: list[str] = []

    def head(name: str, exposed: str, kind: str) -> None:
        entry = CATALOGUE.get(name)
        if entry is not None and entry[1]:
            lines.append(f"# HELP {exposed} {_escape_help(entry[1])}")
        lines.append(f"# TYPE {exposed} {kind}")

    families: list[tuple[str, str, str, object]] = []
    for name, counter in instruments["counters"].items():
        families.append((exposition_name(name), name, "counter",
                         counter))
    for name, gauge in instruments["gauges"].items():
        families.append((exposition_name(name), name, "gauge", gauge))
    for name, histogram in instruments["histograms"].items():
        families.append((exposition_name(name), name, "histogram",
                         histogram))
    for exposed, name, kind, instrument in sorted(families):
        head(name, exposed, kind)
        if kind == "counter":
            lines.append(f"{exposed}_total{_render_labels(labels)} "
                         f"{format_value(instrument.value)}")
        elif kind == "gauge":
            lines.append(f"{exposed}{_render_labels(labels)} "
                         f"{format_value(float(instrument.value))}")
        else:
            cumulative = 0
            for i, bound in enumerate(instrument.bounds):
                cumulative += instrument.counts[i]
                le = format_value(float(bound))
                lines.append(
                    f"{exposed}_bucket{_render_labels(labels, le)} "
                    f"{cumulative}")
            lines.append(
                f"{exposed}_bucket"
                f"{_render_labels(labels, '+Inf')} {instrument.total}")
            lines.append(f"{exposed}_sum{_render_labels(labels)} "
                         f"{format_value(float(instrument.sum))}")
            lines.append(f"{exposed}_count{_render_labels(labels)} "
                         f"{instrument.total}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# parsing (dependency-free, for tests and CI scrapes)
# ---------------------------------------------------------------------------

def _parse_label_block(text: str, line: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.find("=", i)
        if eq < 0 or eq + 1 >= len(text) or text[eq + 1] != '"':
            raise ValueError(f"malformed labels in {line!r}")
        key = text[i:eq]
        i = eq + 2
        out: list[str] = []
        while True:
            if i >= len(text):
                raise ValueError(f"unterminated label in {line!r}")
            ch = text[i]
            if ch == "\\":
                if i + 1 >= len(text):
                    raise ValueError(f"dangling escape in {line!r}")
                out.append({"n": "\n", "\\": "\\", '"': '"'}.get(
                    text[i + 1], text[i + 1]))
                i += 2
            elif ch == '"':
                i += 1
                break
            else:
                out.append(ch)
                i += 1
        labels[key] = "".join(out)
        if i < len(text):
            if text[i] != ",":
                raise ValueError(f"malformed labels in {line!r}")
            i += 1
    return labels


def _parse_value(token: str) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    return float(token)


def _family_of(sample_name: str) -> str:
    for suffix in _SUFFIXES:
        if sample_name.endswith(suffix):
            return sample_name[:-len(suffix)]
    return sample_name


def parse_openmetrics(text: str) -> dict[str, dict]:
    """Parse an exposition into ``{family: {"type", "help",
    "samples"}}`` where ``samples`` is a list of ``(sample_name,
    labels, value)`` triples in document order.

    Validates the envelope a scraper relies on: well-formed sample and
    comment lines and a terminating ``# EOF``. Raises ``ValueError``
    otherwise.
    """
    families: dict[str, dict] = {}

    def family(name: str) -> dict:
        return families.setdefault(
            name, {"type": "untyped", "help": None, "samples": []})

    saw_eof = False
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line:
            continue
        if saw_eof:
            raise ValueError(f"content after # EOF: {line!r}")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE ") or line.startswith("# HELP "):
            _, keyword, rest = line.split(" ", 2)
            name, _, payload = rest.partition(" ")
            if keyword == "TYPE":
                family(name)["type"] = payload
            else:
                family(name)["help"] = (
                    payload.replace("\\n", "\n").replace("\\\\", "\\"))
            continue
        if line.startswith("#"):
            continue
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise ValueError(f"malformed sample line {line!r}")
            sample_name = line[:brace]
            labels = _parse_label_block(line[brace + 1:close], line)
            value_token = line[close + 1:].strip()
        else:
            sample_name, _, value_token = line.partition(" ")
            labels = {}
            value_token = value_token.strip()
        if not sample_name or not value_token:
            raise ValueError(f"malformed sample line {line!r}")
        family(_family_of(sample_name))["samples"].append(
            (sample_name, labels, _parse_value(value_token)))
    if not saw_eof:
        raise ValueError("exposition is missing the terminating # EOF")
    return families


def samples_for(families: dict[str, dict], registry_name: str
                ) -> list[tuple[str, dict, float]]:
    """The parsed samples of one registry-named metric (convenience
    for tests comparing a scrape against ``registry.summary()``)."""
    family = families.get(exposition_name(registry_name))
    return list(family["samples"]) if family else []


# ---------------------------------------------------------------------------
# HTTP endpoint
# ---------------------------------------------------------------------------

class _TelemetryHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    registry = None
    labels: dict[str, str] = {}


class _TelemetryHandler(BaseHTTPRequestHandler):
    server_version = "lsd-telemetry"

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        route = self.path.split("?", 1)[0]
        if route == "/metrics":
            body = render_openmetrics(self.server.registry,
                                      self.server.labels).encode()
            self._reply(200, CONTENT_TYPE, body)
        elif route == "/healthz":
            body = json.dumps({"status": "ok"}).encode()
            self._reply(200, "application/json", body)
        else:
            self._reply(404, "text/plain",
                        f"no route {route}\n".encode())

    def _reply(self, status: int, content_type: str,
               body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        pass  # scrapes must not spam the run's stderr


class TelemetryServer:
    """A background ``/metrics`` + ``/healthz`` endpoint over one
    registry.

    Stdlib-only and threaded: request handling reads the live registry
    (every instrument mutation is lock-guarded), so a scrape during a
    run sees a consistent point-in-time snapshot of each instrument.
    ``port=0`` binds an ephemeral port — read :attr:`port` after
    construction. Use as a context manager or call :meth:`close`.
    """

    def __init__(self, registry, host: str = "127.0.0.1",
                 port: int = 0,
                 labels: dict[str, str] | None = None) -> None:
        self._server = _TelemetryHTTPServer((host, port),
                                            _TelemetryHandler)
        self._server.registry = registry
        self._server.labels = dict(labels or {})
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="lsd-telemetry", daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------------
# ad-hoc exposition of saved run reports
# ---------------------------------------------------------------------------

def registry_from_summary(summary: dict) -> MetricsRegistry:
    """Reconstruct a registry from a ``MetricsRegistry.summary()``
    payload (as found under a run report's ``metrics`` key).

    Counters and gauges reconstruct exactly. Histogram summaries carry
    no per-bucket counts, so every observation lands in the bucket of
    the recorded mean; ``sum`` / ``count`` / ``min`` / ``max`` are then
    restored exactly, which keeps the headline samples faithful.
    """
    registry = MetricsRegistry()
    for name, value in summary.get("counters", {}).items():
        registry.counter(name).inc(int(value))
    for name, value in summary.get("gauges", {}).items():
        registry.gauge(name).set(float(value))
    for name, digest in summary.get("histograms", {}).items():
        histogram = registry.histogram(name)
        count = int(digest.get("count", 0))
        if not count:
            continue
        histogram.observe(float(digest.get("mean", 0.0)), count=count)
        with histogram._lock:
            histogram.sum = float(digest.get("sum", 0.0))
            histogram.min = float(digest.get("min", 0.0))
            histogram.max = float(digest.get("max", 0.0))
    return registry


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.observability.expo`` — expose a run report."""
    parser = argparse.ArgumentParser(
        prog="repro.observability.expo",
        description="OpenMetrics exposition of a saved LSD run report")
    parser.add_argument("--report", required=True, type=Path,
                        help="run report JSON (written by --report-out)")
    parser.add_argument("--once", action="store_true",
                        help="print the exposition to stdout and exit "
                             "instead of serving")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="port to serve on (default: ephemeral)")
    args = parser.parse_args(argv)

    try:
        report = json.loads(args.report.read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot load {args.report}: {exc}")
        return 2
    registry = registry_from_summary(report.get("metrics", {}))
    labels = {"command": str(report.get("command", "unknown"))}
    fingerprint = report.get("dataset", {}).get("fingerprint")
    if fingerprint:
        labels["fingerprint"] = str(fingerprint)

    if args.once:
        print(render_openmetrics(registry, labels), end="")
        return 0
    with TelemetryServer(registry, host=args.host, port=args.port,
                         labels=labels) as server:
        print(f"serving {args.report} at {server.url}/metrics "
              f"(healthz at /healthz); Ctrl-C to stop")
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            pass
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution
    raise SystemExit(main())
