"""Atomic run-artifact writes: temp file + ``os.replace``.

Every observability artifact the CLI emits — the run report, the span
trace, the progress-event stream, the run ledger — goes through this
module, so a run killed mid-write can never leave a truncated JSON or
JSONL file behind: the destination either keeps its previous content
or receives the complete new one in a single rename.

The ``artifact.write`` fault site fires *between* the temp-file write
and the rename — the worst possible crash instant — which is how the
fault-injection tests prove the invariant rather than assume it.
"""

from __future__ import annotations

import os
from pathlib import Path

from ..resilience.sites import SITE_ARTIFACT_WRITE


def atomic_write_text(path: str | Path, text: str, plan=None) -> None:
    """Write ``text`` to ``path`` atomically.

    The temp file lives in the destination's directory (``os.replace``
    must not cross filesystems) and is removed on any failure, so an
    interrupted write leaves neither a truncated target nor litter.
    ``plan`` (a :class:`~repro.resilience.FaultPlan`) arms the
    ``artifact.write`` site, keyed by the destination file name.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(text)
        if plan is not None:
            plan.fire(SITE_ARTIFACT_WRITE, path.name)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def atomic_append_jsonl(path: str | Path, line: str,
                        plan=None) -> None:
    """Append one line to a JSONL file atomically.

    Rewrites the whole file through :func:`atomic_write_text` (ledgers
    are small — one entry per run), so a crash mid-append preserves
    every previously recorded line intact. Creates parent directories
    on first use.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    existing = path.read_text() if path.exists() else ""
    if existing and not existing.endswith("\n"):
        existing += "\n"
    atomic_write_text(path, existing + line.rstrip("\n") + "\n",
                      plan=plan)
