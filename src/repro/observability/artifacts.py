"""Atomic run-artifact writes: temp file + fsync + ``os.replace``.

Every observability artifact the CLI emits — the run report, the span
trace, the progress-event stream, the run ledger — and every runtime
checkpoint goes through this module, so a run killed mid-write can
never leave a truncated JSON or JSONL file behind: the destination
either keeps its previous content or receives the complete new one in
a single rename.

Durability has two layers. The rename gives *atomicity* (no torn
files); the ``fsync`` on the temp file before the rename gives
*persistence* (after ``os.replace`` returns, the new content survives
power loss, not just process death). The two are separable —
``durable=False`` skips the fsync for callers whose threat model is
process death only: a SIGKILLed process loses nothing that reached the
page cache, the rename still guarantees a complete-or-absent file, and
the hot path sheds a storage round-trip per write. Checkpoints use
this mode (they validate every load and recompute on mismatch, so even
a power-loss-torn artifact only costs a redone stage); ledgers and run
reports keep the full fsync.

The ``artifact.write`` fault site fires *between* the temp-file write
and the rename — the worst possible crash instant — which is how the
fault-injection tests prove the invariant rather than assume it.
"""

from __future__ import annotations

import itertools
import os
import threading
from pathlib import Path

from ..resilience.sites import SITE_ARTIFACT_WRITE

#: Per-process temp-name disambiguator: two *threads* writing the same
#: destination must not share a temp file, or one thread's rename
#: steals (or loses) the other's bytes. PID alone is not enough.
_TMP_COUNTER = itertools.count()


def _tmp_name(path: Path) -> Path:
    return path.with_name(
        f".{path.name}.tmp.{os.getpid()}."
        f"{threading.get_ident()}.{next(_TMP_COUNTER)}")


def _publish(tmp: Path, path: Path, plan, durable: bool) -> None:
    """fsync the written temp file (when durable), fire the fault
    site, rename.

    The fsync happens *before* the fault site so an injected
    ``FaultInjected`` models a crash at the worst instant: data durable
    in the temp file but the rename never issued — the destination must
    keep its previous content. The exception propagates to the caller
    (the CLI's artifact emitter and the checkpoint writer both absorb
    it into the degradation report).
    """
    if durable:
        fd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
    if plan is not None:
        plan.fire(SITE_ARTIFACT_WRITE, path.name)
    os.replace(tmp, path)


def atomic_write_text(path: str | Path, text: str, plan=None, *,
                      durable: bool = True) -> None:
    """Write ``text`` to ``path`` atomically and durably.

    The temp file lives in the destination's directory (``os.replace``
    must not cross filesystems), is fsynced before the rename, and is
    removed on any failure — an interrupted write leaves neither a
    truncated target nor litter. ``plan`` (a
    :class:`~repro.resilience.FaultPlan`) arms the ``artifact.write``
    site, keyed by the destination file name. ``durable=False`` skips
    the fsync for process-death-only callers (module docstring).
    """
    path = Path(path)
    tmp = _tmp_name(path)
    try:
        tmp.write_text(text)
        _publish(tmp, path, plan, durable)
    finally:
        tmp.unlink(missing_ok=True)


def atomic_write_bytes(path: str | Path, data: bytes,
                       plan=None, *, durable: bool = True) -> None:
    """Binary twin of :func:`atomic_write_text` — same temp-file,
    fsync, fault-site, rename sequence. Checkpoint payloads (score
    shards) go through here."""
    path = Path(path)
    tmp = _tmp_name(path)
    try:
        tmp.write_bytes(data)
        _publish(tmp, path, plan, durable)
    finally:
        tmp.unlink(missing_ok=True)


def atomic_append_jsonl(path: str | Path, line: str,
                        plan=None) -> None:
    """Append one line to a JSONL file atomically.

    Rewrites the whole file through :func:`atomic_write_text` (ledgers
    are small — one entry per run), so a crash mid-append preserves
    every previously recorded line intact. Creates parent directories
    on first use.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    existing = path.read_text() if path.exists() else ""
    if existing and not existing.endswith("\n"):
        existing += "\n"
    atomic_write_text(path, existing + line.rstrip("\n") + "\n",
                      plan=plan)
