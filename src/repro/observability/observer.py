"""The :class:`Observer`: one handle bundling all observability sinks.

Pipelines take a single optional ``observer`` argument instead of
separate tracer/metrics/quality parameters. A disabled observer (the
default, :data:`NO_OP`) carries the null tracer and null registry, so
instrumentation hooks compile down to no-op calls — the microbenchmark
in ``benchmarks/test_observability_overhead.py`` pins that overhead
below 3% of a matching run.
"""

from __future__ import annotations

from .events import NULL_EVENTS, EventStream, NullEventStream
from .metrics import NULL_METRICS, MetricsRegistry, NullMetricsRegistry
from .trace import NULL_TRACE, NullTraceCollector, TraceCollector


class Observer:
    """Tracing + metrics + quality collection for one run.

    ``Observer.full()`` builds one with everything on; the zero-argument
    constructor builds a fully disabled observer (equal in behaviour to
    :data:`NO_OP`). The progress-event stream (``events``) defaults to
    disabled even in ``full()`` — it narrates to a file, so the CLI
    attaches a live :class:`EventStream` only when ``--events-out`` is
    given.
    """

    __slots__ = ("trace", "metrics", "collect_quality", "events")

    def __init__(self,
                 trace: TraceCollector | NullTraceCollector | None = None,
                 metrics: MetricsRegistry | NullMetricsRegistry | None
                 = None,
                 collect_quality: bool = False,
                 events: EventStream | NullEventStream | None = None
                 ) -> None:
        self.trace = trace if trace is not None else NULL_TRACE
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.collect_quality = collect_quality
        self.events = events if events is not None else NULL_EVENTS

    @classmethod
    def full(cls, events: EventStream | None = None) -> "Observer":
        """An observer with tracing, metrics and quality all enabled."""
        return cls(TraceCollector(), MetricsRegistry(),
                   collect_quality=True, events=events)

    @property
    def enabled(self) -> bool:
        return (self.trace.enabled or self.metrics.enabled
                or self.collect_quality or self.events.enabled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [
            "trace" if self.trace.enabled else "",
            "metrics" if self.metrics.enabled else "",
            "quality" if self.collect_quality else "",
            "events" if self.events.enabled else "",
        ]
        on = ",".join(part for part in parts if part) or "disabled"
        return f"<Observer {on}>"


#: The shared disabled observer — the default everywhere an observer is
#: optional, so un-instrumented call sites keep their exact behaviour.
NO_OP = Observer()


def resolve(observer: Observer | None) -> Observer:
    """``observer`` or the disabled default."""
    return observer if observer is not None else NO_OP
