"""Run reports: one JSON artifact bundling everything about a run.

A run report answers "what happened in *this* run" after the fact: the
configuration used, a fingerprint of the input dataset, per-stage
timings and counters, metric summaries (histogram percentiles
included), the per-column quality records, and the final mapping. The
CLI writes one per ``match`` invocation via ``--report-out``; CI
validates it against the checked-in ``report_schema.json``.

The schema validator here implements the small JSON-Schema subset the
report schema uses (``type``, ``required``, ``properties``,
``additionalProperties``, ``items``, ``enum``, ``minimum``) so the
check needs no third-party dependency.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Sequence

from .artifacts import atomic_write_text
from .metrics import refresh_derived_gauges

REPORT_SCHEMA_VERSION = 1
REPORT_KIND = "lsd-run-report"
SCHEMA_PATH = Path(__file__).with_name("report_schema.json")


# ---------------------------------------------------------------------------
# building
# ---------------------------------------------------------------------------

def dataset_fingerprint(tags: Sequence[str],
                        texts: Sequence[str] = ()) -> str:
    """A stable hex digest of a dataset: its sorted tag set plus the
    text payload. Identical inputs fingerprint identically regardless
    of worker counts or orderings."""
    digest = hashlib.sha256()
    for tag in sorted(tags):
        digest.update(tag.encode())
        digest.update(b"\x00")
    digest.update(str(len(texts)).encode())
    for text in texts:
        digest.update(b"\x01")
        digest.update(text.encode())
    return digest.hexdigest()[:16]


def build_match_report(*, config: dict, dataset: dict, result,
                       observer=None, created: float | None = None
                       ) -> dict:
    """Assemble the report dict for one matching run.

    ``result`` is a :class:`~repro.core.matching.MatchResult` (only its
    ``profile``, ``quality``, ``mapping`` and ``degradation``
    attributes are touched, so tests can pass any stand-in).
    ``observer`` contributes the metrics summary when it carries an
    enabled registry. A ``degradation`` section appears only when the
    run actually degraded (quarantines, salvaged listings, retries,
    anytime exits…), so a clean run's report is byte-identical to one
    produced without any resilience policy.
    """
    metrics = {"counters": {}, "gauges": {}, "histograms": {}}
    if observer is not None and observer.metrics.enabled:
        # Gauge merges are last-writer-wins; recompute derived gauges
        # (cache hit ratio) from the merged counters before reporting.
        refresh_derived_gauges(observer.metrics)
        metrics = observer.metrics.summary()
    report = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "kind": REPORT_KIND,
        "command": "match",
        "created": time.time() if created is None else created,
        "config": dict(config),
        "dataset": dict(dataset),
        "stages": result.profile.as_dict(),
        "metrics": metrics,
        "quality": [record.as_dict() for record in result.quality],
        "mapping": {tag: label for tag, label in
                    sorted(result.mapping.items())},
    }
    degradation = getattr(result, "degradation", None)
    if degradation is not None and degradation.degraded:
        report["degradation"] = degradation.as_dict()
    return report


def write_report(report: dict, path: str | Path, plan=None) -> None:
    atomic_write_text(path,
                      json.dumps(report, indent=2, sort_keys=True)
                      + "\n", plan=plan)


def load_report(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


# ---------------------------------------------------------------------------
# human-readable rendering
# ---------------------------------------------------------------------------

def render_text(report: dict) -> str:
    """A terminal-friendly rendering of a run report."""
    lines = [f"run report (schema v{report['schema_version']}, "
             f"command={report['command']})"]
    dataset = report.get("dataset", {})
    lines.append(
        f"dataset {dataset.get('fingerprint', '?')}: "
        f"{dataset.get('tags', '?')} tags, "
        f"{dataset.get('instances', '?')} instances")
    config = report.get("config", {})
    if config:
        rendered = ", ".join(f"{key}={value}" for key, value in
                             sorted(config.items()))
        lines.append(f"config: {rendered}")

    degradation = report.get("degradation")
    if degradation:
        parts = []
        quarantined = degradation.get("quarantined", [])
        if quarantined:
            names = sorted({event["learner"] for event in quarantined})
            parts.append(f"quarantined learners: {', '.join(names)}")
        ingestion = degradation.get("ingestion")
        if ingestion:
            listings = ingestion.get("listings", {})
            parts.append(
                f"listings recovered={len(listings.get('recovered', []))}"
                f" dropped={len(listings.get('dropped', []))}")
        if degradation.get("retries"):
            parts.append(f"task retries: {len(degradation['retries'])}")
        if degradation.get("pool_failures"):
            parts.append("pool fell back to serial: "
                         + ", ".join(degradation["pool_failures"]))
        if degradation.get("anytime"):
            parts.append("anytime search exit")
        if degradation.get("fired_faults"):
            parts.append(
                f"injected faults: {len(degradation['fired_faults'])}")
        lines.append("DEGRADED RUN: " + "; ".join(parts))

    quality = {record["tag"]: record
               for record in report.get("quality", [])}
    lines.append("")
    lines.append(f"{'tag':<20} {'assigned':<16} {'margin':>7} "
                 f"{'agree':>6}  flags")
    for tag, label in sorted(report.get("mapping", {}).items()):
        record = quality.get(tag)
        if record is None:
            lines.append(f"{tag:<20} {label:<16}")
            continue
        flags = "OVERRIDE" if record["constraint_override"] else ""
        lines.append(
            f"{tag:<20} {label:<16} {record['margin']:>7.3f} "
            f"{record['agreement']:>6.2f}  {flags}")

    histograms = report.get("metrics", {}).get("histograms", {})
    if histograms:
        lines.append("")
        for name, summary in sorted(histograms.items()):
            lines.append(
                f"{name}: n={summary['count']} "
                f"p50={summary['p50']:.3g} p90={summary['p90']:.3g} "
                f"p99={summary['p99']:.3g}")
    timings = report.get("stages", {}).get("timings", {})
    top_level = {path: seconds for path, seconds in timings.items()
                 if "." not in path}
    if top_level:
        lines.append("")
        lines.append("stage seconds: " + ", ".join(
            f"{path}={seconds:.3f}" for path, seconds in
            sorted(top_level.items(), key=lambda kv: -kv[1])))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# schema validation (dependency-free subset of JSON Schema)
# ---------------------------------------------------------------------------

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def load_schema() -> dict:
    return json.loads(SCHEMA_PATH.read_text())


def validate_report(report: dict, schema: dict | None = None
                    ) -> list[str]:
    """All schema violations (empty list = valid)."""
    if schema is None:
        schema = load_schema()
    errors: list[str] = []
    _validate(report, schema, "$", errors)
    return errors


def validate_file(path: str | Path) -> dict:
    """Load and validate a report file; raises ``ValueError`` listing
    every violation. Returns the report on success."""
    report = load_report(path)
    errors = validate_report(report)
    if errors:
        raise ValueError(
            f"{path}: report does not match schema:\n  "
            + "\n  ".join(errors))
    return report


def _validate(value, schema: dict, path: str,
              errors: list[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        python_type = _TYPES[expected]
        ok = isinstance(value, python_type)
        # bool is an int subclass; keep integer/number strict.
        if ok and expected in ("integer", "number") \
                and isinstance(value, bool):
            ok = False
        if not ok:
            errors.append(f"{path}: expected {expected}, "
                          f"got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) \
            and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, item in value.items():
            if key in properties:
                _validate(item, properties[key], f"{path}.{key}",
                          errors)
            elif isinstance(additional, dict):
                _validate(item, additional, f"{path}.{key}", errors)
            elif additional is False:
                errors.append(f"{path}: unexpected key {key!r}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _validate(item, schema["items"], f"{path}[{i}]", errors)
