"""Structured progress events: a streaming JSONL narration of a run.

``--events-out events.jsonl`` turns this on. Where the span trace is a
post-hoc tree for profiling, the event stream is a *live* flat feed a
supervisor can tail: run start/end, stage boundaries with elapsed time
and throughput, per-shard completion heartbeats derived from the task
grid, and degradation notices when resilience machinery changes the
run's behaviour.

Events are schema-validated (``events_schema.json``, same
dependency-free validator as the run report) and named by the ``EV_*``
constants in :data:`EVENT_CATALOGUE`; the ``event-catalogue`` lint rule
keeps emissions and catalogue in two-way agreement, exactly like the
metric and fault-site catalogues.

Lines stream to ``<path>.tmp`` as they happen (so a tail sees progress
mid-run) and the finished stream lands at ``path`` via one atomic
rename on :meth:`EventStream.close` — a killed run never leaves a
truncated final artifact, and the ``.tmp`` suffix marks a partial feed
unambiguously.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from .artifacts import atomic_write_text

EV_RUN_START = "run_start"
EV_RUN_END = "run_end"
EV_STAGE_START = "stage_start"
EV_STAGE_END = "stage_end"
EV_SHARD_COMPLETE = "shard_complete"
EV_DEGRADATION = "degradation"
EV_CHECKPOINT = "checkpoint"
EV_RESUME = "resume"

#: kind -> description; the documented progress-event vocabulary.
EVENT_CATALOGUE: dict[str, str] = {
    EV_RUN_START:
        "A command began; payload carries the command name and config.",
    EV_RUN_END:
        "The command finished; payload carries elapsed seconds and an "
        "ok flag.",
    EV_STAGE_START:
        "A pipeline stage (match, extract, predict, constrain, build, "
        "fit, cv...) began; payload names the stage.",
    EV_STAGE_END:
        "A pipeline stage finished; payload carries elapsed seconds "
        "and, when countable, items and items/sec.",
    EV_SHARD_COMPLETE:
        "One parallel shard of a stage finished; payload carries the "
        "shard label, index, shard count, and row count.",
    EV_DEGRADATION:
        "Resilience machinery changed the run (quarantine, pool "
        "fallback, anytime exit, salvage); payload describes how.",
    EV_CHECKPOINT:
        "A checkpoint was opened (stage 'open', payload carries the "
        "run id) or a pipeline stage's checkpoint was committed to "
        "disk; payload names the stage.",
    EV_RESUME:
        "A pipeline stage was skipped because --resume found its "
        "checkpoint; payload names the stage.",
}


class EventStream:
    """An append-only, schema-shaped progress feed.

    :meth:`emit` assigns a monotonically increasing ``seq`` and stamps
    the configured clock. With a path, each event is written and
    flushed immediately to ``<path>.tmp``; :meth:`close` renames the
    finished feed into place atomically. Without a path, events
    accumulate in memory only (:attr:`events`), which is how the
    pipelines stay observable in tests without touching disk.
    """

    enabled = True

    def __init__(self, path: str | Path | None = None,
                 clock=time.time) -> None:
        self.path = Path(path) if path is not None else None
        self.events: list[dict] = []
        self._clock = clock
        self._seq = 0
        self._handle = None
        #: Optional ``(kind, event)`` tap invoked on every emission —
        #: the runtime supervisor registers its heartbeat intake here.
        self.listener = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self._tmp_path, "w")

    @property
    def _tmp_path(self) -> Path:
        return self.path.with_name(self.path.name + ".tmp")

    def emit(self, kind: str, **payload) -> dict:
        if kind not in EVENT_CATALOGUE:
            raise ValueError(f"unknown event kind: {kind!r}")
        self._seq += 1
        event = {"seq": self._seq, "kind": kind,
                 "ts": float(self._clock()), **payload}
        self.events.append(event)
        if self._handle is not None:
            self._handle.write(json.dumps(event, sort_keys=True) + "\n")
            self._handle.flush()
        if self.listener is not None:
            self.listener(kind, event)
        return event

    def close(self, plan=None) -> None:
        """Finish the stream: flush, then atomically publish ``path``."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            text = self._tmp_path.read_text()
            atomic_write_text(self.path, text, plan=plan)
            self._tmp_path.unlink(missing_ok=True)

    def __enter__(self) -> "EventStream":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullEventStream:
    """The disabled stream: one no-op shared everywhere."""

    enabled = False
    events: list = []
    path = None
    listener = None

    def emit(self, kind: str, **payload) -> dict:
        return {}

    def close(self, plan=None) -> None:
        pass

    def __enter__(self) -> "NullEventStream":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: The shared disabled event stream.
NULL_EVENTS = NullEventStream()

#: Schema for one event line, enforced by ``validate_events``.
SCHEMA_PATH = Path(__file__).with_name("events_schema.json")


def load_schema() -> dict:
    return json.loads(SCHEMA_PATH.read_text())


def read_events(path: str | Path) -> list[dict]:
    """Load a finished (or still-streaming ``.tmp``) event feed."""
    lines = Path(path).read_text().splitlines()
    return [json.loads(line) for line in lines if line.strip()]


def validate_events(events: list[dict]) -> list[str]:
    """Schema-check an event feed; returns problems, empty when valid.

    Beyond per-line schema validation, checks the stream invariants a
    consumer relies on: ``seq`` strictly increasing from 1 and
    timestamps non-decreasing.
    """
    from .report import _validate

    schema = load_schema()
    problems: list[str] = []
    for i, event in enumerate(events):
        errors: list[str] = []
        _validate(event, schema, f"event[{i}]", errors)
        problems.extend(errors)
    for i, event in enumerate(events):
        if event.get("seq") != i + 1:
            problems.append(
                f"event {i}: seq {event.get('seq')!r} != {i + 1}")
    timestamps = [event.get("ts") for event in events
                  if isinstance(event.get("ts"), (int, float))]
    if any(b < a for a, b in zip(timestamps, timestamps[1:])):
        problems.append("timestamps are not non-decreasing")
    return problems


def validate_file(path: str | Path) -> list[str]:
    return validate_events(read_events(path))
