"""Hierarchical tracing: spans with deterministic ids, exported as JSONL.

A :class:`TraceCollector` records one tree of :class:`Span` records per
run. Spans carry wall-clock start/end timestamps and free-form
attributes; parenthood is tracked per thread (a span opened inside
another span on the same thread becomes its child), and fan-out across
:class:`~repro.core.parallel.ParallelExecutor` workers passes the parent
explicitly, so worker-side spans merge into the same tree.

Span ids are *path strings* derived from the span's position in the
tree — ``match/predict/learner.whirl`` — with a ``#n`` suffix for
repeat occurrences of the same name under the same parent. Ids are
therefore a function of tree structure alone: a run at ``--workers 4``
produces exactly the same id set as ``--workers 1`` (only the recorded
timings differ), which is what lets tests and tooling diff traces
across configurations. The one caveat: two spans with the *same* name
under the *same* parent started concurrently race for their ``#n``
suffixes; the pipelines give concurrent siblings distinct names
(learner names, fold indices) so the race never bites in practice.

:data:`NULL_TRACE` is the shared no-op collector — ``span()`` returns a
reusable empty context manager, so instrumented code pays a dictionary
lookup and nothing else when tracing is off.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator


@dataclass
class Span:
    """One timed operation in the trace tree."""

    name: str
    span_id: str
    parent_id: str | None
    start: float = 0.0          # epoch seconds
    elapsed: float = 0.0        # wall-clock duration in seconds
    attributes: dict = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.elapsed

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "elapsed": self.elapsed,
            "attributes": dict(self.attributes),
        }


class _ActiveSpan:
    """Context manager recording one span into its collector."""

    __slots__ = ("_collector", "span", "_t0")

    def __init__(self, collector: "TraceCollector", span: Span) -> None:
        self._collector = collector
        self.span = span
        self._t0 = 0.0

    @property
    def span_id(self) -> str:
        return self.span.span_id

    def set_attribute(self, key: str, value) -> None:
        self.span.attributes[key] = value

    def __enter__(self) -> "_ActiveSpan":
        self.span.start = time.time()
        self._t0 = time.perf_counter()
        self._collector._push(self.span)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.span.elapsed = time.perf_counter() - self._t0
        if exc_type is not None:
            self.span.attributes.setdefault("error", exc_type.__name__)
        self._collector._pop(self.span)


class TraceCollector:
    """Thread-safe collector of one span tree.

    All threads record into the same collector; each thread keeps its
    own stack of open spans for implicit parenthood, and a span opened
    on a worker thread names its parent explicitly (``parent=...``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._local = threading.local()
        # (parent_id, name) -> number of spans already created there;
        # drives the deterministic ``#n`` id suffix.
        self._occurrences: dict[tuple[str | None, str], int] = {}

    @property
    def enabled(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, parent: str | None = None,
             **attributes) -> _ActiveSpan:
        """Open a span (use as a context manager).

        ``parent`` overrides the implicit thread-local parent — pass the
        ``span_id`` captured before a ``ParallelExecutor`` fan-out so
        worker-side spans attach to the right node of the tree.
        """
        if parent is None:
            stack = getattr(self._local, "stack", None)
            parent = stack[-1] if stack else None
        if "/" in name or "#" in name:
            raise ValueError(
                f"span name {name!r} may not contain '/' or '#'")
        with self._lock:
            key = (parent, name)
            n = self._occurrences.get(key, 0)
            self._occurrences[key] = n + 1
        suffix = f"#{n}" if n else ""
        span_id = f"{parent}/{name}{suffix}" if parent else \
            f"{name}{suffix}"
        return _ActiveSpan(
            self, Span(name, span_id, parent, attributes=attributes))

    def emit(self, name: str, parent: str | None = None,
             start: float = 0.0, elapsed: float = 0.0,
             attributes: dict | None = None) -> str:
        """Record one already-finished span and return its id.

        The process execution backend measures spans inside worker
        processes and replays them here (in submission order), so the
        id allocation runs through exactly the same occurrence counters
        as :meth:`span` — a process-backend trace is structurally
        byte-identical to the thread/serial one. ``parent`` is never
        implicit: a replayed span belongs to the fan-out's parent, not
        to whatever the replaying thread happens to have open.
        """
        if "/" in name or "#" in name:
            raise ValueError(
                f"span name {name!r} may not contain '/' or '#'")
        with self._lock:
            key = (parent, name)
            n = self._occurrences.get(key, 0)
            self._occurrences[key] = n + 1
        suffix = f"#{n}" if n else ""
        span_id = f"{parent}/{name}{suffix}" if parent else \
            f"{name}{suffix}"
        span = Span(name, span_id, parent, start, elapsed,
                    dict(attributes or {}))
        with self._lock:
            self._spans.append(span)
        return span_id

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span.span_id)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] == span.span_id:
            stack.pop()
        with self._lock:
            self._spans.append(span)

    # ------------------------------------------------------------------
    # reading / export
    # ------------------------------------------------------------------
    @property
    def spans(self) -> list[Span]:
        """Snapshot of all *finished* spans, sorted by id (so the order
        is deterministic regardless of thread scheduling)."""
        with self._lock:
            return sorted(self._spans, key=lambda s: s.span_id)

    def roots(self) -> list[Span]:
        return [span for span in self.spans if span.parent_id is None]

    def children_of(self, span_id: str) -> list[Span]:
        return [span for span in self.spans if span.parent_id == span_id]

    def to_jsonl(self) -> str:
        """One JSON object per line, one line per span."""
        return "\n".join(
            json.dumps(span.as_dict(), sort_keys=True)
            for span in self.spans)

    def write_jsonl(self, path: str | Path, plan=None) -> None:
        from .artifacts import atomic_write_text

        text = self.to_jsonl()
        atomic_write_text(path, text + "\n" if text else "",
                          plan=plan)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceCollector {len(self)} spans>"


def read_jsonl(path: str | Path) -> list[Span]:
    """Load spans written by :meth:`TraceCollector.write_jsonl`."""
    spans = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        data = json.loads(line)
        spans.append(Span(data["name"], data["span_id"],
                          data["parent_id"], data["start"],
                          data["elapsed"], data.get("attributes", {})))
    return spans


class _NullSpan:
    """Reusable no-op context manager; ``span_id`` is always None."""

    __slots__ = ()
    span_id = None

    def set_attribute(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTraceCollector:
    """The disabled collector: every operation is a no-op."""

    enabled = False
    spans: list[Span] = []

    def span(self, name: str, parent: str | None = None,
             **attributes) -> _NullSpan:
        return _NULL_SPAN

    def emit(self, name: str, parent: str | None = None,
             start: float = 0.0, elapsed: float = 0.0,
             attributes: dict | None = None) -> None:
        return None

    def roots(self) -> list[Span]:
        return []

    def children_of(self, span_id: str) -> list[Span]:
        return []

    def to_jsonl(self) -> str:
        return ""

    def write_jsonl(self, path: str | Path, plan=None) -> None:
        from .artifacts import atomic_write_text

        atomic_write_text(path, "", plan=plan)

    def __len__(self) -> int:
        return 0


#: The shared disabled collector (default wherever tracing is optional).
NULL_TRACE = NullTraceCollector()


def iter_tree(spans: list[Span], root: Span) -> Iterator[Span]:
    """Depth-first traversal of ``root``'s subtree within ``spans``."""
    by_parent: dict[str | None, list[Span]] = {}
    for span in spans:
        by_parent.setdefault(span.parent_id, []).append(span)
    stack = [root]
    while stack:
        span = stack.pop()
        yield span
        stack.extend(reversed(by_parent.get(span.span_id, [])))
