"""Metrics registry: named counters, gauges, and fixed-bucket histograms.

The registry replaces the pipelines' ad-hoc counter dicts with named,
typed instruments:

* :class:`Counter` — monotonically increasing integer (events, items);
* :class:`Gauge` — a point-in-time float (a ratio, a size);
* :class:`Histogram` — fixed upper-bound buckets with a total sum and
  observed min/max, summarised as p50/p90/p99 via linear interpolation
  inside the bucket holding the target rank (clamped to the observed
  min/max, so a histogram fed one repeated value reports that value
  exactly at every percentile).

Instruments are get-or-created by name, every mutation is lock-guarded,
and :meth:`MetricsRegistry.merge` folds a worker's registry into the
main one (bucket-by-bucket for histograms), which is how per-worker
measurements aggregate deterministically after a
:class:`~repro.core.parallel.ParallelExecutor` fan-out.

The metric name catalogue used by the pipelines is declared here
(``M_*`` constants + :data:`CATALOGUE`) so reports, docs and dashboards
share one vocabulary.

:data:`NULL_METRICS` is the disabled registry: it hands out shared
no-op instruments, so instrumented code costs one attribute call when
metrics are off.
"""

from __future__ import annotations

import threading
from typing import Sequence

# ---------------------------------------------------------------------------
# metric name catalogue
# ---------------------------------------------------------------------------

M_INSTANCES = "match.instances"
M_TAGS = "match.tags"
M_COLUMN_SIZE = "match.column_size"
M_PREDICT_LATENCY = "predict.instance_latency_seconds"
M_STRUCTURE_PASSES = "predict.structure_passes"
M_STRUCTURE_REPREDICTED = "predict.structure_repredicted"
M_CACHE_HITS = "featurize.cache_hits"
M_CACHE_MISSES = "featurize.cache_misses"
M_CACHE_HIT_RATIO = "featurize.cache_hit_ratio"
M_CONSTRAINT_NODES = "constraint.nodes_expanded"
M_CONSTRAINT_PRUNE_BOUND = "constraint.prune_bound"
M_CONSTRAINT_PRUNE_HARD = "constraint.prune_hard"
M_CONSTRAINT_PRUNE_SOFT = "constraint.prune_soft_bound"
M_CONSTRAINT_LEAF_REJECTS = "constraint.leaf_hard_rejects"
M_CV_TASKS = "train.cv_tasks"
M_TRAIN_INSTANCES = "train.instances"
M_LEARNERS_QUARANTINED = "resilience.learners_quarantined"
M_LISTINGS_RECOVERED = "resilience.listings_recovered"
M_LISTINGS_DROPPED = "resilience.listings_dropped"
M_TASK_RETRIES = "resilience.task_retries"
M_POOL_FAILURES = "resilience.pool_failures"
M_ANYTIME_EXITS = "resilience.anytime_exits"
M_FAULTS_FIRED = "resilience.faults_fired"
M_PROC_RSS = "proc.rss_bytes"
M_PROC_CPU = "proc.cpu_seconds"
M_PROC_FDS = "proc.open_fds"
M_PROC_THREADS = "proc.threads"
M_POOL_WORKERS = "pool.workers"
M_POOL_SHM_BYTES = "pool.shm_bytes"
M_POOL_WORKER_RSS = "pool.worker_rss_bytes"
M_POOL_WORKER_CPU = "pool.worker_cpu_seconds"
M_POOL_QUEUE_DEPTH = "pool.queue_depth"
M_POOL_QUEUE_WAIT = "pool.queue_wait_seconds"
M_POOL_SHIP_SKIPS = "pool.batch_ship_skips"
M_POOL_TASKS = "pool.tasks_dispatched"
M_CKPT_WRITES = "runtime.checkpoint.writes"
M_CKPT_STAGES_RESUMED = "runtime.checkpoint.stages_resumed"
M_WATCHDOG_KILLS = "runtime.watchdog.kills"
M_WATCHDOG_STALLS = "runtime.watchdog.stalls"
M_PRESSURE_LEVEL = "runtime.pressure.level"
M_PRESSURE_ACTIONS = "runtime.pressure.actions"

#: name -> (kind, description); the documented metric vocabulary.
CATALOGUE: dict[str, tuple[str, str]] = {
    M_INSTANCES: ("counter", "instances extracted for matching"),
    M_TAGS: ("counter", "source tags matched"),
    M_COLUMN_SIZE: ("histogram", "instances per extracted column"),
    M_PREDICT_LATENCY: (
        "histogram",
        "per-instance base-learner prediction latency (seconds)"),
    M_STRUCTURE_PASSES: ("counter", "structure re-prediction passes run"),
    M_STRUCTURE_REPREDICTED: (
        "counter", "instances re-predicted by structure passes"),
    M_CACHE_HITS: ("counter", "featurize cache hits during the run"),
    M_CACHE_MISSES: ("counter", "featurize cache misses during the run"),
    M_CACHE_HIT_RATIO: ("gauge", "featurize cache hit ratio of the run"),
    M_CONSTRAINT_NODES: ("counter", "constraint-search nodes expanded"),
    M_CONSTRAINT_PRUNE_BOUND: (
        "counter", "constraint-search subtrees cut by the score bound"),
    M_CONSTRAINT_PRUNE_HARD: (
        "counter", "constraint-search pushes rejected by hard constraints"),
    M_CONSTRAINT_PRUNE_SOFT: (
        "counter", "constraint-search subtrees cut by the soft bound"),
    M_CONSTRAINT_LEAF_REJECTS: (
        "counter", "complete assignments rejected at leaves"),
    M_CV_TASKS: ("counter", "(learner x fold) cross-validation tasks"),
    M_TRAIN_INSTANCES: ("counter", "training instances extracted"),
    M_LEARNERS_QUARANTINED: (
        "counter", "base learners quarantined during the run"),
    M_LISTINGS_RECOVERED: (
        "counter", "malformed listings repaired by lenient ingestion"),
    M_LISTINGS_DROPPED: (
        "counter", "listings dropped by salvage/lenient ingestion"),
    M_TASK_RETRIES: (
        "counter", "executor tasks that consumed retry attempts"),
    M_POOL_FAILURES: (
        "counter", "worker-pool failures that forced serial fallback"),
    M_ANYTIME_EXITS: (
        "counter", "constraint searches ended early by the deadline"),
    M_FAULTS_FIRED: (
        "counter", "injected faults fired by the active fault plan"),
    M_PROC_RSS: ("gauge", "resident set size of this process (bytes)"),
    M_PROC_CPU: (
        "gauge", "cumulative user+system CPU time of this process "
                 "(seconds)"),
    M_PROC_FDS: ("gauge", "open file descriptors of this process"),
    M_PROC_THREADS: ("gauge", "live threads of this process"),
    M_POOL_WORKERS: ("gauge", "live worker processes in the pool"),
    M_POOL_SHM_BYTES: (
        "gauge", "bytes of the pool's shared-memory model segment"),
    M_POOL_WORKER_RSS: (
        "histogram", "per-worker resident set size sampled at map end "
                     "(bytes)"),
    M_POOL_WORKER_CPU: (
        "histogram", "per-worker cumulative CPU time sampled at map "
                     "end (seconds)"),
    M_POOL_QUEUE_DEPTH: (
        "gauge", "tasks still queued after the first dispatch round"),
    M_POOL_QUEUE_WAIT: (
        "histogram", "seconds a task waited between enqueue and "
                     "dispatch"),
    M_POOL_SHIP_SKIPS: (
        "counter", "batch broadcasts skipped by the content-addressed "
                   "ship cache"),
    M_POOL_TASKS: (
        "counter", "tasks dispatched to worker processes"),
    M_CKPT_WRITES: (
        "counter", "checkpoint artifacts committed to disk"),
    M_CKPT_STAGES_RESUMED: (
        "counter", "pipeline stages skipped by --resume"),
    M_WATCHDOG_KILLS: (
        "counter", "hung workers killed by the supervisor"),
    M_WATCHDOG_STALLS: (
        "counter", "pipeline stalls that tripped the run deadline"),
    M_PRESSURE_LEVEL: (
        "gauge", "current memory-pressure tier (0 = nominal)"),
    M_PRESSURE_ACTIONS: (
        "counter", "memory-pressure guardrail actions taken"),
}


def exponential_buckets(start: float, factor: float,
                        count: int) -> tuple[float, ...]:
    """``count`` geometric upper bounds beginning at ``start``."""
    if start <= 0.0 or factor <= 1.0 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    bounds = []
    bound = start
    for _ in range(count):
        bounds.append(bound)
        bound *= factor
    return tuple(bounds)


#: 1µs .. ~4s in x4 steps — spans fast numeric learners to slow WHIRL
#: columns without more than 12 buckets.
LATENCY_BUCKETS = exponential_buckets(1e-6, 4.0, 12)

#: Column sizes: most sources cap columns at max_instances_per_tag.
SIZE_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
                1000.0)

#: 1MiB .. 8GiB in x2 steps — worker RSS and shared-segment sizes.
BYTE_BUCKETS = exponential_buckets(float(1 << 20), 2.0, 14)

#: 1ms .. ~1h in x4 steps — cumulative per-worker CPU time.
CPU_BUCKETS = exponential_buckets(1e-3, 4.0, 12)


# ---------------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------------

class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def merge(self, other: "Counter") -> None:
        self.inc(other.value)

    def as_dict(self) -> int:
        return self.value


class Gauge:
    """A point-in-time float metric; ``merge`` keeps the merged-in
    value when the other gauge was ever set (submission-order merges
    therefore behave like "last writer wins")."""

    __slots__ = ("name", "value", "is_set", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.is_set = False
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)
            self.is_set = True

    def merge(self, other: "Gauge") -> None:
        if other.is_set:
            self.set(other.value)

    def as_dict(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram with interpolated percentile summaries.

    ``bounds`` are inclusive upper bounds; one overflow bucket catches
    values above the last bound. ``observe(value, count=n)`` records a
    value ``n`` times in O(buckets) — the pipelines use it to turn one
    timed batch into per-instance observations without timing each
    instance individually.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum",
                 "min", "max", "_lock")

    def __init__(self, name: str,
                 bounds: Sequence[float] = LATENCY_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                "histogram bounds must be strictly increasing")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float, count: int = 1) -> None:
        if count <= 0:
            return
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self.counts[index] += count
            self.total += count
            self.sum += value * count
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    # ------------------------------------------------------------------
    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100), linearly interpolated inside
        the bucket holding the target rank and clamped to the observed
        min/max — so bucket-edge and single-value cases are exact."""
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> float:
        if self.total == 0:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 100.0:
            return self.max
        target = q / 100.0 * self.total
        cumulative = 0
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            if cumulative + count >= target:
                lower = self.bounds[i - 1] if i > 0 else self.min
                upper = self.bounds[i] if i < len(self.bounds) else \
                    self.max
                lower = max(lower, self.min)
                upper = min(upper, self.max)
                if upper < lower:
                    upper = lower
                fraction = (target - cumulative) / count
                return lower + (upper - lower) * fraction
            cumulative += count
        return self.max  # pragma: no cover - unreachable (total > 0)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r}: bucket bounds "
                f"differ")
        with self._lock:
            for i, count in enumerate(other.counts):
                self.counts[i] += count
            self.total += other.total
            self.sum += other.sum
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def summary(self) -> dict:
        """JSON-ready summary with the p50/p90/p99 headline numbers."""
        with self._lock:
            empty = self.total == 0
            return {
                "count": self.total,
                "sum": self.sum,
                "mean": self.sum / self.total if self.total else 0.0,
                "min": 0.0 if empty else self.min,
                "max": 0.0 if empty else self.max,
                "p50": self._percentile_locked(50.0),
                "p90": self._percentile_locked(90.0),
                "p99": self._percentile_locked(99.0),
            }

    def as_dict(self) -> dict:
        data = self.summary()
        data["buckets"] = {
            **{repr(bound): self.counts[i]
               for i, bound in enumerate(self.bounds)},
            "+inf": self.counts[-1],
        }
        return data


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

class MetricsRegistry:
    """Named instruments, get-or-created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    @property
    def enabled(self) -> bool:
        return True

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str,
                  bounds: Sequence[float] | None = None) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, bounds if bounds is not None
                    else LATENCY_BUCKETS)
            return instrument

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one."""
        for name, counter in other._snapshot("_counters").items():
            self.counter(name).merge(counter)
        for name, gauge in other._snapshot("_gauges").items():
            self.gauge(name).merge(gauge)
        for name, histogram in other._snapshot("_histograms").items():
            self.histogram(name, histogram.bounds).merge(histogram)

    def _snapshot(self, attribute: str) -> dict:
        with self._lock:
            return dict(getattr(self, attribute))

    def instruments(self) -> dict[str, dict]:
        """Live instrument objects by family — the exposition renderer's
        view (histograms need their buckets, which ``summary`` elides)."""
        return {"counters": self._snapshot("_counters"),
                "gauges": self._snapshot("_gauges"),
                "histograms": self._snapshot("_histograms")}

    def summary(self) -> dict:
        """JSON-ready ``{"counters": ..., "gauges": ..., "histograms":
        ...}`` with histogram percentile summaries."""
        return {
            "counters": {name: c.value for name, c in
                         sorted(self._snapshot("_counters").items())},
            "gauges": {name: g.value for name, g in
                       sorted(self._snapshot("_gauges").items())},
            "histograms": {name: h.summary() for name, h in
                           sorted(self._snapshot("_histograms").items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MetricsRegistry {len(self._counters)} counters, "
                f"{len(self._gauges)} gauges, "
                f"{len(self._histograms)} histograms>")


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    value = 0
    total = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, count: int = 1) -> None:
        pass

    def summary(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """The disabled registry: every instrument is a shared no-op."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str,
                  bounds: Sequence[float] | None = None
                  ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def merge(self, other) -> None:
        pass

    def instruments(self) -> dict[str, dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def summary(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The shared disabled registry.
NULL_METRICS = NullMetricsRegistry()


# ---------------------------------------------------------------------------
# derived gauges
# ---------------------------------------------------------------------------

def refresh_derived_gauges(registry) -> None:
    """Recompute gauges that are pure functions of counters.

    :meth:`Gauge.merge` is last-writer-wins, so after worker registries
    fold into the main one a ratio gauge reflects only the last worker
    merged — not the aggregate. Every consumer that reads a registry
    after merges (the run report, the OpenMetrics exposition) calls
    this first so derived values are recomputed from the merged
    counters. Touches nothing when the inputs were never emitted.
    """
    if not registry.enabled:
        return
    counters = registry.instruments()["counters"]
    hits = counters.get(M_CACHE_HITS)
    misses = counters.get(M_CACHE_MISSES)
    total = (hits.value if hits is not None else 0) \
        + (misses.value if misses is not None else 0)
    if total:
        registry.gauge(M_CACHE_HIT_RATIO).set(hits.value / total
                                              if hits is not None
                                              else 0.0)
