"""Per-stage wall-clock timers and counters for the pipelines.

A :class:`StageProfile` accumulates named timings and counters for one
pipeline run. Stage names are dotted paths — ``predict.learner.whirl``
nests under ``predict`` — so nesting is explicit in the name rather than
kept on an implicit stack. That keeps the profile correct when stages
run concurrently on worker threads: each ``stage()`` context manager
only touches its own path, and all writes go through one lock.

Timings for the same path accumulate (a stage entered five times reports
the total), which is what a per-learner breakdown across structure
passes wants.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Iterator


class StageProfile:
    """Thread-safe per-stage wall-times and counters for one run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._timings: dict[str, float] = {}
        self._counters: dict[str, int] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @contextmanager
    def stage(self, path: str) -> Iterator[None]:
        """Time a ``with`` block under ``path`` (dotted = nested)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(path, time.perf_counter() - start)

    def add_time(self, path: str, seconds: float) -> None:
        """Accumulate ``seconds`` of wall time under ``path``."""
        with self._lock:
            self._timings[path] = self._timings.get(path, 0.0) + seconds

    def count(self, name: str, amount: int = 1) -> None:
        """Increment the counter ``name`` by ``amount``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def timings(self) -> dict[str, float]:
        """Snapshot of path -> accumulated seconds."""
        with self._lock:
            return dict(self._timings)

    @property
    def counters(self) -> dict[str, int]:
        """Snapshot of name -> count."""
        with self._lock:
            return dict(self._counters)

    def seconds(self, path: str) -> float:
        """Accumulated seconds under ``path`` (0.0 if never entered)."""
        with self._lock:
            return self._timings.get(path, 0.0)

    def merge(self, other: "StageProfile") -> "StageProfile":
        """Accumulate another profile's timings and counters into this
        one (same-path entries add). Worker-side profiles from
        :meth:`~repro.core.parallel.ParallelExecutor.map_profiled` fold
        back through here, so per-stage numbers survive fan-out."""
        snapshot = other.as_dict()
        with self._lock:
            for path, seconds in snapshot["timings"].items():
                self._timings[path] = \
                    self._timings.get(path, 0.0) + seconds
            for name, amount in snapshot["counters"].items():
                self._counters[name] = \
                    self._counters.get(name, 0) + amount
        return self

    def top_level_total(self) -> float:
        """Total seconds across the top-level stages.

        A root that was never timed itself (only dotted descendants
        exist, e.g. ``predict.learner.whirl`` alone) contributes the
        roll-up of its children — so the share column renders against a
        non-zero denominator no matter which granularity was timed."""
        full = _fill_implicit(self.timings)
        return sum(seconds for path, seconds in full.items()
                   if "." not in path)

    def as_dict(self) -> dict:
        """JSON-ready ``{"timings": ..., "counters": ...}`` snapshot."""
        return {"timings": self.timings, "counters": self.counters}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def table(self) -> str:
        """Human-readable stage table (see :func:`format_profile_table`)."""
        return format_profile_table(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (f"<StageProfile {len(self._timings)} stages, "
                    f"{len(self._counters)} counters>")

    # ------------------------------------------------------------------
    # pickling (profiles ride along on saved systems; locks cannot
    # cross the pickle boundary, so a fresh one is made on load)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return self.as_dict()

    def __setstate__(self, state: dict) -> None:
        self._lock = threading.Lock()
        self._timings = dict(state["timings"])
        self._counters = dict(state["counters"])


def _fill_implicit(timings: dict[str, float]) -> dict[str, float]:
    """Timings with implicit parents filled in, deepest-first.

    A grouping path that was never timed itself (``predict.learner``
    when only ``predict.learner.whirl`` exists) gets the sum of its
    direct children — including children that are themselves implicit,
    so a chain like ``a.b.c`` rolls all the way up to ``a``.
    """
    full: dict[str, float] = dict(timings)
    for path in sorted(timings, key=lambda p: -p.count(".")):
        parts = path.split(".")
        for depth in range(len(parts) - 1, 0, -1):
            parent = ".".join(parts[:depth])
            if parent not in full:
                full[parent] = sum(
                    seconds for child, seconds in full.items()
                    if child.startswith(parent + ".")
                    and child.count(".") == depth)
    return full


def format_profile_table(profile: StageProfile) -> str:
    """Render a profile as an indented stage table with shares.

    Sub-stages are indented under their parent; the share column is the
    fraction of the top-level total, so parents and their children both
    read against the same denominator. Grouping paths that were never
    timed themselves (``predict.learner`` when only
    ``predict.learner.whirl`` exists) appear as implicit rows showing
    the sum of their children.
    """
    timings = profile.timings
    counters = profile.counters
    full = _fill_implicit(timings)
    total = sum(seconds for path, seconds in full.items()
                if "." not in path)

    def sort_key(path: str) -> tuple:
        # Keep children right after their parent, slowest parents first.
        parts = path.split(".")
        prefix_times = tuple(
            -full.get(".".join(parts[:i + 1]), 0.0)
            for i in range(len(parts)))
        return (prefix_times, parts)

    rows: list[tuple[str, str, str]] = []
    for path in sorted(full, key=sort_key):
        depth = path.count(".")
        name = "  " * depth + path.split(".")[-1]
        seconds = full[path]
        share = f"{seconds / total * 100:5.1f}%" if total > 0 else "    -"
        rows.append((name, f"{seconds:9.4f}s", share))

    width = max((len(name) for name, _, _ in rows), default=5)
    width = max(width, len("stage"))
    lines = [f"{'stage':<{width}}  {'time':>10}  {'share':>6}"]
    lines.append("-" * (width + 21))
    lines.extend(f"{name:<{width}}  {seconds:>10}  {share:>6}"
                 for name, seconds, share in rows)
    if counters:
        lines.append("")
        cwidth = max(max(len(k) for k in counters), len("counter"))
        lines.append(f"{'counter':<{cwidth}}  {'value':>10}")
        lines.append("-" * (cwidth + 12))
        lines.extend(f"{name:<{cwidth}}  {counters[name]:>10}"
                     for name in sorted(counters))
    return "\n".join(lines)
