"""Match-quality telemetry: per-column records for triaging mappings.

When a proposed mapping is wrong, the question is always the same: which
learner pulled the prediction where, how confident was the ensemble, and
did the constraint handler override the data's argmax? A
:class:`QualityRecord` captures exactly that for one source tag:

* each base learner's *column-level* top prediction and score (the
  learner's per-instance scores collapsed by the same prediction
  converter the pipeline uses);
* the meta-learner weights applied to the winning label;
* the converter's top label/score and the confidence margin
  (top1 − top2) of the combined distribution;
* inter-learner agreement (the fraction of base learners whose own top
  label matches the ensemble's);
* the label the constraint handler finally assigned and whether that
  *overrode* the converter's argmax.

Records are pure data (``as_dict``/``from_dict`` round-trip through
JSON) and are built once per match run, after the constraint search —
they never touch the hot prediction path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class QualityRecord:
    """Everything needed to triage one column's mapping."""

    tag: str
    column_size: int
    #: learner name -> {"label": top label, "score": its score}, using
    #: the converter-collapsed column distribution of that learner.
    learner_top: dict[str, dict] = field(default_factory=dict)
    #: learner name -> meta-learner weight applied to ``predicted``.
    meta_weights: dict[str, float] = field(default_factory=dict)
    predicted: str = ""          # the converter's argmax label
    predicted_score: float = 0.0
    margin: float = 0.0          # top1 - top2 of the combined scores
    agreement: float = 0.0       # share of learners agreeing with top1
    assigned: str = ""           # the final (constrained) label
    constraint_override: bool = False

    def as_dict(self) -> dict:
        return {
            "tag": self.tag,
            "column_size": self.column_size,
            "learner_top": {
                name: dict(top) for name, top in
                sorted(self.learner_top.items())},
            "meta_weights": {
                name: weight for name, weight in
                sorted(self.meta_weights.items())},
            "predicted": self.predicted,
            "predicted_score": self.predicted_score,
            "margin": self.margin,
            "agreement": self.agreement,
            "assigned": self.assigned,
            "constraint_override": self.constraint_override,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QualityRecord":
        return cls(
            tag=data["tag"],
            column_size=data["column_size"],
            learner_top={name: dict(top) for name, top in
                         data.get("learner_top", {}).items()},
            meta_weights=dict(data.get("meta_weights", {})),
            predicted=data.get("predicted", ""),
            predicted_score=data.get("predicted_score", 0.0),
            margin=data.get("margin", 0.0),
            agreement=data.get("agreement", 0.0),
            assigned=data.get("assigned", ""),
            constraint_override=data.get("constraint_override", False),
        )


def _top_and_margin(row: np.ndarray) -> tuple[int, float, float]:
    """(argmax index, its score, top1 - top2) of one score row."""
    best = int(np.argmax(row))
    score = float(row[best])
    if row.shape[0] < 2:
        return best, score, score
    second = float(np.partition(row, -2)[-2])
    return best, score, score - second


def build_quality_records(tags, slices, scores_by_learner, converter,
                          meta, space, tag_scores,
                          mapping) -> list["QualityRecord"]:
    """One :class:`QualityRecord` per source tag, sorted by tag.

    Parameters mirror the matching pipeline's internals:
    ``scores_by_learner[name]`` is a learner's flat per-instance score
    matrix, ``slices[tag]`` its rows for one column, ``tag_scores`` the
    converter's combined per-tag rows, and ``mapping`` the final
    (constraint-handled) assignment.
    """
    learner_names = sorted(scores_by_learner)
    records: list[QualityRecord] = []
    for tag in sorted(tags):
        piece = slices[tag]
        combined = np.asarray(tag_scores[tag], dtype=np.float64)
        best, best_score, margin = _top_and_margin(combined)
        predicted = space.label_at(best)

        learner_top: dict[str, dict] = {}
        agreeing = 0
        for name in learner_names:
            row = converter.convert(scores_by_learner[name][piece])
            top, top_score, _ = _top_and_margin(row)
            label = space.label_at(top)
            learner_top[name] = {"label": label,
                                 "score": round(float(top_score), 6)}
            if label == predicted:
                agreeing += 1

        weights: dict[str, float] = {}
        if meta is not None and getattr(meta, "is_fitted", False):
            for name in learner_names:
                if name in meta.learner_names:
                    weights[name] = round(
                        meta.weight_of(predicted, name), 6)

        assigned = mapping[tag] if tag in mapping else predicted
        records.append(QualityRecord(
            tag=tag,
            column_size=piece.stop - piece.start,
            learner_top=learner_top,
            meta_weights=weights,
            predicted=predicted,
            predicted_score=round(best_score, 6),
            margin=round(margin, 6),
            agreement=round(agreeing / len(learner_names), 4)
            if learner_names else 0.0,
            assigned=assigned,
            constraint_override=assigned != predicted,
        ))
    return records
