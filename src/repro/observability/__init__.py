"""Observability: per-stage timers and counters for the pipelines.

The matching phase is the hot path of the system; the ROADMAP's
production goal means its cost structure must stay visible as the code
grows. :class:`StageProfile` is the one instrumentation primitive every
pipeline shares: wall-clock per named stage (nested stages use dotted
paths) plus monotonic counters (instances seen, cache hits, ...).
"""

from .timers import StageProfile, format_profile_table

__all__ = ["StageProfile", "format_profile_table"]
