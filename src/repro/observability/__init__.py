"""Observability: tracing, metrics, quality telemetry, and run reports.

The matching phase is the hot path of the system; the ROADMAP's
production goal means its cost structure — and the *reasons* behind
each proposed mapping — must stay visible as the code grows. Four
primitives cover it:

* :class:`StageProfile` (``timers``) — nested wall-clock timings plus
  monotonic counters; the compatibility facade behind ``--profile``;
* :class:`TraceCollector` (``trace``) — hierarchical spans with
  deterministic ids, merged across worker threads, exported as JSONL
  via ``--trace-out``;
* :class:`MetricsRegistry` (``metrics``) — named counters, gauges and
  fixed-bucket histograms with p50/p90/p99 summaries and worker-side
  ``merge()``;
* :class:`QualityRecord` (``quality``) + run reports (``report``) —
  per-column triage data and the one-JSON-per-run artifact written by
  ``--report-out``.

:class:`Observer` bundles the sinks into the single optional handle the
pipelines accept; the disabled default (:data:`NO_OP`) costs nothing.
"""

from .artifacts import atomic_append_jsonl, atomic_write_text
from .events import (EVENT_CATALOGUE, NULL_EVENTS, EventStream,
                     NullEventStream, read_events, validate_events)
from .expo import (TelemetryServer, parse_openmetrics,
                   registry_from_summary, render_openmetrics)
from .metrics import (BYTE_BUCKETS, CATALOGUE, CPU_BUCKETS,
                      LATENCY_BUCKETS, NULL_METRICS, SIZE_BUCKETS,
                      Counter, Gauge, Histogram, MetricsRegistry,
                      NullMetricsRegistry, exponential_buckets,
                      refresh_derived_gauges)
from .observer import NO_OP, Observer
from .observer import resolve as resolve_observer
from .quality import QualityRecord, build_quality_records
from .report import (build_match_report, dataset_fingerprint,
                     load_report, load_schema, render_text,
                     validate_file, validate_report, write_report)
from .resources import ProcSample, ResourceSampler, read_proc_self
from .timers import StageProfile, format_profile_table
from .trace import (NULL_TRACE, NullTraceCollector, Span,
                    TraceCollector, iter_tree, read_jsonl)

__all__ = [
    "BYTE_BUCKETS", "CATALOGUE", "CPU_BUCKETS", "EVENT_CATALOGUE",
    "LATENCY_BUCKETS", "NULL_EVENTS", "NULL_METRICS", "NULL_TRACE",
    "NO_OP", "SIZE_BUCKETS", "Counter", "EventStream", "Gauge",
    "Histogram", "MetricsRegistry", "NullEventStream",
    "NullMetricsRegistry", "NullTraceCollector", "Observer",
    "ProcSample", "QualityRecord", "ResourceSampler", "Span",
    "StageProfile", "TelemetryServer", "TraceCollector",
    "atomic_append_jsonl", "atomic_write_text", "build_match_report",
    "build_quality_records", "dataset_fingerprint",
    "exponential_buckets", "format_profile_table", "iter_tree",
    "load_report", "load_schema", "parse_openmetrics", "read_events",
    "read_jsonl", "read_proc_self", "refresh_derived_gauges",
    "registry_from_summary", "render_openmetrics", "render_text",
    "resolve_observer", "validate_events", "validate_file",
    "validate_report", "write_report",
]
