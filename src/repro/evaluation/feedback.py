"""The §6.3 user-feedback experiment, with an oracle playing the user.

Protocol (quoted from the paper): tags of the testing source are scored
by "the number of distinct tags that can be nested within that tag" and
reviewed in decreasing score order; on the first incorrect label the user
supplies the correct one and LSD re-runs the constraint handler; the loop
repeats until every tag is matched correctly. The measurement is how many
corrections were needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.feedback import FeedbackSession
from ..core.labels import OTHER
from ..core.system import LSDSystem
from ..datasets.base import Domain, Source
from .configurations import SystemConfig, build_system
from .experiment import ExperimentSettings
from .metrics import Accumulator


@dataclass
class FeedbackOutcome:
    """Result of driving one source to a perfect matching."""

    source_name: str
    corrections: int
    initial_accuracy: float
    final_accuracy: float
    total_tags: int


def corrections_to_perfect(system: LSDSystem, source: Source,
                           n_listings: int,
                           sample_seed: int = 0,
                           max_rounds: int = 200) -> FeedbackOutcome:
    """Drive the feedback loop until the mapping is perfect."""
    listings = source.listings(n_listings, sample_seed=sample_seed)
    session = FeedbackSession(system, source.schema, listings)
    truth = source.mapping
    initial = session.mapping.accuracy_against(truth,
                                               matchable_only=False)
    for __ in range(max_rounds):
        wrong = _first_wrong_tag(session, truth)
        if wrong is None:
            break
        session.assert_match(wrong, truth.get(wrong, OTHER))
    final = session.mapping.accuracy_against(truth, matchable_only=False)
    return FeedbackOutcome(
        source_name=source.name,
        corrections=session.corrections,
        initial_accuracy=initial,
        final_accuracy=final,
        total_tags=len(source.schema.tags))


def _first_wrong_tag(session: FeedbackSession, truth) -> str | None:
    """The first incorrectly labelled tag in §6.3 review order."""
    for tag in session.review_order():
        if session.mapping[tag] != truth.get(tag, OTHER):
            return tag
    return None


@dataclass
class FeedbackStudyResult:
    """Aggregated §6.3 numbers for one domain."""

    domain_name: str
    corrections: Accumulator
    tags: Accumulator
    outcomes: list[FeedbackOutcome]


def run_feedback_study(domain: Domain, settings: ExperimentSettings,
                       runs: int = 3) -> FeedbackStudyResult:
    """§6.3: several runs of train-on-3 / drive-1-to-perfect.

    Run ``r`` trains on sources ``r, r+1, r+2`` (mod 5) and tests on
    source ``r+3`` (mod 5) — a deterministic stand-in for the paper's
    random choices that still varies both sets across runs.
    """
    corrections = Accumulator()
    tags = Accumulator()
    outcomes: list[FeedbackOutcome] = []
    n = len(domain.sources)
    for run in range(runs):
        train = [domain.sources[(run + offset) % n] for offset in range(3)]
        test = domain.sources[(run + 3) % n]
        system = build_system(
            domain, SystemConfig("complete"),
            max_instances_per_tag=settings.max_instances_per_tag,
            seed=settings.seed + run)
        for source in train:
            system.add_training_source(
                source.schema,
                source.listings(settings.n_listings, sample_seed=run),
                source.mapping)
        system.train()
        outcome = corrections_to_perfect(system, test,
                                         settings.n_listings,
                                         sample_seed=run)
        outcomes.append(outcome)
        corrections.add(outcome.corrections)
        tags.add(outcome.total_tags)
    return FeedbackStudyResult(domain.name, corrections, tags, outcomes)
