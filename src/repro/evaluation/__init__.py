"""Evaluation harness reproducing the paper's §6 experiments."""

from .charts import bar_chart, grouped_bar_chart, line_series
from .error_analysis import (AMBIGUOUS, ErrorReport, MISRANKED,
                             NO_TRAINING_DATA, TagError, analyze_errors,
                             trained_label_set)
from .confusion import ConfusionMatrix
from .configurations import (FLAT_LEARNERS, LADDER, SystemConfig,
                             build_system, filter_constraints,
                             information_configs, lesion_configs,
                             single_learner_config)
from .experiment import (DomainResult, ExperimentSettings,
                         run_configuration, run_ladder, train_test_splits)
from .feedback import (FeedbackOutcome, FeedbackStudyResult,
                       corrections_to_perfect, run_feedback_study)
from .lesion import run_information_study, run_lesion_study
from .metrics import Accumulator, matching_accuracy
from .reporting import (TABLE3_HEADERS, feedback_table, format_table,
                        ladder_table, percent, sensitivity_series,
                        study_table, table3_row)
from .sensitivity import DEFAULT_LISTING_COUNTS, run_sensitivity
from .significance import Comparison, compare, paired_bootstrap

__all__ = [
    "AMBIGUOUS", "Accumulator", "DEFAULT_LISTING_COUNTS", "DomainResult",
    "ErrorReport", "MISRANKED", "NO_TRAINING_DATA", "TagError",
    "Comparison", "ConfusionMatrix", "analyze_errors", "bar_chart",
    "compare",
    "grouped_bar_chart", "line_series", "paired_bootstrap",
    "trained_label_set",
    "ExperimentSettings", "FLAT_LEARNERS", "FeedbackOutcome",
    "FeedbackStudyResult", "LADDER", "SystemConfig", "TABLE3_HEADERS",
    "build_system", "corrections_to_perfect", "feedback_table",
    "filter_constraints", "format_table", "information_configs",
    "ladder_table", "lesion_configs", "matching_accuracy", "percent",
    "run_configuration", "run_feedback_study", "run_information_study",
    "run_ladder", "run_lesion_study", "run_sensitivity",
    "sensitivity_series", "single_learner_config", "study_table",
    "table3_row", "train_test_splits",
]
