"""Error analysis per §7 of the paper.

The discussion section attributes LSD's residual 10-30% errors to three
causes:

1. **no training data** — "some tags (e.g., suburb) cannot be matched
   because none of the training sources has matching tags that would
   provide training data";
2. **wrong learner bias** — "some tags simply require different types of
   learners" (e.g. format-shaped fields);
3. **ambiguity** — "some tags cannot be matched because they are simply
   ambiguous" (near-tie predictions).

:func:`analyze_errors` classifies every mistake of a match result into
those buckets so experiments can report not just *how much* LSD misses
but *why* — the same breakdown the paper walks through.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..core.labels import OTHER
from ..core.mapping import Mapping
from ..core.matching import MatchResult

#: Error-cause buckets (§7's three reasons plus a residual).
NO_TRAINING_DATA = "no-training-data"
AMBIGUOUS = "ambiguous"
MISRANKED = "misranked"


@dataclass
class TagError:
    """One wrongly matched tag with its diagnosed cause."""

    tag: str
    predicted: str
    expected: str
    cause: str
    margin: float


@dataclass
class ErrorReport:
    """All errors of one match, grouped by cause."""

    errors: list[TagError] = field(default_factory=list)

    def by_cause(self) -> dict[str, int]:
        return dict(Counter(error.cause for error in self.errors))

    def tags(self) -> list[str]:
        return [error.tag for error in self.errors]

    def __len__(self) -> int:
        return len(self.errors)


def analyze_errors(result: MatchResult, truth: Mapping,
                   trained_labels: set[str],
                   ambiguity_margin: float = 0.1) -> ErrorReport:
    """Classify each wrong tag of ``result`` against ``truth``.

    ``trained_labels`` is the set of labels that had at least one training
    example — the §7 "suburb problem" is a wrong tag whose true label was
    never trainable. A wrong tag with a sub-``ambiguity_margin`` score gap
    is *ambiguous*; the remainder are *misranked* (the learners were
    confidently wrong — the wrong-learner-bias bucket).
    """
    report = ErrorReport()
    for tag, expected in truth.items():
        predicted = result.mapping.get(tag)
        if predicted is None or predicted == expected:
            continue
        prediction = result.prediction_for(tag)
        margin = prediction.margin()
        if expected != OTHER and expected not in trained_labels:
            cause = NO_TRAINING_DATA
        elif margin < ambiguity_margin:
            cause = AMBIGUOUS
        else:
            cause = MISRANKED
        report.errors.append(
            TagError(tag, predicted, expected, cause, margin))
    return report


def trained_label_set(system) -> set[str]:
    """Labels with at least one training example in an LSD system."""
    labels: set[str] = set()
    for source in system.training_sources:
        for tag in source.schema.tags:
            labels.add(source.mapping.get(tag, OTHER))
    return labels
