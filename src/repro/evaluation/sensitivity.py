"""Performance-sensitivity sweeps (Figures 8b and 8c).

Accuracy of the four ladder configurations as a function of the number of
data listings available per source. The paper sweeps 0-500 and observes a
steep climb to ~20 listings, little change from 20 to 200, and a plateau
after 200.
"""

from __future__ import annotations

from dataclasses import replace

from ..datasets.base import Domain
from .experiment import (DomainResult, ExperimentSettings, run_ladder)

#: The x-axis of Figures 8(b)-(c).
DEFAULT_LISTING_COUNTS = (5, 10, 20, 50, 100, 200, 300)


def run_sensitivity(domain: Domain, settings: ExperimentSettings,
                    listing_counts=DEFAULT_LISTING_COUNTS
                    ) -> dict[int, dict[str, DomainResult]]:
    """Ladder results per listing count: ``{n: {config: result}}``."""
    sweep: dict[int, dict[str, DomainResult]] = {}
    for count in listing_counts:
        point_settings = replace(settings, n_listings=count)
        sweep[count] = run_ladder(domain, point_settings)
    return sweep
