"""System configurations for the paper's experiment ladders.

Figure 8(a) compares four configurations per domain:

1. the best single base learner (excluding the XML learner),
2. base learners + meta-learner,
3. + domain-constraint handler,
4. + XML learner (the complete LSD system).

Figure 9(a) lesions one component at a time; Figure 9(b) splits the
system into schema-information-only and data-information-only halves.
:func:`build_system` turns a :class:`SystemConfig` into a ready
:class:`LSDSystem` for a given domain, wiring in the domain's synonym
dictionary, recognizers and constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constraints import (Constraint, FunctionalDependencyConstraint,
                           KeyConstraint)
from ..core.system import LSDSystem
from ..datasets.base import Domain
from ..learners import (ContentMatcher, NaiveBayesLearner, NameMatcher,
                        XMLLearner)
from ..learners.base import BaseLearner

#: Names of the flat base learners (the "excluding XML" pool of Fig 8a).
FLAT_LEARNERS = ("name_matcher", "content_matcher", "naive_bayes")


@dataclass
class SystemConfig:
    """A recipe for building one LSD variant."""

    name: str
    learners: tuple[str, ...] = FLAT_LEARNERS
    use_xml: bool = True
    use_meta: bool = True
    use_constraints: bool = True
    use_recognizers: bool = True
    #: "schema" / "data" / "both" — which constraint kinds to keep.
    constraint_information: str = "both"

    def describe(self) -> str:
        parts = [", ".join(self.learners)]
        if self.use_xml:
            parts.append("xml_learner")
        if self.use_meta:
            parts.append("meta")
        if self.use_constraints:
            parts.append(f"constraints[{self.constraint_information}]")
        return f"{self.name}: " + " + ".join(parts)


#: The Figure 8(a) ladder (config 1 is expanded per learner by callers).
LADDER = (
    SystemConfig("base+meta", use_xml=False, use_constraints=False,
                 use_recognizers=True),
    SystemConfig("base+meta+constraints", use_xml=False),
    SystemConfig("complete", use_xml=True),
)


def single_learner_config(learner_name: str) -> SystemConfig:
    """Config running one base learner alone (Fig 8a's first bar pool)."""
    return SystemConfig(
        name=f"single[{learner_name}]",
        learners=(learner_name,), use_xml=False, use_meta=False,
        use_constraints=False, use_recognizers=False)


def lesion_configs() -> list[SystemConfig]:
    """Figure 9(a): the complete system minus one component each."""
    def drop(name: str) -> tuple[str, ...]:
        return tuple(l for l in FLAT_LEARNERS if l != name)

    return [
        SystemConfig("without name matcher",
                     learners=drop("name_matcher")),
        SystemConfig("without naive bayes",
                     learners=drop("naive_bayes")),
        SystemConfig("without content matcher",
                     learners=drop("content_matcher")),
        SystemConfig("without constraint handler",
                     use_constraints=False),
        SystemConfig("complete"),
    ]


def information_configs() -> list[SystemConfig]:
    """Figure 9(b): schema-only vs data-only vs the complete system."""
    return [
        SystemConfig("schema only", learners=("name_matcher",),
                     use_xml=False, use_recognizers=False,
                     constraint_information="schema"),
        SystemConfig("data only",
                     learners=("content_matcher", "naive_bayes"),
                     use_xml=True, constraint_information="data"),
        SystemConfig("complete"),
    ]


def build_system(domain: Domain, config: SystemConfig,
                 max_instances_per_tag: int | None = 100,
                 seed: int = 0) -> LSDSystem:
    """Instantiate an LSD variant for ``domain`` per ``config``."""
    learners: list[BaseLearner] = []
    for name in config.learners:
        learners.append(_make_learner(name, domain))
    if config.use_xml:
        learners.append(XMLLearner())
    if config.use_recognizers:
        learners.extend(domain.recognizers())
    constraints = filter_constraints(domain.constraints,
                                     config.constraint_information)
    return LSDSystem(
        domain.mediated_schema, learners,
        constraints=constraints,
        use_constraint_handler=config.use_constraints,
        use_meta_learner=config.use_meta,
        max_instances_per_tag=max_instances_per_tag,
        seed=seed)


def filter_constraints(constraints: list[Constraint],
                       information: str) -> list[Constraint]:
    """Keep only schema-verifiable or data-verifiable constraints.

    Column constraints (keys, functional dependencies) need source data;
    everything else in Table 1 is verifiable from the schema alone.
    """
    if information == "both":
        return list(constraints)
    data_kinds = (KeyConstraint, FunctionalDependencyConstraint)
    if information == "schema":
        return [c for c in constraints
                if not isinstance(c, data_kinds)]
    if information == "data":
        return [c for c in constraints if isinstance(c, data_kinds)]
    raise ValueError(f"unknown information kind {information!r}")


def _make_learner(name: str, domain: Domain) -> BaseLearner:
    if name == "name_matcher":
        return NameMatcher(synonyms=domain.synonyms)
    if name == "content_matcher":
        return ContentMatcher()
    if name == "naive_bayes":
        return NaiveBayesLearner()
    if name == "xml_learner":
        return XMLLearner()
    from ..learners import registry
    return registry.create(name)
