"""Accuracy metrics and small aggregation helpers (§6 definitions)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.mapping import Mapping


def matching_accuracy(predicted: Mapping, truth: Mapping,
                      matchable_only: bool = True) -> float:
    """§6: "the percentage of matchable source-schema tags that are
    matched correctly"."""
    return predicted.accuracy_against(truth, matchable_only)


@dataclass
class Accumulator:
    """Streaming mean/std over accuracy observations."""

    values: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(float(value))

    def extend(self, values) -> None:
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((v - mu) ** 2 for v in self.values)
                         / (len(self.values) - 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Accumulator(mean={self.mean:.3f}, n={self.count})"
