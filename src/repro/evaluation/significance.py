"""Statistical significance for configuration comparisons.

The paper reports bar heights without error analysis; with a simulated
substrate we can do better. :func:`paired_bootstrap` implements the
standard paired bootstrap test over per-observation accuracy differences
(each observation = one (trial, split, test source) accuracy), and
:func:`compare` packages it for two :class:`DomainResult` objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .experiment import DomainResult


@dataclass
class Comparison:
    """Outcome of a paired significance test between two systems."""

    mean_a: float
    mean_b: float
    delta: float          # mean(b) - mean(a)
    p_value: float        # P(delta <= 0) under the bootstrap
    resamples: int

    @property
    def significant(self) -> bool:
        """True at the conventional 5% level."""
        return self.p_value < 0.05

    def describe(self) -> str:
        direction = "improves" if self.delta > 0 else "changes"
        return (f"{direction} accuracy by {self.delta * 100:+.1f}pp "
                f"(p={self.p_value:.3f}, "
                f"{'significant' if self.significant else 'n.s.'})")


def paired_bootstrap(a: list[float], b: list[float],
                     resamples: int = 10_000, seed: int = 0
                     ) -> Comparison:
    """Paired bootstrap test that system ``b`` beats system ``a``.

    ``a`` and ``b`` are accuracy observations from the *same* (trial,
    split, source) runs, in the same order. The p-value estimates the
    probability that the observed improvement is not real: the fraction
    of resampled mean differences at or below zero.
    """
    if len(a) != len(b):
        raise ValueError("paired samples differ in length")
    if not a:
        raise ValueError("need at least one paired observation")
    a_array = np.asarray(a, dtype=np.float64)
    b_array = np.asarray(b, dtype=np.float64)
    differences = b_array - a_array
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, len(differences),
                           size=(resamples, len(differences)))
    means = differences[indices].mean(axis=1)
    p_value = float(np.mean(means <= 0.0))
    return Comparison(
        mean_a=float(a_array.mean()),
        mean_b=float(b_array.mean()),
        delta=float(differences.mean()),
        p_value=p_value,
        resamples=resamples)


def compare(a: DomainResult, b: DomainResult,
            resamples: int = 10_000, seed: int = 0) -> Comparison:
    """Paired bootstrap between two configurations' DomainResults.

    Both results must come from :func:`run_configuration` with identical
    settings, so their observation streams are aligned run-for-run.
    """
    return paired_bootstrap(a.overall.values, b.overall.values,
                            resamples=resamples, seed=seed)
