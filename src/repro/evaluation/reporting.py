"""Plain-text reporters that print the paper's tables and figure series."""

from __future__ import annotations

from ..datasets.base import Domain
from .experiment import DomainResult
from .feedback import FeedbackStudyResult


def format_table(headers: list[str], rows: list[list[str]],
                 title: str | None = None) -> str:
    """Monospace table with column alignment."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def percent(value: float) -> str:
    """0.824 -> '82.4%'."""
    return f"{value * 100:.1f}%"


def table3_row(domain: Domain) -> list[str]:
    """One row of the paper's Table 3 for a generated domain."""
    mediated = domain.mediated_schema.dtd
    source_tags = [len(s.schema.dtd.tag_names()) for s in domain.sources]
    source_non_leaf = [len(s.schema.dtd.non_leaf_names())
                       for s in domain.sources]
    source_depth = [s.schema.depth() for s in domain.sources]
    listings = [s.n_listings for s in domain.sources]
    matchable = [domain.matchable_fraction(s) for s in domain.sources]
    return [
        domain.title,
        str(len(mediated.tag_names())),
        str(len(mediated.non_leaf_names())),
        str(mediated.depth()),
        str(len(domain.sources)),
        f"{min(listings)} - {max(listings)}",
        f"{min(source_tags)} - {max(source_tags)}",
        f"{min(source_non_leaf)} - {max(source_non_leaf)}",
        f"{min(source_depth)} - {max(source_depth)}",
        f"{percent(min(matchable))} - {percent(max(matchable))}",
    ]


TABLE3_HEADERS = [
    "Domain", "Med. Tags", "Med. Non-leaf", "Med. Depth", "Sources",
    "Listings", "Src Tags", "Src Non-leaf", "Src Depth", "Matchable",
]


def ladder_table(results_by_domain: dict[str, dict[str, DomainResult]]
                 ) -> str:
    """Figure 8(a) as a table: one row per domain, one column per bar."""
    headers = ["Domain", "Best Base Learner", "+ Meta-Learner",
               "+ Constraint Handler", "+ XML Learner (complete)"]
    rows = []
    for domain_name, ladder in results_by_domain.items():
        rows.append([
            domain_name,
            percent(ladder["best_base"].mean_accuracy),
            percent(ladder["meta"].mean_accuracy),
            percent(ladder["constraints"].mean_accuracy),
            percent(ladder["complete"].mean_accuracy),
        ])
    return format_table(headers, rows,
                        title="Figure 8(a): average matching accuracy")


def sensitivity_series(sweep: dict[int, dict[str, DomainResult]],
                       title: str) -> str:
    """Figures 8(b)/(c) as a series table: rows = listing counts."""
    headers = ["Listings/source", "Best Base", "+Meta", "+Constraints",
               "+XML (complete)"]
    rows = []
    for count in sorted(sweep):
        ladder = sweep[count]
        rows.append([
            str(count),
            percent(ladder["best_base"].mean_accuracy),
            percent(ladder["meta"].mean_accuracy),
            percent(ladder["constraints"].mean_accuracy),
            percent(ladder["complete"].mean_accuracy),
        ])
    return format_table(headers, rows, title=title)


def study_table(results_by_domain: dict[str, dict[str, DomainResult]],
                title: str) -> str:
    """Figure 9(a)/(b) style table: rows = domains, columns = variants."""
    domains = list(results_by_domain)
    variants = list(next(iter(results_by_domain.values())))
    headers = ["Domain", *variants]
    rows = []
    for domain_name in domains:
        row = [domain_name]
        for variant in variants:
            row.append(percent(
                results_by_domain[domain_name][variant].mean_accuracy))
        rows.append(row)
    return format_table(headers, rows, title=title)


def feedback_table(results: list[FeedbackStudyResult]) -> str:
    """§6.3: corrections needed to reach perfect matching."""
    headers = ["Domain", "Avg corrections", "Avg tags in test schema",
               "Runs"]
    rows = []
    for result in results:
        rows.append([
            result.domain_name,
            f"{result.corrections.mean:.1f}",
            f"{result.tags.mean:.1f}",
            str(result.corrections.count),
        ])
    return format_table(
        headers, rows,
        title="Section 6.3: user feedback to perfect matching")
