"""Label confusion reporting: which labels LSD mistakes for which.

Complements the §7 error-cause breakdown (:mod:`.error_analysis`) with a
*what-for-what* view: a matrix counting, over many match results, how
often a tag whose true label is ``X`` was assigned label ``Y``. The
report surfaces the most-confused label pairs — in our domains typically
sibling concepts such as START-TIME/END-TIME or the school levels.
"""

from __future__ import annotations

from collections import Counter

from ..core.mapping import Mapping
from .reporting import format_table


class ConfusionMatrix:
    """Accumulates (true label, predicted label) counts."""

    def __init__(self) -> None:
        self._counts: Counter = Counter()

    def record(self, predicted: Mapping, truth: Mapping) -> None:
        """Add one match result's tag outcomes."""
        for tag, expected in truth.items():
            assigned = predicted.get(tag)
            if assigned is not None:
                self._counts[(expected, assigned)] += 1

    def count(self, true_label: str, predicted_label: str) -> int:
        """How often ``true_label`` tags were assigned
        ``predicted_label``."""
        return self._counts[(true_label, predicted_label)]

    def total(self) -> int:
        """All recorded tag outcomes."""
        return sum(self._counts.values())

    def accuracy(self) -> float:
        """Fraction of outcomes on the diagonal."""
        total = self.total()
        if total == 0:
            return 0.0
        correct = sum(count for (expected, assigned), count
                      in self._counts.items() if expected == assigned)
        return correct / total

    def confusions(self, top: int | None = None
                   ) -> list[tuple[str, str, int]]:
        """Off-diagonal cells as (true, predicted, count), largest first."""
        cells = [(expected, assigned, count)
                 for (expected, assigned), count in self._counts.items()
                 if expected != assigned]
        cells.sort(key=lambda cell: (-cell[2], cell[0], cell[1]))
        if top is not None:
            cells = cells[:top]
        return cells

    def recall(self, label: str) -> float:
        """Fraction of ``label`` tags that were labelled correctly."""
        total = sum(count for (expected, __), count
                    in self._counts.items() if expected == label)
        if total == 0:
            return 0.0
        return self._counts[(label, label)] / total

    def report(self, top: int = 10) -> str:
        """A table of the worst label confusions."""
        rows = [[expected, assigned, str(count)]
                for expected, assigned, count in self.confusions(top)]
        if not rows:
            rows = [["(none)", "-", "0"]]
        return format_table(
            ["True label", "Predicted as", "Count"], rows,
            title=f"Top label confusions "
                  f"(overall accuracy {self.accuracy():.1%})")
