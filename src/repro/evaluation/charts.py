"""ASCII chart rendering for experiment results.

The paper presents Figures 8 and 9 as bar charts and line plots; these
helpers render the same data as monospace charts so benchmark output and
EXPERIMENTS.md can show shape at a glance without a plotting stack.
"""

from __future__ import annotations

BAR_CHARACTER = "#"


def bar_chart(items: list[tuple[str, float]], width: int = 50,
              title: str | None = None,
              value_format: str = "{:.1%}") -> str:
    """Horizontal bar chart of (label, value) pairs; values in [0, 1].

    >>> print(bar_chart([("a", 0.5), ("b", 1.0)], width=4))
    a  ##    50.0%
    b  ####  100.0%
    """
    if not items:
        return title or ""
    label_width = max(len(label) for label, __ in items)
    peak = max(value for __, value in items)
    lines = [title] if title else []
    for label, value in items:
        # value/peak (not width/peak) avoids overflow on subnormal peaks.
        ratio = value / peak if peak > 0 else 0.0
        bar = BAR_CHARACTER * min(max(int(round(ratio * width)), 0),
                                  width)
        rendered = value_format.format(value)
        lines.append(f"{label.ljust(label_width)}  "
                     f"{bar.ljust(width)}  {rendered}")
    return "\n".join(lines)


def grouped_bar_chart(groups: dict[str, list[tuple[str, float]]],
                      width: int = 50, title: str | None = None) -> str:
    """One bar block per group (a figure-8a-style chart in text).

    ``groups`` maps a group heading (e.g. a domain) to its bars.
    """
    blocks = [title] if title else []
    for heading, items in groups.items():
        blocks.append(f"\n{heading}")
        blocks.append(bar_chart(items, width=width))
    return "\n".join(blocks).strip()


def line_series(points: dict[int, float], width: int = 50,
                title: str | None = None) -> str:
    """A sparkline-style series for sensitivity sweeps.

    ``points`` maps the x value (listings per source) to accuracy.
    """
    items = [(str(x), points[x]) for x in sorted(points)]
    return bar_chart(items, width=width, title=title)
