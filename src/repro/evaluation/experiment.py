"""The paper's experimental methodology (§6, "Experimental Methodology").

For each domain: all C(5,3) = 10 ways of choosing three training sources
are run, the remaining two sources are matched, and accuracy is averaged;
the whole procedure repeats for several trials, "each time taking a new
sample of data from each source". The *average domain accuracy* averages
over every (trial, split, test source) observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from ..datasets.base import Domain, Source
from .configurations import SystemConfig, build_system, \
    single_learner_config
from .metrics import Accumulator


@dataclass
class ExperimentSettings:
    """Knobs of the §6 methodology.

    The paper uses 300 listings per source, 3 trials and all 10 splits;
    benchmark defaults scale these down via environment variables (see
    ``benchmarks/common.py``) because our substrate re-runs the entire
    pipeline dozens of times per figure.
    """

    n_listings: int = 300
    trials: int = 3
    max_splits: int | None = None  # None = all C(5,3) splits
    max_instances_per_tag: int | None = 100
    seed: int = 0


@dataclass
class DomainResult:
    """Accuracy observations for one (domain, configuration) pair."""

    domain_name: str
    config_name: str
    overall: Accumulator = field(default_factory=Accumulator)
    per_source: dict[str, Accumulator] = field(default_factory=dict)

    def record(self, source_name: str, accuracy: float) -> None:
        self.overall.add(accuracy)
        self.per_source.setdefault(source_name, Accumulator()).add(
            accuracy)

    @property
    def mean_accuracy(self) -> float:
        return self.overall.mean


def train_test_splits(sources: list[Source],
                      max_splits: int | None = None
                      ) -> list[tuple[list[Source], list[Source]]]:
    """All (train, test) splits choosing 3 of the 5 sources to train."""
    splits = []
    for train_names in combinations(range(len(sources)), 3):
        train = [sources[i] for i in train_names]
        test = [s for i, s in enumerate(sources)
                if i not in train_names]
        splits.append((train, test))
    if max_splits is not None:
        splits = splits[:max_splits]
    return splits


def run_configuration(domain: Domain, config: SystemConfig,
                      settings: ExperimentSettings) -> DomainResult:
    """Run the full methodology for one system configuration."""
    result = DomainResult(domain.name, config.name)
    splits = train_test_splits(domain.sources, settings.max_splits)
    for trial in range(settings.trials):
        for train_sources, test_sources in splits:
            system = build_system(
                domain, config,
                max_instances_per_tag=settings.max_instances_per_tag,
                seed=settings.seed + trial)
            for source in train_sources:
                system.add_training_source(
                    source.schema,
                    source.listings(settings.n_listings,
                                    sample_seed=trial),
                    source.mapping)
            system.train()
            for source in test_sources:
                match = system.match(
                    source.schema,
                    source.listings(settings.n_listings,
                                    sample_seed=trial))
                result.record(source.name,
                              match.mapping.accuracy_against(
                                  source.mapping))
    return result


def run_ladder(domain: Domain, settings: ExperimentSettings,
               base_learner_pool: tuple[str, ...] = (
                   "name_matcher", "content_matcher", "naive_bayes"),
               ) -> dict[str, DomainResult]:
    """Figure 8(a)'s four bars for one domain.

    Returns results keyed ``best_base`` / ``meta`` / ``constraints`` /
    ``complete``. The ``best_base`` entry is the best-scoring single base
    learner, as in the paper.
    """
    from .configurations import LADDER

    singles = [
        run_configuration(domain, single_learner_config(name), settings)
        for name in base_learner_pool
    ]
    best_base = max(singles, key=lambda r: r.mean_accuracy)

    results: dict[str, DomainResult] = {"best_base": best_base}
    keys = ("meta", "constraints", "complete")
    for key, config in zip(keys, LADDER):
        results[key] = run_configuration(domain, config, settings)
    return results
