"""Lesion studies (Figure 9a) and the schema-vs-data split (Figure 9b)."""

from __future__ import annotations

from ..datasets.base import Domain
from .configurations import information_configs, lesion_configs
from .experiment import (DomainResult, ExperimentSettings,
                         run_configuration)


def run_lesion_study(domain: Domain, settings: ExperimentSettings
                     ) -> dict[str, DomainResult]:
    """Figure 9(a): accuracy with each component removed, plus the
    complete system for comparison."""
    return {
        config.name: run_configuration(domain, config, settings)
        for config in lesion_configs()
    }


def run_information_study(domain: Domain, settings: ExperimentSettings
                          ) -> dict[str, DomainResult]:
    """Figure 9(b): schema-information-only vs data-information-only vs
    the complete system."""
    return {
        config.name: run_configuration(domain, config, settings)
        for config in information_configs()
    }
