"""Deterministic fan-out for learner prediction and cross-validation.

:class:`ParallelExecutor` is the one concurrency primitive the pipelines
use: an order-preserving ``map`` with a serial fallback when
``workers <= 1`` (or when there is nothing to fan out). Results always
come back in submission order, so a pipeline wired through an executor
produces byte-identical output at any worker count *and any backend* —
the determinism tests pin this.

Three backends behind one seam:

* ``serial`` — in-process, in-order; the reference semantics.
* ``thread`` (default) — a per-map ``ThreadPoolExecutor``. Measured on
  this workload the hot kernels (scipy sparse products,
  ``np.partition``) do **not** release the GIL, so threads top out at
  ~0.9x serial on CPU-bound matching; their value is bounded overhead,
  shared feature caches, and the deadline/quarantine machinery. Thread
  tasks are plain closures — nothing needs to be picklable — which is
  why cross-validation folds and constraint root-splits stay here.
* ``process`` — a persistent :class:`~repro.core.procpool.WorkerPool`
  whose workers hold the trained model reconstructed once around a
  shared-memory segment (:mod:`repro.core.shared_arrays`), the only
  backend the GIL cannot serialise. It accepts
  :class:`~repro.core.procpool.ProcessTask` descriptors through
  :meth:`ParallelExecutor.map_profiled`; any other map on a
  process-backend executor (generic closures, ``map``/``starmap``)
  transparently rides the thread path, and so does every map once the
  pool has died. Each descriptor carries a local ``fallback`` closure
  running the identical computation, which is how one code path serves
  serial execution, pool-death recovery, and the thread backend.

Thread pools are created per ``map`` call: the workloads are chunky
(one task trains or predicts a whole learner shard), so pool start-up
is noise and no idle threads linger between phases. The process pool is
the opposite trade — expensive to build, cheap to keep — so it lives on
the system (see ``LSDSystem.close_pool``) and is merely borrowed here.

Resilience: an executor built with a :class:`~repro.resilience.policy.
ResiliencePolicy` retries failing tasks with seeded exponential backoff,
falls back to serial execution when the worker pool cannot be used, and
hits the ``executor.task`` / ``executor.pool`` fault sites (plus
``worker.process`` on the process backend) so the chaos suite can
exercise every path deterministically. The default (no policy) executor
behaves exactly as before.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from ..observability import StageProfile
from ..observability.metrics import M_POOL_QUEUE_WAIT
from ..resilience.faults import FaultInjected
from ..resilience.sites import SITE_EXECUTOR_POOL, SITE_EXECUTOR_TASK
from .procpool import ProcessTask, run_process_map

T = TypeVar("T")
R = TypeVar("R")

#: Ceiling on a single backoff sleep, seconds.
_MAX_BACKOFF = 5.0

#: The legal ``backend=`` values.
BACKENDS = ("serial", "thread", "process")


class ParallelExecutor:
    """Order-preserving parallel ``map`` with a serial fallback."""

    def __init__(self, workers: int = 1, policy=None,
                 backend: str = "thread", pool=None) -> None:
        """``workers <= 1`` selects the deterministic serial path.

        ``policy`` (a :class:`repro.resilience.ResiliencePolicy`) arms
        per-task retries and the executor fault sites; ``None`` keeps
        the executor inert. ``backend`` picks the execution substrate
        (see the module docstring); ``backend="process"`` additionally
        needs a live :class:`~repro.core.procpool.WorkerPool` passed as
        ``pool`` — without one (or once it breaks) process-backend maps
        degrade to the thread path.
        """
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of "
                f"{', '.join(BACKENDS)}")
        self.workers = max(1, int(workers))
        self.policy = policy
        self.backend = backend
        self.pool = pool

    @property
    def is_parallel(self) -> bool:
        return self.workers > 1 and self.backend != "serial"

    @property
    def wants_process_tasks(self) -> bool:
        """True when a map should be expressed as
        :class:`~repro.core.procpool.ProcessTask` descriptors — the
        process backend is selected and its pool is usable."""
        return (self.backend == "process" and self.is_parallel
                and self.pool is not None and self.pool.alive)

    def map(self, fn: Callable[[T], R], items: Iterable[T],
            label: str = "map") -> list[R]:
        """Apply ``fn`` to every item; results in submission order.

        Exceptions propagate exactly as in the serial path: the first
        failing item (in submission order) raises — after the policy's
        retry budget (if any) is exhausted for that item.
        """
        items = list(items)
        task = self._task_runner(lambda index, item: fn(item), label)
        if self._force_serial(label) or not self.is_parallel \
                or len(items) <= 1:
            return [task(index, item)
                    for index, item in enumerate(items)]
        submitted = self._submit(task, items, label)
        if submitted is None:
            return [task(index, item)
                    for index, item in enumerate(items)]
        pool, futures = submitted
        try:
            return [future.result() for future in futures]
        finally:
            pool.shutdown(wait=True)

    def starmap(self, fn: Callable[..., R],
                argument_tuples: Iterable[Sequence],
                label: str = "map") -> list[R]:
        """``map`` over argument tuples (``fn(*args)`` per item)."""
        return self.map(lambda args: fn(*args), argument_tuples, label)

    def map_profiled(self, fn: Callable[[T, StageProfile], R],
                     items: Iterable[T],
                     profile: StageProfile,
                     label: str = "map", observer=None) -> list[R]:
        """``map`` where each call records stage timings.

        ``fn(item, profile)`` receives the shared ``profile`` directly
        on the serial path; on the parallel path each task writes into
        a private :class:`StageProfile` and the worker profiles are
        merged into ``profile`` in submission order once every task has
        finished — so worker-side timings are never dropped and the
        aggregate is a deterministic function of the per-task numbers.

        When the process backend is live and every item is a
        :class:`~repro.core.procpool.ProcessTask`, the map runs on the
        worker pool instead (``fn`` is bypassed; each task's payload is
        dispatched and its ``fallback`` serves any serial rerun).
        ``observer`` carries the run's trace collector so worker-side
        spans replay into the same tree; thread and serial paths open
        their spans inline and ignore it.
        """
        items = list(items)
        if self.wants_process_tasks and len(items) > 1 and all(
                isinstance(item, ProcessTask) for item in items):
            return run_process_map(self, items, profile, label,
                                   observer)
        if self._force_serial(label) or not self.is_parallel \
                or len(items) <= 1:
            task = self._task_runner(
                lambda index, item: fn(item, profile), label)
            return [task(index, item)
                    for index, item in enumerate(items)]
        partials = [StageProfile() for _ in items]
        task = self._task_runner(
            lambda index, item: fn(item, partials[index]), label)
        metrics = (observer.metrics
                   if observer is not None
                   and observer.metrics.enabled else None)
        if metrics is not None:
            # Same queue-wait telemetry the process backend records:
            # time between submission and a worker picking the task up.
            inner, enqueued = task, \
                time.perf_counter()  # lsd: ignore[wallclock]

            def task(index, item, _inner=inner, _t0=enqueued):
                metrics.histogram(M_POOL_QUEUE_WAIT).observe(
                    time.perf_counter() - _t0)  # lsd: ignore[wallclock]
                return _inner(index, item)
        submitted = self._submit(task, items, label)
        if submitted is None:
            serial_task = self._task_runner(
                lambda index, item: fn(item, profile), label)
            return [serial_task(index, item)
                    for index, item in enumerate(items)]
        pool, futures = submitted
        try:
            results = [future.result() for future in futures]
        finally:
            pool.shutdown(wait=True)
        for partial in partials:
            profile.merge(partial)
        return results

    # ------------------------------------------------------------------
    # resilience plumbing
    # ------------------------------------------------------------------
    def _submit(self, task, items: list, label: str):
        """Start a pool and submit every task.

        Returns ``(pool, futures)``, or ``None`` when the pool itself
        fails — submission-time ``RuntimeError`` means the pool (not a
        task) is broken, so the caller reruns the whole map serially.
        Task-level exceptions surface later through ``future.result()``
        and are never mistaken for pool death.
        """
        pool = None
        try:
            pool = ThreadPoolExecutor(
                max_workers=min(self.workers, len(items)))
            futures = [pool.submit(task, index, item)
                       for index, item in enumerate(items)]
        except RuntimeError:
            if pool is not None:
                pool.shutdown(wait=False)
            self._note_pool_failure(label)
            return None
        return pool, futures

    def _force_serial(self, label: str) -> bool:
        """Hit the pool fault site; True = run this call serially.

        Fired before the workers/size shortcut so the hit count — and
        therefore the recorded degradation — is identical at any
        ``--workers`` setting.
        """
        policy = self.policy
        if policy is None or policy.fault_plan is None:
            return False
        try:
            policy.fault_plan.fire(SITE_EXECUTOR_POOL, label)
        except FaultInjected:
            self._note_pool_failure(label)
            return True
        return False

    def _note_pool_failure(self, label: str) -> None:
        if self.policy is not None:
            self.policy.report.pool_failed(label)

    def _task_runner(self, call, label: str):
        """Wrap ``call(index, item)`` with fault-site hits and retries."""
        policy = self.policy
        if policy is None:
            return call
        plan = policy.fault_plan
        retries = policy.retries
        if plan is None and retries == 0:
            return call

        def task(index: int, item):
            for attempt in range(retries + 1):
                try:
                    if plan is not None:
                        plan.fire(SITE_EXECUTOR_TASK, str(index))
                    result = call(index, item)
                except Exception:
                    if attempt >= retries:
                        if retries:
                            policy.report.retried(
                                label, index, attempt + 1, False)
                        raise
                    self._backoff(label, index, attempt)
                    continue
                if attempt:
                    policy.report.retried(label, index, attempt + 1,
                                          True)
                return result
            raise AssertionError("unreachable")  # pragma: no cover

        return task

    def _backoff(self, label: str, index: int, attempt: int) -> None:
        """Sleep before a retry: seeded exponential backoff with jitter."""
        policy = self.policy
        base = 0.0 if policy is None else policy.backoff
        if base <= 0:
            return
        rng = random.Random(
            f"{policy.backoff_seed}|{label}|{index}|{attempt}")
        time.sleep(min(base * (2 ** attempt) * (0.5 + rng.random()),
                       _MAX_BACKOFF))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "parallel" if self.is_parallel else "serial"
        return f"<ParallelExecutor {mode} workers={self.workers}>"


#: Default target rows per prediction shard; see :func:`shard_bounds`.
#: Sized so small batches stay single-shard — per-shard spans/profiles
#: and the split's dedup bookkeeping only amortize on genuinely large
#: columns. Learners whose prediction cost is per-row (no per-call
#: amortized work) override
#: :attr:`repro.learners.base.BaseLearner.shard_rows` with a finer
#: grain so a parallel map can split them instead of letting one
#: whole-batch task bound the makespan.
SHARD_TARGET_ROWS = 2048
#: Ceiling on prediction shards per batch.
MAX_SHARDS = 8


class ShardScale:
    """Memory-pressure shard-grain scale (thread-safe).

    The pressure monitor (:mod:`repro.runtime.pressure`) halves the
    effective shard grain — doubling this factor — so per-task peak
    memory shrinks under RSS pressure. Learner scoring is row-wise by
    the :class:`~repro.learners.base.BaseLearner` contract, so a finer
    shard plan changes concatenation boundaries and trace shape only,
    never pipeline output. Registered in
    :data:`repro.runtime.checkpoint.REGISTERED_MUTABLE_STATE`: a
    resumed run safely starts back at factor 1.
    """

    __slots__ = ("_factor", "_lock")

    _MAX_FACTOR = 16

    def __init__(self) -> None:
        self._factor = 1
        self._lock = threading.Lock()

    @property
    def factor(self) -> int:
        return self._factor

    def halve(self) -> int:
        """Halve the shard grain once more; returns the new factor."""
        with self._lock:
            self._factor = min(self._factor * 2, self._MAX_FACTOR)
            return self._factor

    def reset(self) -> None:
        with self._lock:
            self._factor = 1


#: The process-wide shard-grain scale; factor 1 (the default) keeps
#: :func:`shard_bounds` the documented pure function of the batch size.
SHARD_SCALE = ShardScale()


def shard_bounds(n: int, target: int = SHARD_TARGET_ROWS,
                 max_shards: int = MAX_SHARDS) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` shards covering an ``n``-row batch.

    The plan is a pure function of ``n`` — never of the worker count —
    so a sharded fan-out stays byte-identical at any parallelism (the
    determinism sanitizer diffs workers 1 vs N, including the trace
    shape). Shards are near-equal, earlier shards taking the remainder,
    and an empty batch yields the single empty shard ``[(0, 0)]`` so
    callers still fan out one task per unit of work.

    Exception to purity: under memory pressure :data:`SHARD_SCALE`
    tightens the grain (see :class:`ShardScale`) — outputs stay
    byte-identical, only task granularity and trace shape change.
    """
    if n <= 0:
        return [(0, 0)]
    scale = SHARD_SCALE.factor
    if scale > 1:
        target = max(1, target // scale)
        max_shards = max_shards * scale
    shards = min(max_shards, max(1, -(-n // target)))
    base, remainder = divmod(n, shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < remainder else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def split_round_robin(items: Iterable[T], parts: int) -> list[list[T]]:
    """Deal ``items`` round-robin into at most ``parts`` lists.

    Every list preserves the original relative order (so a cost-sorted
    input stays cost-sorted within each part), empty lists are dropped,
    and the result is a function of ``(items, parts)`` only — the
    constraint handler's root-split leans on both properties for its
    byte-identical-at-any-worker-count contract.
    """
    items = list(items)
    parts = max(1, min(int(parts), len(items)))
    dealt = [items[start::parts] for start in range(parts)]
    return [part for part in dealt if part]


#: The shared serial executor — the default everywhere an executor is
#: optional, so existing call sites keep their exact behaviour.
SERIAL = ParallelExecutor(1)


def resolve(executor: ParallelExecutor | None) -> ParallelExecutor:
    """``executor`` or the serial default."""
    return executor if executor is not None else SERIAL
