"""Deterministic fan-out for learner prediction and cross-validation.

:class:`ParallelExecutor` is the one concurrency primitive the pipelines
use: an order-preserving ``map`` over a thread pool, with a serial
fallback when ``workers <= 1`` (or when there is nothing to fan out).
Results always come back in submission order, so a pipeline wired
through an executor produces byte-identical output at any worker count —
the determinism tests pin this.

Threads, not processes, on purpose:

* the learners share the per-instance feature cache
  (:mod:`repro.core.featurize`); worker processes would pickle every
  instance per call and forfeit the sharing that makes matching fast;
* the hot kernels (scipy sparse products, dense solves) release the GIL,
  and the pure-Python featurization work is done once up front;
* learners hold closures and live object graphs that are awkward to
  ship across process boundaries.

The pool is created per ``map`` call: the workloads here are chunky
(one task trains or predicts a whole learner), so pool start-up cost is
noise, and no idle threads linger between pipeline phases.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from ..observability import StageProfile

T = TypeVar("T")
R = TypeVar("R")


class ParallelExecutor:
    """Order-preserving parallel ``map`` with a serial fallback."""

    def __init__(self, workers: int = 1) -> None:
        """``workers <= 1`` selects the deterministic serial path."""
        self.workers = max(1, int(workers))

    @property
    def is_parallel(self) -> bool:
        return self.workers > 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item; results in submission order.

        Exceptions propagate exactly as in the serial path: the first
        failing item (in submission order) raises.
        """
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(
                max_workers=min(self.workers, len(items))) as pool:
            return list(pool.map(fn, items))

    def starmap(self, fn: Callable[..., R],
                argument_tuples: Iterable[Sequence]) -> list[R]:
        """``map`` over argument tuples (``fn(*args)`` per item)."""
        return self.map(lambda args: fn(*args), argument_tuples)

    def map_profiled(self, fn: Callable[[T, StageProfile], R],
                     items: Iterable[T],
                     profile: StageProfile) -> list[R]:
        """``map`` where each call records stage timings.

        ``fn(item, profile)`` receives the shared ``profile`` directly
        on the serial path; on the parallel path each task writes into
        a private :class:`StageProfile` and the worker profiles are
        merged into ``profile`` in submission order once every task has
        finished — so worker-side timings are never dropped and the
        aggregate is a deterministic function of the per-task numbers.
        """
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item, profile) for item in items]
        partials = [StageProfile() for _ in items]
        with ThreadPoolExecutor(
                max_workers=min(self.workers, len(items))) as pool:
            results = list(pool.map(lambda pair: fn(*pair),
                                    zip(items, partials)))
        for partial in partials:
            profile.merge(partial)
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "parallel" if self.is_parallel else "serial"
        return f"<ParallelExecutor {mode} workers={self.workers}>"


def split_round_robin(items: Iterable[T], parts: int) -> list[list[T]]:
    """Deal ``items`` round-robin into at most ``parts`` lists.

    Every list preserves the original relative order (so a cost-sorted
    input stays cost-sorted within each part), empty lists are dropped,
    and the result is a function of ``(items, parts)`` only — the
    constraint handler's root-split leans on both properties for its
    byte-identical-at-any-worker-count contract.
    """
    items = list(items)
    parts = max(1, min(int(parts), len(items)))
    dealt = [items[start::parts] for start in range(parts)]
    return [part for part in dealt if part]


#: The shared serial executor — the default everywhere an executor is
#: optional, so existing call sites keep their exact behaviour.
SERIAL = ParallelExecutor(1)


def resolve(executor: ParallelExecutor | None) -> ParallelExecutor:
    """``executor`` or the serial default."""
    return executor if executor is not None else SERIAL
