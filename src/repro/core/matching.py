"""The matching phase (§3.2): classify a new source's tags.

Pipeline for a target source:

1. extract one instance column per source tag;
2. apply every base learner to every instance, combine per-instance
   predictions with the meta-learner, and collapse each column with the
   prediction converter;
3. (structure pass) derive preliminary per-tag labels, expose them to the
   XML learner as child labels, and re-run the learners that use them;
4. hand the per-tag predictions to the constraint handler, which returns
   the least-cost 1-1 mapping (or argmax when no handler is configured).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..constraints.base import Constraint, MatchContext
from ..constraints.handler import ConstraintHandler
from ..learners.base import BaseLearner
from ..learners.meta import StackingMetaLearner
from ..xmlio import Element
from .converter import PredictionConverter
from .instance import (ElementInstance, InstanceColumn, extract_columns,
                       fill_child_labels)
from .labels import LabelSpace
from .mapping import Mapping
from .prediction import Prediction
from .schema import SourceSchema


@dataclass
class MatchResult:
    """Everything the matching phase produced for one source."""

    mapping: Mapping
    tag_scores: dict[str, np.ndarray]
    space: LabelSpace
    columns: dict[str, InstanceColumn]
    context: MatchContext
    timings: dict[str, float] = field(default_factory=dict)

    def prediction_for(self, tag: str) -> Prediction:
        """The converter's prediction for one source tag."""
        return Prediction(self.space, self.tag_scores[tag])

    def top_candidates(self, tag: str, k: int = 3
                       ) -> list[tuple[str, float]]:
        """The k best labels for a tag, with scores."""
        return self.prediction_for(tag).top_k(k)

    def ambiguous_tags(self, threshold: float = 0.1) -> list[str]:
        """Tags whose best-vs-second margin is below ``threshold`` —
        the natural targets for user feedback."""
        return [tag for tag in self.tag_scores
                if self.prediction_for(tag).margin() < threshold]


def match_source(schema: SourceSchema, listings: Sequence[Element],
                 learners: list[BaseLearner], meta: StackingMetaLearner,
                 converter: PredictionConverter,
                 handler: ConstraintHandler | None, space: LabelSpace,
                 extra_constraints: Sequence[Constraint] = (),
                 max_instances_per_tag: int | None = None,
                 structure_passes: int = 1,
                 score_filter=None) -> MatchResult:
    """Run the full matching pipeline; see module docstring.

    ``score_filter(tag_scores, columns) -> tag_scores`` runs between the
    prediction converter and the constraint handler — the hook the §7
    type-compatibility pruner uses.
    """
    timings: dict[str, float] = {}

    start = time.perf_counter()
    columns = extract_columns(schema, list(listings),
                              max_instances_per_tag)
    timings["extract"] = time.perf_counter() - start

    # Flatten instances so each learner predicts one batch.
    tags = list(columns)
    flat: list[ElementInstance] = []
    slices: dict[str, slice] = {}
    for tag in tags:
        begin = len(flat)
        flat.extend(columns[tag].instances)
        slices[tag] = slice(begin, len(flat))

    start = time.perf_counter()
    tag_scores = _predict_tags(flat, slices, columns, learners, meta,
                               converter, space, structure_passes)
    if score_filter is not None:
        tag_scores = score_filter(tag_scores, columns)
    timings["predict"] = time.perf_counter() - start

    ctx = MatchContext(schema, columns)
    start = time.perf_counter()
    if handler is None:
        mapping = Mapping({
            tag: space.label_at(int(np.argmax(row)))
            for tag, row in tag_scores.items()})
    else:
        mapping = handler.find_mapping(tag_scores, space, ctx,
                                       extra_constraints)
    timings["constraints"] = time.perf_counter() - start

    return MatchResult(mapping, tag_scores, space, columns, ctx, timings)


def _predict_tags(flat: list[ElementInstance], slices: dict[str, slice],
                  columns: dict[str, InstanceColumn],
                  learners: list[BaseLearner], meta: StackingMetaLearner,
                  converter: PredictionConverter, space: LabelSpace,
                  structure_passes: int) -> dict[str, np.ndarray]:
    """Per-tag converted scores, with optional structure re-passes."""
    scores_by_learner = {
        learner.name: learner.predict_scores(flat) for learner in learners}
    tag_scores = _convert(scores_by_learner, slices, meta, converter,
                          space)

    structural = [lrn for lrn in learners if lrn.uses_child_labels]
    for _ in range(structure_passes if structural else 0):
        preliminary = {
            tag: space.label_at(int(np.argmax(row)))
            for tag, row in tag_scores.items()}
        fill_child_labels(columns, preliminary)
        for learner in structural:
            scores_by_learner[learner.name] = learner.predict_scores(flat)
        tag_scores = _convert(scores_by_learner, slices, meta, converter,
                              space)
    return tag_scores


def _convert(scores_by_learner: dict[str, np.ndarray],
             slices: dict[str, slice], meta: StackingMetaLearner,
             converter: PredictionConverter,
             space: LabelSpace) -> dict[str, np.ndarray]:
    combined = meta.combine(scores_by_learner) if scores_by_learner else \
        np.zeros((0, len(space)))
    return {
        tag: converter.convert(combined[piece])
        for tag, piece in slices.items()
    }
