"""The matching phase (§3.2): classify a new source's tags.

Pipeline for a target source:

1. extract one instance column per source tag;
2. apply every base learner to every instance, combine per-instance
   predictions with the meta-learner, and collapse each column with the
   prediction converter;
3. (structure pass) derive preliminary per-tag labels, expose them to the
   XML learner as child labels, and re-run the learners that use them;
4. hand the per-tag predictions to the constraint handler, which returns
   the least-cost 1-1 mapping (or argmax when no handler is configured).

Throughput engineering (the high-traffic ROADMAP goal):

* base-learner prediction fans out across a :class:`ParallelExecutor`
  (order-preserving, so any worker count is byte-identical to serial);
* instances are featurized once via :mod:`repro.core.featurize` and the
  learners share the cache;
* structure passes are *incremental*: only learners with
  ``uses_child_labels`` re-predict, and only for the instances whose
  ``child_labels`` actually changed since the previous pass — a pass
  that changes nothing is skipped entirely (fixed point). This relies on
  the :class:`~repro.learners.base.BaseLearner` contract that
  ``predict_scores`` rows depend only on their own instance;
* every stage reports into a :class:`StageProfile`
  (``MatchResult.profile``), with per-learner timings and cache/instance
  counters; ``MatchResult.timings`` keeps the flat
  extract/predict/constraints view for backward compatibility.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..constraints.base import Constraint, MatchContext
from ..constraints.handler import ConstraintHandler
from ..learners.base import BaseLearner
from ..learners.meta import StackingMetaLearner
from ..observability import (Observer, QualityRecord, StageProfile,
                             build_quality_records, resolve_observer)
from ..observability.events import (EV_CHECKPOINT, EV_DEGRADATION,
                                    EV_RESUME, EV_SHARD_COMPLETE,
                                    EV_STAGE_END, EV_STAGE_START)
from ..observability.metrics import (M_ANYTIME_EXITS, M_CACHE_HIT_RATIO,
                                     M_CACHE_HITS, M_CACHE_MISSES,
                                     M_CKPT_STAGES_RESUMED,
                                     M_CKPT_WRITES, M_COLUMN_SIZE,
                                     M_FAULTS_FIRED, M_INSTANCES,
                                     M_LEARNERS_QUARANTINED,
                                     M_LISTINGS_DROPPED,
                                     M_LISTINGS_RECOVERED,
                                     M_POOL_FAILURES, M_PREDICT_LATENCY,
                                     M_STRUCTURE_PASSES,
                                     M_STRUCTURE_REPREDICTED, M_TAGS,
                                     M_TASK_RETRIES, SIZE_BUCKETS)
from ..resilience.faults import FaultInjected
from ..resilience.policy import (Deadline, DegradationReport,
                                 ResiliencePolicy, call_with_timeout)
from ..resilience.sites import SITE_LEARNER_PREDICT, SITE_SEARCH_ROOT
from ..xmlio import Element
from . import featurize
from .converter import PredictionConverter
from .instance import (ElementInstance, InstanceColumn, extract_columns,
                       fill_child_labels)
from .labels import LabelSpace
from .mapping import Mapping
from .parallel import ParallelExecutor, resolve, shard_bounds
from .prediction import Prediction
from .procpool import ProcessTask, TaskFailure
from .schema import SourceSchema


@dataclass
class MatchResult:
    """Everything the matching phase produced for one source."""

    mapping: Mapping
    tag_scores: dict[str, np.ndarray]
    space: LabelSpace
    columns: dict[str, InstanceColumn]
    context: MatchContext
    timings: dict[str, float] = field(default_factory=dict)
    #: Per-stage instrumentation: nested timers (dotted paths) plus
    #: instance and cache-hit counters. ``timings`` above is the flat
    #: legacy view of the same run.
    profile: StageProfile = field(default_factory=StageProfile)
    #: Per-column quality telemetry (one record per source tag), filled
    #: only when the run's observer collects quality — see
    #: :mod:`repro.observability.quality`.
    quality: list[QualityRecord] = field(default_factory=list)
    #: The run's degradation account (quarantines, retries, salvage…)
    #: when a :class:`~repro.resilience.ResiliencePolicy` was active;
    #: ``None`` on the legacy policy-free path.
    degradation: DegradationReport | None = None
    #: True when the constraint search hit its deadline and returned
    #: the best mapping found so far rather than a proven optimum.
    anytime: bool = False

    def prediction_for(self, tag: str) -> Prediction:
        """The converter's prediction for one source tag."""
        return Prediction(self.space, self.tag_scores[tag])

    def top_candidates(self, tag: str, k: int = 3
                       ) -> list[tuple[str, float]]:
        """The k best labels for a tag, with scores."""
        return self.prediction_for(tag).top_k(k)

    def ambiguous_tags(self, threshold: float = 0.1) -> list[str]:
        """Tags whose best-vs-second margin is below ``threshold`` —
        the natural targets for user feedback."""
        return [tag for tag in self.tag_scores
                if self.prediction_for(tag).margin() < threshold]


def match_source(schema: SourceSchema, listings: Sequence[Element],
                 learners: list[BaseLearner], meta: StackingMetaLearner,
                 converter: PredictionConverter,
                 handler: ConstraintHandler | None, space: LabelSpace,
                 extra_constraints: Sequence[Constraint] = (),
                 max_instances_per_tag: int | None = None,
                 structure_passes: int = 1,
                 score_filter=None,
                 executor: ParallelExecutor | None = None,
                 incremental_structure: bool = True,
                 observer: Observer | None = None,
                 policy: ResiliencePolicy | None = None,
                 checkpoint=None) -> MatchResult:
    """Run the full matching pipeline; see module docstring.

    ``score_filter(tag_scores, columns) -> tag_scores`` runs between the
    prediction converter and the constraint handler — the hook the §7
    type-compatibility pruner uses.

    ``executor`` fans learner prediction out across workers (serial by
    default). ``incremental_structure=False`` forces every structure
    pass to re-predict all instances — the pre-cache behaviour, kept so
    the benchmark harness can measure the baseline.

    ``observer`` receives trace spans, metrics, and (when enabled)
    per-column quality records; the disabled default costs nothing.
    The span tree, metric counts, and quality records are a function of
    the inputs only — identical at any worker count.

    ``policy`` arms fault tolerance: a base learner whose prediction
    raises (or times out) is quarantined instead of crashing the run,
    the meta weights renormalize over the survivors, and the constraint
    search honours the policy's deadline (returning a best-so-far
    mapping flagged ``anytime``). Without a policy, errors propagate
    exactly as before.

    ``checkpoint`` (an opened :class:`repro.runtime.Checkpointer`)
    arms crash-safe stage snapshots: a stage whose checkpoint is
    already on disk loads instead of recomputing, per-learner score
    matrices and the search's best-so-far incumbent persist as they
    complete, and the final mapping is committed before the function
    returns. The resume contract is byte identity: a run killed at any
    stage boundary and resumed produces exactly the mapping, scores
    and quality records of one uninterrupted run (structure passes and
    the converter re-run deterministically from the persisted pass-0
    matrices). ``None`` — the default — costs nothing.
    """
    executor = resolve(executor)
    obs = resolve_observer(observer)
    profile = StageProfile()
    cache_before = featurize.stats.snapshot()
    deadline = policy.start_deadline() if policy is not None else None

    events = obs.events
    with obs.trace.span("match") as match_span:
        events.emit(EV_STAGE_START, stage="extract")
        # Extraction always runs — the extract checkpoint persists
        # provenance, not payload, because columns re-derive from the
        # durable inputs faster than a serialized form loads (see
        # repro.runtime.checkpoint). A resumed attempt skips only the
        # marker re-commit.
        with profile.stage("extract"), obs.trace.span("extract"):
            columns = extract_columns(schema, list(listings),
                                      max_instances_per_tag)
        if checkpoint is not None and checkpoint.save_columns(columns):
            obs.metrics.counter(M_CKPT_WRITES).inc()
            events.emit(EV_CHECKPOINT, stage="extract")
        events.emit(EV_STAGE_END, stage="extract",
                    elapsed_seconds=profile.seconds("extract"))

        # Flatten instances so each learner predicts one batch.
        tags = list(columns)
        flat: list[ElementInstance] = []
        slices: dict[str, slice] = {}
        column_sizes = obs.metrics.histogram(M_COLUMN_SIZE, SIZE_BUCKETS)
        for tag in tags:
            begin = len(flat)
            flat.extend(columns[tag].instances)
            slices[tag] = slice(begin, len(flat))
            column_sizes.observe(len(columns[tag].instances))
        profile.count("instances", len(flat))
        profile.count("tags", len(tags))
        obs.metrics.counter(M_INSTANCES).inc(len(flat))
        obs.metrics.counter(M_TAGS).inc(len(tags))
        match_span.set_attribute("tags", len(tags))
        match_span.set_attribute("instances", len(flat))

        events.emit(EV_STAGE_START, stage="predict")
        with profile.stage("predict"), obs.trace.span("predict") \
                as predict_span:
            scores_by_learner, tag_scores = _predict_tags(
                flat, slices, columns, learners, meta, converter, space,
                structure_passes, executor, profile,
                incremental_structure, obs, predict_span.span_id,
                policy, checkpoint)
            converted_scores = tag_scores
            if score_filter is not None:
                with profile.stage("predict.score_filter"), \
                        obs.trace.span("score_filter"):
                    tag_scores = score_filter(tag_scores, columns)
        predict_elapsed = profile.seconds("predict")
        events.emit(EV_STAGE_END, stage="predict",
                    elapsed_seconds=predict_elapsed, items=len(flat),
                    items_per_second=(len(flat) / predict_elapsed
                                      if predict_elapsed else 0.0))

        ctx = MatchContext(schema, columns)
        if policy is not None:
            try:
                policy.fire(SITE_SEARCH_ROOT, "search")
            except FaultInjected:
                # The documented semantics of this site: force the
                # search onto its anytime best-so-far path.
                deadline = Deadline(0.0)
        events.emit(EV_STAGE_START, stage="constrain")
        with profile.stage("constrain"), obs.trace.span("constrain"):
            saved_mapping = checkpoint.load_mapping() \
                if checkpoint is not None else None
            if saved_mapping is not None:
                mapping = Mapping(saved_mapping)
                events.emit(EV_RESUME, stage="constrain")
                obs.metrics.counter(M_CKPT_STAGES_RESUMED).inc()
            elif handler is None:
                mapping = Mapping({
                    tag: space.label_at(int(np.argmax(row)))
                    for tag, row in tag_scores.items()})
            else:
                mapping = handler.find_mapping(
                    tag_scores, space, ctx, extra_constraints,
                    executor=executor, profile=profile, observer=obs,
                    deadline=deadline,
                    report=policy.report if policy is not None
                    else None,
                    warm_start=checkpoint.load_incumbent()
                    if checkpoint is not None else None,
                    snapshot=checkpoint.save_incumbent
                    if checkpoint is not None else None)
            if saved_mapping is None and checkpoint is not None \
                    and checkpoint.save_mapping(
                        {tag: mapping.label_of(tag) for tag in mapping}):
                obs.metrics.counter(M_CKPT_WRITES).inc()
                events.emit(EV_CHECKPOINT, stage="constrain")
        events.emit(EV_STAGE_END, stage="constrain",
                    elapsed_seconds=profile.seconds("constrain"),
                    items=len(tags))

        quality: list[QualityRecord] = []
        if obs.collect_quality:
            with obs.trace.span("quality"):
                quality = build_quality_records(
                    tags, slices, scores_by_learner, converter, meta,
                    space, converted_scores, mapping)

    hits, misses = featurize.stats.snapshot()
    hits -= cache_before[0]
    misses -= cache_before[1]
    profile.count("cache_hits", hits)
    profile.count("cache_misses", misses)
    obs.metrics.counter(M_CACHE_HITS).inc(hits)
    obs.metrics.counter(M_CACHE_MISSES).inc(misses)
    if hits + misses:
        obs.metrics.gauge(M_CACHE_HIT_RATIO).set(hits / (hits + misses))
    timings = {
        "extract": profile.seconds("extract"),
        "predict": profile.seconds("predict"),
        "constraints": profile.seconds("constrain"),
    }
    degradation = policy.finalize() if policy is not None else None
    if degradation is not None and degradation.degraded:
        # Emitted only when non-zero, so a clean run's metric set (and
        # therefore its report) is byte-identical to a policy-free run.
        _emit_degradation_metrics(degradation, obs)
        events.emit(EV_DEGRADATION,
                    reason=_degradation_reason(degradation))
    return MatchResult(mapping, tag_scores, space, columns, ctx, timings,
                       profile, quality,
                       degradation=degradation,
                       anytime=degradation.anytime
                       if degradation is not None else False)


def _degradation_reason(degradation: DegradationReport) -> str:
    """A one-line human summary for the degradation progress event."""
    parts = []
    if degradation.quarantines:
        parts.append(f"{len(degradation.quarantined_learners)} "
                     "learner(s) quarantined")
    if degradation.retries:
        parts.append(f"{len(degradation.retries)} task retries")
    if degradation.pool_failures:
        parts.append("worker pool fell back to serial")
    if degradation.anytime:
        parts.append("constraint search ended early by deadline")
    recovery = degradation.recovery
    if recovery is not None and (recovery.recovered or
                                 recovery.dropped):
        parts.append(f"listings recovered={len(recovery.recovered)} "
                     f"dropped={len(recovery.dropped)}")
    if degradation.fired_faults:
        parts.append(f"{len(degradation.fired_faults)} injected "
                     "fault(s) fired")
    return "; ".join(parts) or "degraded"


def _emit_degradation_metrics(degradation: DegradationReport,
                              obs: Observer) -> None:
    """Fold a run's degradation account into the metrics registry."""
    metrics = obs.metrics
    if degradation.quarantines:
        metrics.counter(M_LEARNERS_QUARANTINED).inc(
            len(degradation.quarantined_learners))
    if degradation.retries:
        metrics.counter(M_TASK_RETRIES).inc(len(degradation.retries))
    if degradation.pool_failures:
        metrics.counter(M_POOL_FAILURES).inc(
            len(degradation.pool_failures))
    if degradation.anytime:
        metrics.counter(M_ANYTIME_EXITS).inc()
    if degradation.fired_faults:
        metrics.counter(M_FAULTS_FIRED).inc(
            len(degradation.fired_faults))
    recovery = degradation.recovery
    if recovery is not None:
        if recovery.recovered:
            metrics.counter(M_LISTINGS_RECOVERED).inc(
                len(recovery.recovered))
        if recovery.dropped:
            metrics.counter(M_LISTINGS_DROPPED).inc(
                len(recovery.dropped))


# A learner whose prediction raises under an active resilience policy
# comes back through the executor as a TaskFailure value rather than an
# exception — every healthy learner still returns its scores, and
# quarantines are recorded by the main thread in learner-submission
# order. TaskFailure (repro.core.procpool) carries only the two strings
# the quarantine record needs, so thread-side and process-side failures
# produce byte-identical degradation reports.


def _predict_tags(flat: list[ElementInstance], slices: dict[str, slice],
                  columns: dict[str, InstanceColumn],
                  learners: list[BaseLearner], meta: StackingMetaLearner,
                  converter: PredictionConverter, space: LabelSpace,
                  structure_passes: int, executor: ParallelExecutor,
                  profile: StageProfile, incremental: bool,
                  obs: Observer, predict_span_id: str | None,
                  policy: ResiliencePolicy | None = None,
                  checkpoint=None
                  ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
    """Per-learner flat score matrices and per-tag converted scores,
    with optional structure re-passes.

    Fan-out cuts the flat batch into contiguous shards
    (:func:`~repro.core.parallel.shard_bounds`, a pure function of the
    batch size — never the worker count) at each learner's declared
    grain (:attr:`~repro.learners.base.BaseLearner.shard_rows`), and
    the task grid is the union of the per-learner ``learner × shards``
    rows, so one expensive learner no longer serialises the whole
    predict stage behind a single task. Learner scoring is row-wise by
    the :class:`~repro.learners.base.BaseLearner` contract, so
    concatenating per-shard score blocks is byte-identical to one
    whole-batch call at any worker count.

    Worker-side stage timings record into per-task profiles and merge
    back (``map_profiled``); trace spans opened on worker threads name
    the predict span as their explicit parent, and shard spans carry
    their shard index in the name (single-shard batches keep the legacy
    ``learner.<name>`` span), so the trace tree is the same at any
    worker count. Each (learner, shard) task contributes ``len(batch)``
    observations of its mean per-instance latency to the
    prediction-latency histogram — O(learners × shards) timer reads,
    not O(instances).

    With an active ``policy``, a learner whose prediction raises or
    times out in *any* shard comes back as a :class:`TaskFailure`
    and is quarantined for the rest of the run; the meta-learner
    renormalizes over the survivors (uniform scores if none survive).
    The ``learner.predict`` fault site fires once per learner per pass
    (on its first shard), exactly as it did before sharding.

    With a ``checkpoint``, each learner's pass-0 matrix is persisted
    as its gather completes — gather always happens here on the
    orchestrating thread, so the persisted bytes are identical on
    every backend — and learners already on disk are dropped from the
    fan-out on resume (per-learner shard plans make each learner's
    scores independent of the group it runs with). Structure passes
    are never persisted: they re-run deterministically from the pass-0
    matrices, which is what keeps a resumed run byte-identical.
    """
    latency = obs.metrics.histogram(M_PREDICT_LATENCY)

    def predict_with(learner: BaseLearner,
                     batch: list[ElementInstance],
                     prof: StageProfile, shard: int, n_shards: int):
        span_name = (f"learner.{learner.name}" if n_shards == 1
                     else f"learner.{learner.name}.s{shard}")
        with prof.stage(f"predict.learner.{learner.name}"), \
                obs.trace.span(span_name, parent=predict_span_id,
                               instances=len(batch)):
            # Observability instrumentation: the timer feeds the
            # prediction-latency histogram, never pipeline output.
            start = time.perf_counter()  # lsd: ignore[wallclock]
            if policy is None:
                scores = learner.predict_scores(batch)
            else:
                try:
                    if shard == 0:
                        policy.fire(SITE_LEARNER_PREDICT, learner.name)
                    scores = call_with_timeout(
                        learner.predict_scores, (batch,),
                        policy.learner_timeout)
                except Exception as exc:  # lsd: ignore[blind-except]
                    # Quarantine boundary: any learner failure becomes
                    # a sentinel the main thread records in submission
                    # order — degradation, not a crash.
                    return TaskFailure.from_exception(exc)
            elapsed = time.perf_counter() - start  # lsd: ignore[wallclock]
        if batch:
            latency.observe(elapsed / len(batch), count=len(batch))
        return scores

    def duplicate_order(batch: list[ElementInstance]) -> np.ndarray \
            | None:
        """Stable permutation clustering duplicate instances together.

        Shards are contiguous ranges, so without this each shard
        re-scores the distinct values it shares with the others — the
        learners' distinct-key dedup only sees one shard at a time.
        Grouping equal ``(tag, path, text)`` instances (a refinement of
        every learner's dedup key that depends on the text) keeps each
        distinct value inside one shard. A pure function of the batch
        content — never the worker count — so the shard plan, trace
        shape and outputs stay identical at any parallelism. Scores are
        un-permuted before anything consumes them, and learner scoring
        is row-wise, so the reordering is output-invisible.
        """
        if len(batch) <= 1:
            return None
        seen: dict = {}
        groups = np.empty(len(batch), dtype=np.intp)
        for position, instance in enumerate(batch):
            key = (instance.tag, instance.path,
                   featurize.instance_text(instance))
            group = seen.get(key)
            if group is None:
                group = seen[key] = len(seen)
            groups[position] = group
        if len(seen) == len(batch):
            return None
        return np.argsort(groups, kind="stable")

    def observe_latency(elapsed: float, n_rows: int) -> None:
        latency.observe(elapsed / n_rows, count=n_rows)

    def build_process_tasks(shard_batch: list[ElementInstance],
                            group: list[BaseLearner],
                            plans: list[list[tuple[int, int]]]) -> list:
        """The (learner × shard) grid as :class:`ProcessTask`
        descriptors for the process backend — same shape, same span
        names, same fault gates as the closure grid below; each task's
        ``fallback`` is exactly the thread-path call, which is what
        keeps serial reruns and pool-death recovery byte-identical."""
        tasks = []
        for learner, bounds in zip(group, plans):
            n_shards = len(bounds)
            for shard, (start, stop) in enumerate(bounds):
                span_name = (f"learner.{learner.name}" if n_shards == 1
                             else f"learner.{learner.name}.s{shard}")
                tasks.append(ProcessTask(
                    payload={
                        "kind": "predict",
                        "learner": learner.name,
                        "start": start, "stop": stop,
                        "catch": policy is not None,
                        "timeout": policy.learner_timeout
                        if policy is not None else None,
                    },
                    batch=shard_batch,
                    fallback=(lambda prof, learner=learner,
                              start=start, stop=stop, shard=shard,
                              n_shards=n_shards:
                              predict_with(learner,
                                           shard_batch[start:stop],
                                           prof, shard, n_shards)),
                    span_name=span_name,
                    span_parent=predict_span_id,
                    rows=stop - start,
                    fire=((SITE_LEARNER_PREDICT, learner.name)
                          if policy is not None and shard == 0
                          else None),
                    on_done=observe_latency if stop > start else None,
                ))
        return tasks

    def fan_out(batch: list[ElementInstance],
                group: list[BaseLearner], label: str) -> list:
        """Sharded (learner × shard) fan-out over ``batch``.

        Returns one entry per learner of ``group``: the concatenated
        score matrix (in ``batch`` order), or a
        :class:`TaskFailure` if any of the learner's shards failed.

        Each learner gets its own shard plan at the grain it declares
        (:attr:`~repro.learners.base.BaseLearner.shard_rows`): learners
        with per-call amortized costs stay coarse while per-row
        learners split finely, so a parallel map balances its makespan
        without taxing the serial path. Every plan is a pure function
        of the batch size, never of the worker count or backend.
        """
        plans = [shard_bounds(len(batch), target=learner.shard_rows)
                 if getattr(learner, "shard_rows", None)
                 else shard_bounds(len(batch))
                 for learner in group]
        # A single shard already dedups globally; only a real split
        # needs duplicates clustered into one shard.
        order = duplicate_order(batch) \
            if any(len(plan) > 1 for plan in plans) \
            and featurize.is_enabled() else None
        if order is None:
            shard_batch = batch
            inverse = None
        else:
            shard_batch = [batch[i] for i in order]
            inverse = np.empty(len(batch), dtype=np.intp)
            inverse[order] = np.arange(len(batch))
        if executor.wants_process_tasks:
            tasks = build_process_tasks(shard_batch, group, plans)
            pieces = executor.map_profiled(
                lambda task, prof: task.fallback(prof),
                tasks, profile, label=label, observer=obs)
            grid = [(task.span_name, task.rows) for task in tasks]
        else:
            tasks = [(learner, shard, start, stop, len(bounds))
                     for learner, bounds in zip(group, plans)
                     for shard, (start, stop) in enumerate(bounds)]
            pieces = executor.map_profiled(
                lambda task, prof: predict_with(
                    task[0], shard_batch[task[2]:task[3]], prof,
                    task[1], task[4]),
                tasks, profile, label=label, observer=obs)
            grid = [(f"learner.{learner.name}" if n_shards == 1
                     else f"learner.{learner.name}.s{shard}",
                     stop - start)
                    for learner, shard, start, stop, n_shards in tasks]
        if obs.events.enabled:
            # Heartbeats in submission order — a deterministic function
            # of the task grid, identical at any worker count.
            for index, (name, n_rows) in enumerate(grid):
                obs.events.emit(EV_SHARD_COMPLETE, stage=label,
                                label=name, index=index,
                                shards=len(grid), rows=n_rows)
        gathered: list = []
        offset = 0
        for bounds in plans:
            blocks = pieces[offset:offset + len(bounds)]
            offset += len(bounds)
            failure = next((b for b in blocks
                            if isinstance(b, TaskFailure)), None)
            if failure is not None:
                gathered.append(failure)
                continue
            scores = (blocks[0] if len(blocks) == 1
                      else np.concatenate(blocks, axis=0))
            gathered.append(scores if inverse is None
                            else scores[inverse])
        return gathered

    def quarantine(learner: BaseLearner, failure: TaskFailure) -> None:
        assert policy is not None
        policy.report.quarantine(
            learner.name, "predict", failure.cause,
            failure.error_type)
        scores_by_learner.pop(learner.name, None)

    # Pre-fill the shared text cache on the orchestrating thread: every
    # learner's distinct-key grouping reads the subtree text, so the
    # pure-Python tree walks happen exactly once per instance instead
    # of racing to fill the same slots from several worker threads.
    # Pure warming — outputs are unchanged.
    if featurize.is_enabled():
        with profile.stage("predict.featurize_warm"):
            featurize.warm_texts(flat)
    preloaded: dict[str, np.ndarray] = {}
    if checkpoint is not None:
        names = {learner.name for learner in learners}
        preloaded = {name: scores for name, scores
                     in checkpoint.load_scores(len(flat)).items()
                     if name in names}
    pending = [learner for learner in learners
               if learner.name not in preloaded]
    rows = fan_out(flat, pending, "predict") if pending else []
    fresh = {learner.name: scores
             for learner, scores in zip(pending, rows)}
    scores_by_learner: dict[str, np.ndarray] = {}
    for learner in learners:
        scores = preloaded.get(learner.name)
        if scores is None:
            scores = fresh.get(learner.name)
        if scores is not None and not isinstance(scores, TaskFailure):
            scores_by_learner[learner.name] = scores
    for learner in pending:
        failure = fresh.get(learner.name)
        if isinstance(failure, TaskFailure):
            quarantine(learner, failure)
    if checkpoint is not None:
        if not pending and checkpoint.has("predict"):
            obs.events.emit(EV_RESUME, stage="predict")
            obs.metrics.counter(M_CKPT_STAGES_RESUMED).inc()
        else:
            for learner in pending:
                scores = scores_by_learner.get(learner.name)
                if scores is not None and checkpoint. \
                        save_learner_scores(learner.name, scores):
                    obs.metrics.counter(M_CKPT_WRITES).inc()
            checkpoint.commit_predict()
            obs.events.emit(EV_CHECKPOINT, stage="predict")
    tag_scores = _convert(scores_by_learner, slices, meta, converter,
                          space, profile, obs, len(flat))

    applied: dict[str, str] | None = None  # labels last written into
    # the instances' child_labels; None = nothing applied yet.
    has_structural = any(lrn.uses_child_labels for lrn in learners)
    for _ in range(structure_passes if has_structural else 0):
        # Quarantined learners drop out of the structural set too.
        structural = [lrn for lrn in learners
                      if lrn.uses_child_labels
                      and lrn.name in scores_by_learner]
        if not structural:
            break
        preliminary = {
            tag: space.label_at(int(np.argmax(row)))
            for tag, row in tag_scores.items()}
        if preliminary == applied:
            break  # fixed point: re-filling would change no feature
        with profile.stage("predict.structure_pass"), \
                obs.trace.span("structure_pass",
                               parent=predict_span_id) as pass_span:
            previous_labels = [dict(inst.child_labels) for inst in flat]
            fill_child_labels(columns, preliminary)
            applied = preliminary
            if incremental:
                changed = [i for i, inst in enumerate(flat)
                           if inst.child_labels != previous_labels[i]]
            else:
                changed = list(range(len(flat)))
            if not changed:
                break  # no instance saw a new child label
            profile.count("structure_passes")
            profile.count("structure_repredicted", len(changed))
            obs.metrics.counter(M_STRUCTURE_PASSES).inc()
            obs.metrics.counter(M_STRUCTURE_REPREDICTED).inc(
                len(changed))
            pass_span.set_attribute("repredicted", len(changed))
            batch = [flat[i] for i in changed]
            updates = fan_out(batch, structural, "structure")
            for learner, new_rows in zip(structural, updates):
                if isinstance(new_rows, TaskFailure):
                    quarantine(learner, new_rows)
                    continue
                # Rows are per-instance by the BaseLearner contract, so
                # scattering a subset equals re-predicting the batch.
                scores_by_learner[learner.name][changed] = new_rows
        tag_scores = _convert(scores_by_learner, slices, meta, converter,
                              space, profile, obs, len(flat))
    return scores_by_learner, tag_scores


def _convert(scores_by_learner: dict[str, np.ndarray],
             slices: dict[str, slice], meta: StackingMetaLearner,
             converter: PredictionConverter, space: LabelSpace,
             profile: StageProfile, obs: Observer, n_rows: int = 0
             ) -> dict[str, np.ndarray]:
    with profile.stage("predict.combine"), obs.trace.span("combine"):
        if scores_by_learner:
            combined = meta.combine(scores_by_learner, missing_ok=True)
        elif n_rows:
            # Every learner quarantined: no evidence left, so every
            # instance gets the uniform distribution and the mapping
            # falls to the constraint handler's structural preferences.
            combined = np.full((n_rows, len(space)), 1.0 / len(space))
        else:
            combined = np.zeros((0, len(space)))
    with profile.stage("predict.convert"), obs.trace.span("convert"):
        # One grouped reduction over every column slice; bitwise equal
        # to per-tag ``converter.convert(combined[piece])`` calls.
        return converter.convert_slices(combined, slices)
