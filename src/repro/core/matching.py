"""The matching phase (§3.2): classify a new source's tags.

Pipeline for a target source:

1. extract one instance column per source tag;
2. apply every base learner to every instance, combine per-instance
   predictions with the meta-learner, and collapse each column with the
   prediction converter;
3. (structure pass) derive preliminary per-tag labels, expose them to the
   XML learner as child labels, and re-run the learners that use them;
4. hand the per-tag predictions to the constraint handler, which returns
   the least-cost 1-1 mapping (or argmax when no handler is configured).

Throughput engineering (the high-traffic ROADMAP goal):

* base-learner prediction fans out across a :class:`ParallelExecutor`
  (order-preserving, so any worker count is byte-identical to serial);
* instances are featurized once via :mod:`repro.core.featurize` and the
  learners share the cache;
* structure passes are *incremental*: only learners with
  ``uses_child_labels`` re-predict, and only for the instances whose
  ``child_labels`` actually changed since the previous pass — a pass
  that changes nothing is skipped entirely (fixed point). This relies on
  the :class:`~repro.learners.base.BaseLearner` contract that
  ``predict_scores`` rows depend only on their own instance;
* every stage reports into a :class:`StageProfile`
  (``MatchResult.profile``), with per-learner timings and cache/instance
  counters; ``MatchResult.timings`` keeps the flat
  extract/predict/constraints view for backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..constraints.base import Constraint, MatchContext
from ..constraints.handler import ConstraintHandler
from ..learners.base import BaseLearner
from ..learners.meta import StackingMetaLearner
from ..observability import StageProfile
from ..xmlio import Element
from . import featurize
from .converter import PredictionConverter
from .instance import (ElementInstance, InstanceColumn, extract_columns,
                       fill_child_labels)
from .labels import LabelSpace
from .mapping import Mapping
from .parallel import ParallelExecutor, resolve
from .prediction import Prediction
from .schema import SourceSchema


@dataclass
class MatchResult:
    """Everything the matching phase produced for one source."""

    mapping: Mapping
    tag_scores: dict[str, np.ndarray]
    space: LabelSpace
    columns: dict[str, InstanceColumn]
    context: MatchContext
    timings: dict[str, float] = field(default_factory=dict)
    #: Per-stage instrumentation: nested timers (dotted paths) plus
    #: instance and cache-hit counters. ``timings`` above is the flat
    #: legacy view of the same run.
    profile: StageProfile = field(default_factory=StageProfile)

    def prediction_for(self, tag: str) -> Prediction:
        """The converter's prediction for one source tag."""
        return Prediction(self.space, self.tag_scores[tag])

    def top_candidates(self, tag: str, k: int = 3
                       ) -> list[tuple[str, float]]:
        """The k best labels for a tag, with scores."""
        return self.prediction_for(tag).top_k(k)

    def ambiguous_tags(self, threshold: float = 0.1) -> list[str]:
        """Tags whose best-vs-second margin is below ``threshold`` —
        the natural targets for user feedback."""
        return [tag for tag in self.tag_scores
                if self.prediction_for(tag).margin() < threshold]


def match_source(schema: SourceSchema, listings: Sequence[Element],
                 learners: list[BaseLearner], meta: StackingMetaLearner,
                 converter: PredictionConverter,
                 handler: ConstraintHandler | None, space: LabelSpace,
                 extra_constraints: Sequence[Constraint] = (),
                 max_instances_per_tag: int | None = None,
                 structure_passes: int = 1,
                 score_filter=None,
                 executor: ParallelExecutor | None = None,
                 incremental_structure: bool = True) -> MatchResult:
    """Run the full matching pipeline; see module docstring.

    ``score_filter(tag_scores, columns) -> tag_scores`` runs between the
    prediction converter and the constraint handler — the hook the §7
    type-compatibility pruner uses.

    ``executor`` fans learner prediction out across workers (serial by
    default). ``incremental_structure=False`` forces every structure
    pass to re-predict all instances — the pre-cache behaviour, kept so
    the benchmark harness can measure the baseline.
    """
    executor = resolve(executor)
    profile = StageProfile()
    cache_before = (featurize.stats.hits, featurize.stats.misses)

    with profile.stage("extract"):
        columns = extract_columns(schema, list(listings),
                                  max_instances_per_tag)

    # Flatten instances so each learner predicts one batch.
    tags = list(columns)
    flat: list[ElementInstance] = []
    slices: dict[str, slice] = {}
    for tag in tags:
        begin = len(flat)
        flat.extend(columns[tag].instances)
        slices[tag] = slice(begin, len(flat))
    profile.count("instances", len(flat))
    profile.count("tags", len(tags))

    with profile.stage("predict"):
        tag_scores = _predict_tags(flat, slices, columns, learners, meta,
                                   converter, space, structure_passes,
                                   executor, profile,
                                   incremental_structure)
        if score_filter is not None:
            with profile.stage("predict.score_filter"):
                tag_scores = score_filter(tag_scores, columns)

    ctx = MatchContext(schema, columns)
    with profile.stage("constrain"):
        if handler is None:
            mapping = Mapping({
                tag: space.label_at(int(np.argmax(row)))
                for tag, row in tag_scores.items()})
        else:
            mapping = handler.find_mapping(tag_scores, space, ctx,
                                           extra_constraints,
                                           executor=executor,
                                           profile=profile)

    profile.count("cache_hits", featurize.stats.hits - cache_before[0])
    profile.count("cache_misses",
                  featurize.stats.misses - cache_before[1])
    timings = {
        "extract": profile.seconds("extract"),
        "predict": profile.seconds("predict"),
        "constraints": profile.seconds("constrain"),
    }
    return MatchResult(mapping, tag_scores, space, columns, ctx, timings,
                       profile)


def _predict_tags(flat: list[ElementInstance], slices: dict[str, slice],
                  columns: dict[str, InstanceColumn],
                  learners: list[BaseLearner], meta: StackingMetaLearner,
                  converter: PredictionConverter, space: LabelSpace,
                  structure_passes: int, executor: ParallelExecutor,
                  profile: StageProfile,
                  incremental: bool) -> dict[str, np.ndarray]:
    """Per-tag converted scores, with optional structure re-passes."""

    def predict_with(learner: BaseLearner,
                     batch: list[ElementInstance]) -> np.ndarray:
        with profile.stage(f"predict.learner.{learner.name}"):
            return learner.predict_scores(batch)

    rows = executor.map(lambda lrn: predict_with(lrn, flat), learners)
    scores_by_learner = {
        learner.name: scores for learner, scores in zip(learners, rows)}
    tag_scores = _convert(scores_by_learner, slices, meta, converter,
                          space, profile)

    structural = [lrn for lrn in learners if lrn.uses_child_labels]
    applied: dict[str, str] | None = None  # labels last written into
    # the instances' child_labels; None = nothing applied yet.
    for _ in range(structure_passes if structural else 0):
        preliminary = {
            tag: space.label_at(int(np.argmax(row)))
            for tag, row in tag_scores.items()}
        if preliminary == applied:
            break  # fixed point: re-filling would change no feature
        with profile.stage("predict.structure_pass"):
            previous_labels = [dict(inst.child_labels) for inst in flat]
            fill_child_labels(columns, preliminary)
            applied = preliminary
            if incremental:
                changed = [i for i, inst in enumerate(flat)
                           if inst.child_labels != previous_labels[i]]
            else:
                changed = list(range(len(flat)))
            if not changed:
                break  # no instance saw a new child label
            profile.count("structure_passes")
            profile.count("structure_repredicted", len(changed))
            batch = [flat[i] for i in changed]
            updates = executor.map(
                lambda lrn: predict_with(lrn, batch), structural)
            for learner, new_rows in zip(structural, updates):
                # Rows are per-instance by the BaseLearner contract, so
                # scattering a subset equals re-predicting the batch.
                scores_by_learner[learner.name][changed] = new_rows
        tag_scores = _convert(scores_by_learner, slices, meta, converter,
                              space, profile)
    return tag_scores


def _convert(scores_by_learner: dict[str, np.ndarray],
             slices: dict[str, slice], meta: StackingMetaLearner,
             converter: PredictionConverter, space: LabelSpace,
             profile: StageProfile) -> dict[str, np.ndarray]:
    with profile.stage("predict.combine"):
        combined = meta.combine(scores_by_learner) if scores_by_learner \
            else np.zeros((0, len(space)))
    with profile.stage("predict.convert"):
        return {
            tag: converter.convert(combined[piece])
            for tag, piece in slices.items()
        }
