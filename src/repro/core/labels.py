"""Label space for the classification view of schema matching.

Section 2.2 of the paper rephrases 1-1 schema matching as classification:
the mediated-schema tag names are the class labels ``c1..cn``, plus the
distinguished label ``OTHER`` for source tags that match nothing.
"""

from __future__ import annotations

from typing import Iterable, Iterator

#: The distinguished label assigned to unmatchable source tags.
OTHER = "OTHER"


class LabelSpace:
    """An ordered, indexable set of class labels (always containing OTHER).

    Score matrices throughout the library are aligned to a label space:
    column ``i`` of any ``(n_instances, n_labels)`` array is the score for
    ``space.labels[i]``.
    """

    def __init__(self, labels: Iterable[str]) -> None:
        ordered: list[str] = []
        seen: set[str] = set()
        for label in labels:
            if label not in seen:
                seen.add(label)
                ordered.append(label)
        if OTHER not in seen:
            ordered.append(OTHER)
        self.labels: tuple[str, ...] = tuple(ordered)
        self._index: dict[str, int] = {
            label: i for i, label in enumerate(self.labels)}

    def __len__(self) -> int:
        return len(self.labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self.labels)

    def __contains__(self, label: str) -> bool:
        return label in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LabelSpace) and other.labels == self.labels

    def __hash__(self) -> int:
        return hash(self.labels)

    def index_of(self, label: str) -> int:
        """Column index of ``label`` in score matrices."""
        try:
            return self._index[label]
        except KeyError:
            raise KeyError(
                f"label {label!r} is not in this label space") from None

    def label_at(self, index: int) -> str:
        """Label at column ``index``."""
        return self.labels[index]

    @property
    def other_index(self) -> int:
        """Column index of the OTHER label."""
        return self._index[OTHER]

    def real_labels(self) -> tuple[str, ...]:
        """All labels except OTHER (the mediated-schema tags)."""
        return tuple(label for label in self.labels if label != OTHER)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LabelSpace({len(self.labels)} labels)"
