"""Type-compatibility pruning (§7's efficiency suggestion).

"There are many fairly simple constraints that can be pre-processed, such
as constraints on an element being textual or numeric." During training
the pruner profiles each label's data (how often instances are numeric,
how long their values run); during matching it zeroes out candidate
labels whose profile is grossly incompatible with a column's data before
the constraint handler searches — shrinking the search space exactly as
the paper proposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..text import tokenize, tokenize_numeric
from .instance import ElementInstance, InstanceColumn
from .labels import OTHER, LabelSpace


@dataclass
class TypeProfile:
    """Summary of the values observed for one label (or one column)."""

    numeric_rate: float   # fraction of instances that are purely numeric
    mean_tokens: float    # average token count per instance
    samples: int

    @classmethod
    def of_texts(cls, texts: Sequence[str]) -> "TypeProfile":
        if not texts:
            return cls(0.0, 0.0, 0)
        numeric = 0
        token_total = 0
        for text in texts:
            tokens = tokenize(text)
            token_total += len(tokens)
            numbers = tokenize_numeric(text)
            word_tokens = [t for t in tokens if t.isalpha()]
            if numbers and not word_tokens:
                numeric += 1
        return cls(numeric / len(texts), token_total / len(texts),
                   len(texts))


class TypePruner:
    """Prunes label candidates with incompatible value types.

    Conservative by design: a label is pruned for a column only when both
    profiles are confidently known (enough samples) and disagree on the
    numeric/textual axis by a wide margin. OTHER is never pruned.
    """

    def __init__(self, min_samples: int = 5,
                 numeric_high: float = 0.9,
                 numeric_low: float = 0.1) -> None:
        self.min_samples = min_samples
        self.numeric_high = numeric_high
        self.numeric_low = numeric_low
        self.profiles: dict[str, TypeProfile] = {}
        self.space: LabelSpace | None = None

    @property
    def is_fitted(self) -> bool:
        return self.space is not None

    def fit(self, instances: Sequence[ElementInstance],
            labels: Sequence[str], space: LabelSpace) -> None:
        """Profile every label from the training stream."""
        texts_by_label: dict[str, list[str]] = {}
        for instance, label in zip(instances, labels):
            texts_by_label.setdefault(label, []).append(instance.text)
        self.profiles = {
            label: TypeProfile.of_texts(texts)
            for label, texts in texts_by_label.items()
        }
        self.space = space

    def incompatible_labels(self, column: InstanceColumn) -> set[str]:
        """Labels whose training profile clashes with this column."""
        if self.space is None:
            raise RuntimeError("pruner is not fitted")
        observed = TypeProfile.of_texts(column.texts())
        if observed.samples < self.min_samples:
            return set()
        pruned: set[str] = set()
        for label, profile in self.profiles.items():
            if label == OTHER or profile.samples < self.min_samples:
                continue
            label_numeric = profile.numeric_rate >= self.numeric_high
            label_textual = profile.numeric_rate <= self.numeric_low
            column_numeric = observed.numeric_rate >= self.numeric_high
            column_textual = observed.numeric_rate <= self.numeric_low
            if (label_numeric and column_textual) or \
                    (label_textual and column_numeric):
                pruned.add(label)
        return pruned

    def prune_scores(self, tag_scores: dict[str, np.ndarray],
                     columns: dict[str, InstanceColumn]
                     ) -> dict[str, np.ndarray]:
        """Zero out incompatible labels and renormalise each row.

        Rows whose mass would vanish entirely are left untouched (the
        pruner must never make a tag unmatchable on its own).
        """
        if self.space is None:
            raise RuntimeError("pruner is not fitted")
        pruned_scores: dict[str, np.ndarray] = {}
        for tag, row in tag_scores.items():
            column = columns.get(tag)
            if column is None:
                pruned_scores[tag] = row
                continue
            bad = self.incompatible_labels(column)
            if not bad:
                pruned_scores[tag] = row
                continue
            adjusted = row.copy()
            for label in bad:
                adjusted[self.space.index_of(label)] = 0.0
            total = adjusted.sum()
            if total <= 0.0:
                pruned_scores[tag] = row
            else:
                pruned_scores[tag] = adjusted / total
        return pruned_scores
