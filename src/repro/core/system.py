"""The LSD system façade: train on mapped sources, match new ones.

Mirrors the architecture of Figure 4 in the paper: base learners, the
stacking meta-learner, the prediction converter, and the constraint
handler, wired into a training phase and a matching phase.
"""

from __future__ import annotations

import os
from typing import Sequence

from ..constraints.base import Constraint
from ..constraints.handler import ConstraintHandler
from ..learners import default_learners
from ..learners.base import BaseLearner
from ..learners.meta import StackingMetaLearner
from ..observability import Observer, StageProfile, resolve_observer
from ..observability.events import EV_STAGE_END, EV_STAGE_START
from ..resilience.policy import ResiliencePolicy
from ..xmlio import Element
from .converter import PredictionConverter
from .labels import LabelSpace
from .mapping import Mapping
from .matching import MatchResult, match_source
from .parallel import ParallelExecutor
from .pruning import TypePruner
from .schema import MediatedSchema, SourceSchema
from .training import (TrainingSource, build_training_set,
                       train_base_learners, train_meta_learner)


class LSDSystem:
    """End-to-end LSD: add training sources, train, match new sources."""

    def __init__(self, mediated_schema: MediatedSchema | str,
                 learners: Sequence[BaseLearner],
                 constraints: Sequence[Constraint] = (),
                 use_constraint_handler: bool = True,
                 use_meta_learner: bool = True,
                 converter: PredictionConverter | None = None,
                 handler: ConstraintHandler | None = None,
                 folds: int = 5, seed: int = 0,
                 max_instances_per_tag: int | None = None,
                 prune_types: bool = False,
                 workers: int = 1,
                 backend: str = "thread",
                 policy: ResiliencePolicy | None = None) -> None:
        """
        Parameters
        ----------
        mediated_schema:
            The mediated DTD (or its text); its tags are the labels.
        learners:
            The base learners to employ (see
            :func:`repro.learners.default_learners`).
        constraints:
            Domain constraints, written once per domain (§4.1).
        use_constraint_handler:
            When False, matching assigns each tag its argmax label — the
            configuration ladder's "no constraint handler" rung.
        use_meta_learner:
            When False the meta-learner averages the base learners
            uniformly instead of learning stacking weights.
        handler:
            A pre-configured :class:`ConstraintHandler`; by default one is
            built from ``constraints``.
        max_instances_per_tag:
            Cap on extracted instances per tag (both phases).
        prune_types:
            Enable §7's pre-processed textual/numeric compatibility
            constraints: candidate labels whose training data type is
            grossly incompatible with a column are zeroed before the
            constraint handler runs.
        workers:
            Worker count for learner prediction and cross-validation
            fan-out (1 = serial). Any value produces byte-identical
            results; more workers only change wall-clock time. Mutable
            after construction (``system.workers = 4``).
        backend:
            Execution backend for the fan-out: ``"thread"`` (default),
            ``"process"`` (a persistent worker-process pool sharing the
            trained model zero-copy — the only backend the GIL cannot
            serialise; see :mod:`repro.core.procpool`), or ``"serial"``.
            Byte-identical outputs across all three. Mutable after
            construction; runtime state, never pickled with the model.
        policy:
            A :class:`repro.resilience.ResiliencePolicy` arming fault
            tolerance for this system's runs: learners whose fit or
            prediction fails are quarantined instead of crashing,
            executor tasks gain retry/serial-fallback behaviour, and
            the constraint search honours the policy deadline. ``None``
            (the default) keeps the legacy fail-fast behaviour. The
            policy is runtime state — never pickled with the model.
        """
        if isinstance(mediated_schema, str):
            mediated_schema = MediatedSchema(mediated_schema)
        self.mediated_schema = mediated_schema
        self.space: LabelSpace = mediated_schema.label_space()
        self.learners = list(learners)
        if not self.learners:
            raise ValueError("need at least one base learner")
        self.constraints = list(constraints)
        self.use_meta_learner = use_meta_learner
        self.converter = converter or PredictionConverter()
        if handler is not None:
            self.handler: ConstraintHandler | None = handler
        elif use_constraint_handler:
            self.handler = ConstraintHandler(self.constraints)
        else:
            self.handler = None
        self.folds = folds
        self.seed = seed
        self.max_instances_per_tag = max_instances_per_tag
        self.workers = workers
        self.backend = backend
        self.policy = policy
        #: The live worker-process pool (process backend only); built
        #: lazily on executor access, rebuilt after retraining, released
        #: by :meth:`close_pool`. Runtime state — never pickled.
        self._procpool = None
        self.training_sources: list[TrainingSource] = []
        self.meta: StackingMetaLearner | None = None
        #: The learners that survived the most recent :meth:`train`
        #: (== ``self.learners`` unless a policy quarantined some).
        self.active_learners: list[BaseLearner] | None = None
        self.pruner = TypePruner() if prune_types else None
        #: Per-stage timings of the most recent :meth:`train` call.
        self.train_profile: StageProfile | None = None

    @property
    def executor(self) -> ParallelExecutor:
        """The executor for the configured worker count and backend.

        Built on access (it wraps an int, the backend name, the policy,
        and — for the process backend — the lazily built worker pool)
        so models pickled before these options existed load and run
        serially.
        """
        backend = getattr(self, "backend", "thread")
        pool = self._ensure_pool() if backend == "process" else None
        return ParallelExecutor(getattr(self, "workers", 1),
                                getattr(self, "policy", None),
                                backend=backend, pool=pool)

    def _ensure_pool(self):
        """The live worker-process pool, building (or rebuilding) it if
        needed. ``None`` when a pool makes no sense: untrained system,
        ``workers <= 1``. A pool broken by a worker crash is replaced on
        the next access — self-healing across runs, while the run that
        saw the crash keeps its thread fallback.

        The pool is sized ``min(workers, cpu_count)``: worker processes
        beyond the host's cores only add scheduling contention and
        redundant batch unpickling. The cap is output-invisible — the
        (learner × shard) task grid, span replay, and result assembly
        are functions of the batch and ``workers``, never of how many
        processes drained the queue — so ``--workers 4`` stays
        byte-identical on any host."""
        workers = getattr(self, "workers", 1)
        if workers <= 1 or self.meta is None:
            self.close_pool()
            return None
        pool_size = max(1, min(workers, os.cpu_count() or 1))
        pool = getattr(self, "_procpool", None)
        if pool is not None and (not pool.alive
                                 or pool.size != pool_size):
            self.close_pool()
            pool = None
        if pool is None:
            from .procpool import WorkerPool
            learners = getattr(self, "active_learners", None) \
                or self.learners
            pool = WorkerPool(learners, pool_size)
            self._procpool = pool
        return pool

    def close_pool(self) -> None:
        """Shut down the worker-process pool (workers + shared-memory
        segment), if one is live. Safe to call at any time; the next
        process-backend run rebuilds it."""
        pool = getattr(self, "_procpool", None)
        if pool is not None:
            pool.shutdown()
        self._procpool = None

    def __getstate__(self) -> dict:
        # The policy holds run state (locks, fault counters) and is a
        # per-process concern: models persist without one. Same for the
        # worker pool — live processes and shared memory do not pickle.
        state = dict(self.__dict__)
        state["policy"] = None
        state["_procpool"] = None
        return state

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def with_default_learners(cls, mediated_schema: MediatedSchema | str,
                              constraints: Sequence[Constraint] = (),
                              extra_learners: Sequence[BaseLearner] = (),
                              **kwargs) -> "LSDSystem":
        """LSD with the paper's learner set plus any domain recognizers."""
        return cls(mediated_schema,
                   [*default_learners(), *extra_learners],
                   constraints, **kwargs)

    # ------------------------------------------------------------------
    # training phase
    # ------------------------------------------------------------------
    def add_training_source(self, schema: SourceSchema | str,
                            listings: Sequence[Element],
                            mapping: Mapping | dict[str, str]) -> None:
        """Register one user-mapped source (§3.1 step 1)."""
        if isinstance(schema, str):
            schema = SourceSchema(schema)
        if isinstance(mapping, dict):
            mapping = Mapping(mapping)
        self.training_sources.append(
            TrainingSource(schema, list(listings), mapping))
        self.meta = None  # new data invalidates previous training
        self.close_pool()  # workers hold the now-stale model

    def train(self, observer: Observer | None = None) -> None:
        """Run the full training phase (§3.1 steps 2-5).

        ``observer`` records ``train`` spans and training metrics; the
        per-stage timings of the most recent training run are kept on
        ``self.train_profile`` either way.
        """
        if not self.training_sources:
            raise RuntimeError("no training sources added")
        obs = resolve_observer(observer)
        events = obs.events
        profile = StageProfile()
        with obs.trace.span("train",
                            sources=len(self.training_sources)):
            events.emit(EV_STAGE_START, stage="build")
            with profile.stage("build"), obs.trace.span("build"):
                instances, labels = build_training_set(
                    self.training_sources, self.space,
                    self.max_instances_per_tag)
            events.emit(EV_STAGE_END, stage="build",
                        elapsed_seconds=profile.seconds("build"),
                        items=len(instances))
            if not instances:
                raise RuntimeError(
                    "training sources produced no instances")
            events.emit(EV_STAGE_START, stage="fit")
            with profile.stage("fit"):
                survivors = train_base_learners(
                    self.learners, instances, labels, self.space,
                    profile=profile, observer=obs,
                    policy=getattr(self, "policy", None))
                if not survivors:
                    raise RuntimeError(
                        "every base learner failed to train")
                if self.pruner is not None:
                    self.pruner.fit(instances, labels, self.space)
            events.emit(EV_STAGE_END, stage="fit",
                        elapsed_seconds=profile.seconds("fit"),
                        items=len(survivors))
            events.emit(EV_STAGE_START, stage="cv")
            with profile.stage("cv"):
                self.meta = train_meta_learner(
                    survivors, instances, labels, self.space,
                    folds=self.folds, seed=self.seed,
                    uniform=not self.use_meta_learner,
                    executor=self.executor, profile=profile,
                    observer=obs)
            events.emit(EV_STAGE_END, stage="cv",
                        elapsed_seconds=profile.seconds("cv"))
        self.active_learners = survivors
        self.train_profile = profile
        # Any live worker pool holds the pre-retrain model; drop it so
        # the next process-backend match rebuilds on the fresh one.
        self.close_pool()

    @property
    def is_trained(self) -> bool:
        return self.meta is not None

    # ------------------------------------------------------------------
    # matching phase
    # ------------------------------------------------------------------
    def match(self, schema: SourceSchema | str,
              listings: Sequence[Element],
              extra_constraints: Sequence[Constraint] = (),
              observer: Observer | None = None,
              checkpoint=None) -> MatchResult:
        """Propose 1-1 mappings for a new source (§3.2).

        ``observer`` receives the run's trace spans, metrics, and
        quality records (disabled by default; see
        :mod:`repro.observability`). ``checkpoint`` (an opened
        :class:`repro.runtime.Checkpointer`) arms crash-safe stage
        snapshots and byte-identical resume — see
        :func:`~repro.core.matching.match_source`.
        """
        if self.meta is None:
            raise RuntimeError("call train() before match()")
        if isinstance(schema, str):
            schema = SourceSchema(schema)
        score_filter = self.pruner.prune_scores if self.pruner else None
        # Quarantined-at-fit learners stay out of the matching ensemble
        # (getattr: models pickled before active_learners existed).
        learners = getattr(self, "active_learners", None) or self.learners
        return match_source(
            schema, listings, learners, self.meta, self.converter,
            self.handler, self.space, extra_constraints,
            self.max_instances_per_tag, score_filter=score_filter,
            executor=self.executor, observer=observer,
            policy=getattr(self, "policy", None),
            checkpoint=checkpoint)

    def confirm_and_learn(self, schema: SourceSchema | str,
                          listings: Sequence[Element],
                          mapping: Mapping | dict[str, str]) -> None:
        """Fold a confirmed matching back into the training set (§3.1).

        "Once a new source has been matched by LSD and the matchings have
        been confirmed/refined by the user, it can serve as an additional
        training source, making LSD unique in that it can directly and
        seamlessly reuse past matchings to continuously improve its
        performance." Adds the source and retrains immediately.
        """
        self.add_training_source(schema, listings, mapping)
        self.train()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def learner_names(self) -> list[str]:
        """Names of the configured base learners."""
        return [learner.name for learner in self.learners]

    def weight_table(self) -> dict[str, dict[str, float]]:
        """The meta-learner's per-(label, learner) weights."""
        if self.meta is None:
            raise RuntimeError("call train() first")
        return self.meta.weight_table()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "trained" if self.is_trained else "untrained"
        return (f"<LSDSystem {state}: {len(self.learners)} learners, "
                f"{len(self.space)} labels, "
                f"{len(self.training_sources)} training sources>")
