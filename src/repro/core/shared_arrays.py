"""Zero-copy export of a model's large arrays into shared storage.

The process execution backend (:mod:`repro.core.procpool`) and the
array-store persistence format (:mod:`repro.core.persistence`) share one
problem: a trained :class:`~repro.core.system.LSDSystem` is mostly a
handful of big read-only numpy arrays — the TF-IDF CSR ``data`` /
``indices`` / ``indptr`` triplets behind the WHIRL indexes, the
meta-learner's weight matrix, one-hot label matrices — wrapped in a thin
object graph. Pickling the whole system per worker (or loading it with
a full deserialize-copy) duplicates exactly the bytes that never change.

This module splits the two: :func:`extract_arrays` pickles an object
graph while *hoisting* every qualifying ndarray out of the stream
(``pickle``'s ``persistent_id`` hook), returning the array-free payload
plus the hoisted arrays; :func:`restore` re-inflates the payload with
externally supplied array views spliced back in. The views can live
anywhere — a :class:`SharedArrayStore` segment
(``multiprocessing.shared_memory``), ``np.load(..., mmap_mode="r")``
memmaps of ``.npy`` sidecar files, or plain copies — the payload never
knows. scipy sparse matrices need no special casing: their pickle state
contains the three CSR arrays, which flow through the same hook (the
``has_sorted_indices`` flag rides along in the state dict).

Restored views are **read-only** by contract: every consumer of fitted
model state sees the same physical bytes, so a write anywhere would be
a cross-process data race. The fitted pipeline never writes its model
arrays (:class:`~repro.text.tfidf.TfidfVectorSpace` and
:class:`~repro.learners.meta.StackingMetaLearner` freeze theirs at fit
time to prove it); a consumer that genuinely needs a scratch copy must
``np.array(view)`` explicitly.

Store lifecycle (the "who unlinks what" contract):

* the process that *creates* a :class:`SharedArrayStore` owns the
  segment and must :meth:`~SharedArrayStore.unlink` it (pool shutdown
  does; a ``weakref.finalize`` safety net covers abandonment);
* attachers only ever :meth:`~SharedArrayStore.close` their mapping —
  never unlink — and a worker that dies without closing costs nothing:
  the OS drops its mapping and the owner's unlink still frees the name.
"""

from __future__ import annotations

import io
import itertools
import os
import pickle
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

#: Arrays at or above this many bytes are hoisted out of the pickle
#: stream. Sized to catch every model-scale array (TF-IDF triplets,
#: label matrices, the meta weight table) while leaving tiny tuples of
#: bounds and the like inline where a handle would cost more than the
#: bytes it saves.
MIN_SHARED_BYTES = 1024

#: Tag for hoisted-array persistent ids; anything else in a payload's
#: persistent-id stream is rejected at load time.
_PID_TAG = "repro.shared-array"

#: Offsets inside a segment are aligned to this many bytes so every
#: view is at least cache-line aligned regardless of preceding dtypes.
_ALIGN = 64


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one hoisted array inside a backing store."""

    dtype: str
    shape: tuple[int, ...]
    offset: int
    nbytes: int


class _HoistingPickler(pickle.Pickler):
    """Pickler that lifts large ndarrays out of the stream.

    ``persistent_id`` runs before memoisation, so repeated references to
    the same array object are deduplicated by ``id`` here — they share
    one hoisted slot exactly as vanilla pickle would share one memo
    entry.
    """

    def __init__(self, buffer, min_bytes: int) -> None:
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self.arrays: list[np.ndarray] = []
        self._min_bytes = min_bytes
        self._slot_by_id: dict[int, int] = {}

    def persistent_id(self, obj):
        # Exactly np.ndarray: subclasses (np.memmap, masked arrays)
        # carry semantics a flat byte copy would drop, and object
        # dtypes hold references that cannot live in shared memory.
        if (type(obj) is np.ndarray and not obj.dtype.hasobject
                and obj.nbytes >= self._min_bytes):
            slot = self._slot_by_id.get(id(obj))
            if slot is None:
                slot = self._slot_by_id[id(obj)] = len(self.arrays)
                self.arrays.append(np.ascontiguousarray(obj))
            return (_PID_TAG, slot)
        return None


class _AttachingUnpickler(pickle.Unpickler):
    """Unpickler that splices externally stored arrays back in."""

    def __init__(self, buffer, views) -> None:
        super().__init__(buffer)
        self._views = views

    def persistent_load(self, pid):
        if (not isinstance(pid, tuple) or len(pid) != 2
                or pid[0] != _PID_TAG):
            raise pickle.UnpicklingError(
                f"unsupported persistent id {pid!r}")
        return self._views[pid[1]]


def extract_arrays(obj, min_bytes: int = MIN_SHARED_BYTES
                   ) -> tuple[bytes, list[np.ndarray]]:
    """Pickle ``obj`` with its large arrays hoisted out.

    Returns ``(payload, arrays)``: the array-free pickle bytes and the
    hoisted arrays in slot order (contiguous copies where the originals
    were not). ``restore(payload, arrays)`` is the identity; storing
    the arrays elsewhere and restoring with views is the point.
    """
    buffer = io.BytesIO()
    pickler = _HoistingPickler(buffer, min_bytes)
    pickler.dump(obj)
    return buffer.getvalue(), pickler.arrays


def restore(payload: bytes, views) -> object:
    """Re-inflate an :func:`extract_arrays` payload around ``views``.

    ``views`` supplies the hoisted arrays by slot — any sequence of
    ndarray-compatible objects (shared-memory views, memmaps, copies).
    """
    return _AttachingUnpickler(io.BytesIO(payload), list(views)).load()


def layout(arrays) -> tuple[list[ArraySpec], int]:
    """Aligned placement of ``arrays`` in one flat buffer.

    Returns the per-array specs plus the total byte size (at least 1,
    so an empty layout still backs a creatable segment).
    """
    specs: list[ArraySpec] = []
    offset = 0
    for array in arrays:
        offset = -(-offset // _ALIGN) * _ALIGN
        specs.append(ArraySpec(array.dtype.str, tuple(array.shape),
                               offset, array.nbytes))
        offset += array.nbytes
    return specs, max(offset, 1)


_SEGMENT_COUNTER = itertools.count()


def _segment_name() -> str:
    """Deterministic-per-process segment name: ``lsd_<pid>_<seq>``.

    The pid keeps concurrent test runs apart; the sequence number makes
    leak hunting trivial (``ls /dev/shm | grep lsd_``) and reproducible
    within a process.
    """
    return f"lsd_{os.getpid()}_{next(_SEGMENT_COUNTER)}"


class SharedArrayStore:
    """One shared-memory segment holding a set of hoisted arrays.

    Created by the pool owner (copying the arrays in once), attached by
    workers via the picklable :attr:`handle`. See the module docstring
    for the close/unlink ownership contract.
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 specs: list[ArraySpec], owner: bool) -> None:
        self._shm = shm
        self._specs = specs
        self._owner = owner
        self._released = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, arrays) -> "SharedArrayStore":
        """Allocate a segment and copy ``arrays`` into it (owner side)."""
        arrays = [np.ascontiguousarray(array) for array in arrays]
        specs, total = layout(arrays)
        while True:
            try:
                shm = shared_memory.SharedMemory(
                    name=_segment_name(), create=True, size=total)
                break
            except FileExistsError:
                continue  # stale name from a recycled pid; next seq
        for array, spec in zip(arrays, specs):
            view = np.ndarray(spec.shape, dtype=spec.dtype,
                              buffer=shm.buf, offset=spec.offset)
            view[...] = array
        return cls(shm, specs, owner=True)

    @classmethod
    def attach(cls, handle: tuple) -> "SharedArrayStore":
        """Map an existing segment from its :attr:`handle` (worker side)."""
        name, specs = handle
        shm = shared_memory.SharedMemory(name=name, create=False)
        return cls(shm, list(specs), owner=False)

    @property
    def handle(self) -> tuple:
        """Picklable ``(segment name, specs)`` pair for attachers."""
        return (self._shm.name, list(self._specs))

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Allocated size of the segment in bytes (telemetry; the OS
        may round the request up to a page multiple)."""
        return self._shm.size

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def views(self) -> list[np.ndarray]:
        """Read-only ndarray views over the segment, in slot order."""
        out: list[np.ndarray] = []
        for spec in self._specs:
            view = np.ndarray(spec.shape, dtype=spec.dtype,
                              buffer=self._shm.buf, offset=spec.offset)
            view.setflags(write=False)
            out.append(view)
        return out

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (attacher obligation).

        Live ndarray views may still export the segment's buffer — the
        interpreter refuses to unmap under them (``BufferError``); that
        is fine for a process about to exit, whose mapping dies with it
        either way, so the error is absorbed rather than propagated.
        """
        if self._released:
            return
        self._released = True
        try:
            self._shm.close()
        except BufferError:  # views outlive the close; see docstring
            pass

    def unlink(self) -> None:
        """Free the segment name (owner obligation, exactly once)."""
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked (idempotent)
            pass

    def release(self) -> None:
        """Owner teardown: close the mapping and unlink the name."""
        self.close()
        self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "owner" if self._owner else "attached"
        return (f"<SharedArrayStore {self._shm.name} {role} "
                f"{len(self._specs)} arrays>")


def segment_exists(name: str) -> bool:
    """True if a shared-memory segment called ``name`` still exists.

    The leak tests poll this after pool shutdown / crashes; implemented
    by probing an attach so it works on every platform the stdlib
    supports, not just /dev/shm hosts.
    """
    try:
        probe = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return False
    probe.close()
    return True
