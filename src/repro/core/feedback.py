"""Interactive feedback sessions (§4.3, evaluated in §6.3).

A :class:`FeedbackSession` holds LSD's current mappings for one source.
The user reviews tags — in decreasing order of their structure score, the
same order the paper's experiments use — and corrects wrong labels; each
correction becomes an :class:`AssignmentConstraint` and the constraint
handler re-runs, possibly repairing further tags for free.
"""

from __future__ import annotations

from typing import Sequence

from ..constraints.base import Constraint
from ..constraints.feedback import AssignmentConstraint, ExclusionConstraint
from ..xmlio import Element
from .mapping import Mapping
from .matching import MatchResult
from .schema import SourceSchema
from .system import LSDSystem


class FeedbackSession:
    """Drives repeated matching of one source under user corrections."""

    def __init__(self, system: LSDSystem, schema: SourceSchema | str,
                 listings: Sequence[Element],
                 extra_constraints: Sequence[Constraint] = ()) -> None:
        if isinstance(schema, str):
            schema = SourceSchema(schema)
        self.system = system
        self.schema = schema
        self.listings = list(listings)
        self.base_constraints = list(extra_constraints)
        self.feedback: list[Constraint] = []
        self.corrections = 0
        self.result: MatchResult = self._rematch()

    # ------------------------------------------------------------------
    @property
    def mapping(self) -> Mapping:
        """LSD's current proposal for the source."""
        return self.result.mapping

    def review_order(self) -> list[str]:
        """Tags in the order the user should review them (§6.3): by
        decreasing number of distinct tags nestable within them, ties
        broken by prediction ambiguity (smallest margin first)."""
        return sorted(
            self.result.tag_scores,
            key=lambda tag: (
                -self.schema.descendant_count(tag),
                self.result.prediction_for(tag).margin(),
                tag))

    # ------------------------------------------------------------------
    def assert_match(self, tag: str, label: str) -> MatchResult:
        """User says: ``tag`` matches ``label``. Re-runs the handler."""
        if tag not in self.schema.tags:
            raise KeyError(f"source has no tag {tag!r}")
        if label not in self.system.space:
            raise KeyError(f"unknown label {label!r}")
        self.feedback.append(AssignmentConstraint(tag, label))
        self.corrections += 1
        self.result = self._rematch()
        return self.result

    def reject_match(self, tag: str, label: str) -> MatchResult:
        """User says: ``tag`` does NOT match ``label``."""
        if tag not in self.schema.tags:
            raise KeyError(f"source has no tag {tag!r}")
        self.feedback.append(ExclusionConstraint(tag, label))
        self.corrections += 1
        self.result = self._rematch()
        return self.result

    # ------------------------------------------------------------------
    def _rematch(self) -> MatchResult:
        return self.system.match(
            self.schema, self.listings,
            extra_constraints=[*self.base_constraints, *self.feedback])
